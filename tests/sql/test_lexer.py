import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import TokenType, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt from WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable my_col")
        assert tokens[0].value == "MyTable"
        assert tokens[1].value == "my_col"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.14
        assert tokens[2].value == 0.5

    def test_string_literal(self):
        tokens = tokenize("'GERMANY'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "GERMANY"

    def test_string_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("<= >= <> != = < >")
        values = [t.value for t in tokens[:-1]]
        assert values == ["<=", ">=", "<>", "<>", "=", "<", ">"]

    def test_qualified_name_tokens(self):
        tokens = tokenize("a.b")
        assert [t.value for t in tokens[:-1]] == ["a", ".", "b"]

    def test_comment_skipped(self):
        tokens = tokenize("select -- a comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", 1]

    def test_unexpected_char(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_number_then_dot_punct(self):
        # "1." followed by identifier must not eat the dot into the number
        tokens = tokenize("t1.a")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "a"]
