"""RA plan-node invariants and utilities."""

import pytest

from repro.errors import PlanError
from repro.sql import algebra, ast


def scan(alias="R"):
    node = algebra.ScanNode("R", alias)
    node.output = (f"{alias}.a", f"{alias}.b")
    return node


class TestOutputs:
    def test_select_passes_output_through(self):
        node = algebra.SelectNode(scan(), ast.Lit(True))
        assert node.output == ("R.a", "R.b")

    def test_project_renames(self):
        node = algebra.ProjectNode(
            scan(), [("x", ast.Column("R.a")), ("y", ast.Column("R.b"))]
        )
        assert node.output == ("x", "y")

    def test_join_concatenates(self):
        node = algebra.JoinNode(scan("R"), scan("S"), [("R.a", "S.a")])
        assert node.output == ("R.a", "R.b", "S.a", "S.b")

    def test_groupby_output(self):
        node = algebra.GroupByNode(
            scan(),
            ["R.a"],
            ["R.a"],
            [algebra.AggSpec("n", "COUNT", None)],
        )
        assert node.output == ("R.a", "n")

    def test_groupby_misaligned_keys_rejected(self):
        with pytest.raises(PlanError):
            algebra.GroupByNode(scan(), ["R.a"], [], [])

    def test_union_arity_check(self):
        bad = algebra.ScanNode("S", "S")
        bad.output = ("S.a",)
        with pytest.raises(PlanError):
            algebra.UnionNode(scan(), bad)

    def test_difference_arity_check(self):
        bad = algebra.ScanNode("S", "S")
        bad.output = ("S.a",)
        with pytest.raises(PlanError):
            algebra.DifferenceNode(scan(), bad)


class TestUtilities:
    def test_leaves_in_order(self):
        left = scan("A")
        right = scan("B")
        plan = algebra.SelectNode(
            algebra.JoinNode(left, right, []), ast.Lit(True)
        )
        assert [s.alias for s in algebra.leaves(plan)] == ["A", "B"]

    def test_describe_renders_tree(self):
        plan = algebra.LimitNode(
            algebra.OrderByNode(scan(), [(ast.Column("R.a"), True)]), 5
        )
        text = plan.describe()
        assert "Limit(5)" in text
        assert "OrderBy" in text
        assert "Scan(R AS R)" in text

    def test_table_node_output(self):
        from repro.sql.executor import Table

        node = algebra.TableNode(Table(("x", "y"), []))
        assert node.output == ("x", "y")

    def test_agg_spec_str(self):
        spec = algebra.AggSpec("n", "COUNT", None)
        assert str(spec) == "COUNT(*) AS n"
