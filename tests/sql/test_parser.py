import pytest

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.parser import parse


class TestParserBasics:
    def test_simple_select(self):
        stmt = parse("select a, b from R")
        assert len(stmt.items) == 2
        assert stmt.tables[0].relation == "R"
        assert stmt.tables[0].alias == "R"

    def test_star(self):
        assert parse("select * from R").star

    def test_alias_forms(self):
        stmt = parse("select x from R as r1, S s2")
        assert stmt.tables[0].alias == "r1"
        assert stmt.tables[1].alias == "s2"

    def test_select_item_alias(self):
        stmt = parse("select a as x, sum(b) total from R")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "total"

    def test_distinct(self):
        assert parse("select distinct a from R").distinct

    def test_limit(self):
        assert parse("select a from R limit 10").limit == 10

    def test_limit_requires_int(self):
        with pytest.raises(SQLSyntaxError):
            parse("select a from R limit 1.5")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("select a from R extra junk ;")


class TestWhereParsing:
    def test_comparison_ops(self):
        stmt = parse("select a from R where a <= 3 and b <> 'x'")
        conjs = ast.conjuncts(stmt.where)
        assert len(conjs) == 2
        assert conjs[0].op == "<="
        assert conjs[1].op == "<>"

    def test_or_precedence(self):
        stmt = parse("select a from R where a = 1 and b = 2 or c = 3")
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.items[0], ast.And)

    def test_parentheses(self):
        stmt = parse("select a from R where a = 1 and (b = 2 or c = 3)")
        conjs = ast.conjuncts(stmt.where)
        assert len(conjs) == 2
        assert isinstance(conjs[1], ast.Or)

    def test_between(self):
        stmt = parse("select a from R where a between 1 and 5")
        assert isinstance(stmt.where, ast.Between)

    def test_not_between(self):
        stmt = parse("select a from R where a not between 1 and 5")
        assert isinstance(stmt.where, ast.Not)

    def test_in_list(self):
        stmt = parse("select a from R where b in ('x', 'y')")
        assert isinstance(stmt.where, ast.InList)
        assert stmt.where.values == ["x", "y"]

    def test_in_list_negative_number(self):
        stmt = parse("select a from R where b in (-1, 2)")
        assert stmt.where.values == [-1, 2]

    def test_like(self):
        stmt = parse("select a from R where b like '%BRASS'")
        assert isinstance(stmt.where, ast.Like)

    def test_is_null(self):
        stmt = parse("select a from R where b is null")
        assert "IS NULL" in str(stmt.where)

    def test_is_not_null(self):
        stmt = parse("select a from R where b is not null")
        assert isinstance(stmt.where, ast.Not)

    def test_not(self):
        stmt = parse("select a from R where not a = 1")
        assert isinstance(stmt.where, ast.Not)


class TestArithmetic:
    def test_precedence(self):
        stmt = parse("select a + b * c from R")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.Arith) and expr.op == "+"
        assert isinstance(expr.right, ast.Arith) and expr.right.op == "*"

    def test_parens_override(self):
        stmt = parse("select (a + b) * c from R")
        expr = stmt.items[0].expr
        assert expr.op == "*"

    def test_unary_minus(self):
        stmt = parse("select -a from R")
        assert isinstance(stmt.items[0].expr, ast.Neg)

    def test_typical_revenue_expr(self):
        stmt = parse("select sum(l.extendedprice * (1 - l.discount)) from R")
        agg = stmt.items[0].expr
        assert isinstance(agg, ast.AggCall) and agg.func == "SUM"


class TestAggregatesAndClauses:
    def test_count_star(self):
        agg = parse("select count(*) from R").items[0].expr
        assert agg.func == "COUNT" and agg.arg is None

    def test_count_distinct(self):
        agg = parse("select count(distinct a) from R").items[0].expr
        assert agg.distinct

    def test_group_by_having_order_limit(self):
        stmt = parse(
            "select a, sum(b) t from R group by a having sum(b) > 5 "
            "order by t desc, a limit 3"
        )
        assert [c.name for c in stmt.group_by] == ["a"]
        assert stmt.having is not None
        assert len(stmt.order_by) == 2
        assert not stmt.order_by[0].ascending
        assert stmt.order_by[1].ascending
        assert stmt.limit == 3

    def test_join_on_normalized(self):
        stmt = parse(
            "select a from R join S on R.x = S.x where R.y = 1"
        )
        assert len(stmt.tables) == 2
        conjs = ast.conjuncts(stmt.where)
        assert len(conjs) == 2

    def test_roundtrip_str_parses(self):
        sql = (
            "select a, sum(b) as t from R, S where R.x = S.x and a > 3 "
            "group by a order by t desc limit 5"
        )
        stmt = parse(sql)
        again = parse(str(stmt))
        assert str(again) == str(stmt)


class TestExprEval:
    def test_null_propagation_arith(self):
        assert ast.Arith("+", ast.Lit(None), ast.Lit(1)).eval({}) is None

    def test_null_comparison_false(self):
        assert ast.Cmp("=", ast.Lit(None), ast.Lit(None)).eval({}) is False

    def test_division_by_zero_null(self):
        assert ast.Arith("/", ast.Lit(1), ast.Lit(0)).eval({}) is None

    def test_like_wildcards(self):
        like = ast.Like(ast.Lit("ECONOMY BRASS"), "%BRASS")
        assert like.eval({})
        assert not ast.Like(ast.Lit("BRASS PLATE"), "%BRASS").eval({})
        assert ast.Like(ast.Lit("abc"), "a_c").eval({})

    def test_between_inclusive(self):
        assert ast.Between(ast.Lit(5), ast.Lit(5), ast.Lit(7)).eval({})
        assert ast.Between(ast.Lit(7), ast.Lit(5), ast.Lit(7)).eval({})
        assert not ast.Between(ast.Lit(8), ast.Lit(5), ast.Lit(7)).eval({})

    def test_columns_collection(self):
        stmt = parse("select a + b from R where c = 1 and d like 'x%'")
        assert stmt.items[0].expr.columns() == {"a", "b"}
        assert stmt.where.columns() == {"c", "d"}
