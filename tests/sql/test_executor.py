import pytest

from repro.errors import SQLAnalysisError
from repro.relational import AttrType, Database, RelationSchema
from repro.sql import execute, plan_sql


@pytest.fixture()
def db():
    r = RelationSchema.of(
        "R", {"a": AttrType.INT, "b": AttrType.STR, "c": AttrType.FLOAT},
        ["a"],
    )
    s = RelationSchema.of(
        "S", {"x": AttrType.INT, "y": AttrType.STR}, ["x"]
    )
    return Database.from_dict(
        [r, s],
        {
            "R": [
                (1, "u", 10.0),
                (2, "v", 20.0),
                (3, "u", 30.0),
                (4, None, 40.0),
            ],
            "S": [(1, "p"), (1, "q"), (3, "r")],
        },
    )


def run(db, sql):
    plan, _ = plan_sql(sql, db.schema)
    return execute(plan, db)


class TestProjectionSelection:
    def test_select_star(self, db):
        out = run(db, "select * from R")
        assert len(out.rows) == 4
        assert len(out.schema.attribute_names) == 3

    def test_projection_order(self, db):
        out = run(db, "select c, a from R where a = 1")
        assert out.rows == [(10.0, 1)]

    def test_computed_projection(self, db):
        out = run(db, "select a * 2 + 1 as d from R where a = 3")
        assert out.rows == [(7,)]

    def test_filter_on_string(self, db):
        out = run(db, "select a from R where b = 'u'")
        assert sorted(out.rows) == [(1,), (3,)]

    def test_null_never_matches(self, db):
        out = run(db, "select a from R where b = 'nope'")
        assert out.rows == []
        out = run(db, "select a from R where b <> 'u'")
        assert sorted(out.rows) == [(2,)]  # NULL row excluded

    def test_is_null(self, db):
        out = run(db, "select a from R where b is null")
        assert out.rows == [(4,)]

    def test_in_and_between(self, db):
        assert sorted(run(db, "select a from R where a in (1, 3)").rows) == [
            (1,), (3,),
        ]
        assert sorted(
            run(db, "select a from R where c between 15.0 and 35.0").rows
        ) == [(2,), (3,)]

    def test_or(self, db):
        out = run(db, "select a from R where a = 1 or a = 4")
        assert sorted(out.rows) == [(1,), (4,)]

    def test_distinct(self, db):
        out = run(db, "select distinct b from R where a < 4")
        assert sorted(out.rows, key=str) == [("u",), ("v",)]


class TestJoins:
    def test_inner_join_bag(self, db):
        out = run(db, "select R.a, S.y from R, S where R.a = S.x")
        assert sorted(out.rows) == [(1, "p"), (1, "q"), (3, "r")]

    def test_join_syntax(self, db):
        out = run(db, "select R.a from R join S on R.a = S.x where S.y = 'r'")
        assert out.rows == [(3,)]

    def test_cross_join(self, db):
        out = run(db, "select R.a, S.x from R, S")
        assert len(out.rows) == 12

    def test_self_join(self, db):
        out = run(
            db,
            "select r1.a, r2.a from R r1, R r2 where r1.b = r2.b "
            "and r1.a < r2.a",
        )
        assert out.rows == [(1, 3)]

    def test_residual_predicate(self, db):
        out = run(
            db, "select R.a, S.x from R, S where R.a < S.x"
        )
        assert sorted(out.rows) == [(1, 3), (2, 3)]


class TestAggregates:
    def test_group_by_sum_count(self, db):
        out = run(
            db,
            "select b, sum(c) as s, count(*) as n from R "
            "where a < 4 group by b order by b",
        )
        assert out.rows == [("u", 40.0, 2), ("v", 20.0, 1)]

    def test_global_aggregate(self, db):
        out = run(db, "select sum(a) as s, avg(c) as m from R")
        assert out.rows == [(10, 25.0)]

    def test_global_aggregate_empty_input(self, db):
        out = run(db, "select count(*) as n, sum(a) as s from R where a > 99")
        assert out.rows == [(0, None)]

    def test_min_max(self, db):
        out = run(db, "select min(c) as lo, max(c) as hi from R")
        assert out.rows == [(10.0, 40.0)]

    def test_count_column_skips_nulls(self, db):
        out = run(db, "select count(b) as n from R")
        assert out.rows == [(3,)]

    def test_count_distinct(self, db):
        out = run(db, "select count(distinct b) as n from R")
        assert out.rows == [(2,)]

    def test_agg_over_expression(self, db):
        out = run(db, "select sum(c * 2) as s from R where a <= 2")
        assert out.rows == [(60.0,)]

    def test_having(self, db):
        out = run(
            db,
            "select b, count(*) as n from R where a < 4 group by b "
            "having count(*) > 1",
        )
        assert out.rows == [("u", 2)]

    def test_having_on_alias(self, db):
        out = run(
            db,
            "select b, sum(c) as s from R where a < 4 group by b "
            "having s > 25.0",
        )
        assert out.rows == [("u", 40.0)]

    def test_non_key_column_rejected(self, db):
        with pytest.raises(SQLAnalysisError):
            run(db, "select a, sum(c) from R group by b")


class TestOrderLimit:
    def test_order_desc(self, db):
        out = run(db, "select a from R order by a desc")
        assert out.rows == [(4,), (3,), (2,), (1,)]

    def test_order_by_alias(self, db):
        out = run(db, "select a, c * -1 as neg from R order by neg")
        assert [r[0] for r in out.rows] == [4, 3, 2, 1]

    def test_order_by_agg_alias(self, db):
        out = run(
            db,
            "select b, sum(c) as s from R where a < 4 group by b "
            "order by s desc",
        )
        assert out.rows == [("u", 40.0), ("v", 20.0)]

    def test_order_by_agg_expr(self, db):
        out = run(
            db,
            "select b, sum(c) as s from R where a < 4 group by b "
            "order by sum(c)",
        )
        assert out.rows == [("v", 20.0), ("u", 40.0)]

    def test_limit(self, db):
        out = run(db, "select a from R order by a limit 2")
        assert out.rows == [(1,), (2,)]

    def test_order_by_non_projected(self, db):
        out = run(db, "select b from R order by a desc limit 2")
        assert out.rows == [(None,), ("u",)]


class TestBinding:
    def test_ambiguous_column(self, db):
        with pytest.raises(SQLAnalysisError):
            run(db, "select a from R r1, R r2")

    def test_unknown_column(self, db):
        with pytest.raises(SQLAnalysisError):
            run(db, "select nope from R")

    def test_unknown_alias(self, db):
        with pytest.raises(SQLAnalysisError):
            run(db, "select Z.a from R")

    def test_duplicate_alias(self, db):
        with pytest.raises(SQLAnalysisError):
            run(db, "select R.a from R, S as R")

    def test_unqualified_resolution(self, db):
        out = run(db, "select y from R, S where a = x and a = 3")
        assert out.rows == [("r",)]
