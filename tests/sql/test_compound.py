"""UNION ALL / EXCEPT ALL — KBA's ∪ and − exposed through SQL."""

import pytest

from repro.errors import SQLSyntaxError
from repro.relational import AttrType, Database, RelationSchema, bag_equal
from repro.sql import ast, execute, parse, plan_sql
from repro.systems import SQLOverNoSQL, ZidianSystem


@pytest.fixture()
def db():
    r = RelationSchema.of(
        "R", {"a": AttrType.INT, "b": AttrType.STR}, ["a"]
    )
    return Database.from_dict(
        [r], {"R": [(1, "x"), (2, "y"), (3, "x"), (4, "z")]}
    )


class TestParsing:
    def test_union_all(self):
        stmt = parse("select a from R union all select a from R")
        assert isinstance(stmt, ast.CompoundSelect)
        assert stmt.op == "union"

    def test_except_all(self):
        stmt = parse("select a from R except all select a from R")
        assert stmt.op == "except"

    def test_left_associative_chain(self):
        stmt = parse(
            "select a from R union all select a from R "
            "except all select a from R"
        )
        assert stmt.op == "except"
        assert isinstance(stmt.left, ast.CompoundSelect)

    def test_bag_only(self):
        with pytest.raises(SQLSyntaxError):
            parse("select a from R union select a from R")

    def test_str_roundtrip(self):
        text = "select a from R union all select a from R"
        assert "UNION ALL" in str(parse(text))


class TestExecution:
    def test_union_keeps_duplicates(self, db):
        plan, _ = plan_sql(
            "select b from R union all select b from R where a < 3",
            db.schema,
        )
        out = execute(plan, db)
        assert len(out.rows) == 6

    def test_except_bag_semantics(self, db):
        plan, _ = plan_sql(
            "select b from R union all select b from R "
            "except all select b from R where b = 'x'",
            db.schema,
        )
        out = execute(plan, db)
        # 8 rows (4+4) minus two 'x' occurrences
        assert len(out.rows) == 6
        assert sorted(r[0] for r in out.rows) == [
            "x", "x", "y", "y", "z", "z",
        ]

    def test_arity_mismatch_rejected(self, db):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            plan_sql(
                "select a from R union all select a, b from R", db.schema
            )


class TestSystems:
    def test_all_paths_agree(self, paper_db, paper_baav_schema):
        sql = """
        select S.suppkey from SUPPLIER S, NATION N
        where S.nationkey = N.nationkey and N.name = 'GERMANY'
        union all
        select S.suppkey from SUPPLIER S, NATION N
        where S.nationkey = N.nationkey and N.name = 'FRANCE'
        except all
        select S.suppkey from SUPPLIER S where S.suppkey = 3
        """
        plan, _ = plan_sql(sql, paper_db.schema)
        reference = execute(plan, paper_db)

        base = SQLOverNoSQL("kudu", 2, 2)
        base.load(paper_db)
        assert bag_equal(reference, base.execute(sql).relation)

        zidian = ZidianSystem("kudu", 2, 2)
        zidian.load(paper_db, paper_baav_schema)
        result = zidian.execute(sql)
        assert bag_equal(
            reference, result.relation, check_names=False
        )
        assert result.decision is None
        assert len(result.sub_decisions) == 3
        assert result.sub_decisions[0].is_scan_free
        assert result.sub_decisions[1].is_scan_free
