"""Tests for the SPC structure extraction (terms, X-attrs, residuals)."""


from repro.sql import analyze, bind, parse


def get_analysis(schema, sql):
    return analyze(bind(parse(sql), schema))


class TestTerms:
    def test_join_equality_merges_terms(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select S.suppkey from SUPPLIER S, PARTSUPP PS "
            "where S.suppkey = PS.suppkey",
        )
        term = a.term_of("S.suppkey")
        assert term is not None
        assert term.attrs == {"S.suppkey", "PS.suppkey"}

    def test_transitivity(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select S1.suppkey from SUPPLIER S1, SUPPLIER S2, SUPPLIER S3 "
            "where S1.suppkey = S2.suppkey and S2.suppkey = S3.suppkey",
        )
        term = a.term_of("S1.suppkey")
        assert len(term.attrs) == 3

    def test_constant_binding(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select N.nationkey from NATION N where N.name = 'GERMANY'",
        )
        term = a.term_of("N.name")
        assert term.has_constant and term.constant == "GERMANY"
        assert "N.name" in a.constant_bound_attrs()

    def test_constant_propagates_through_equality(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey and N.nationkey = 10",
        )
        assert "S.nationkey" in a.constant_bound_attrs()

    def test_conflicting_constants_unsatisfiable(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select N.nationkey from NATION N "
            "where N.name = 'A' and N.name = 'B'",
        )
        assert a.unsatisfiable

    def test_in_list_binds(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select N.nationkey from NATION N where N.name in ('A', 'B')",
        )
        term = a.term_of("N.name")
        assert term.in_values == ("A", "B")
        assert term.is_bound

    def test_range_does_not_bind(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select PS.suppkey from PARTSUPP PS where PS.availqty > 5",
        )
        assert a.constant_bound_attrs() == set()
        assert "PS.availqty" in a.residual_attrs


class TestXAttrs:
    def test_x_includes_projection_and_joins(self, paper_db, q1_sql):
        a = get_analysis(paper_db.schema, q1_sql)
        x_ps = a.x_attrs("PS")
        assert x_ps == {"PS.suppkey", "PS.supplycost"}
        x_n = a.x_attrs("N")
        assert x_n == {"N.name", "N.nationkey"}
        x_s = a.x_attrs("S")
        assert x_s == {"S.suppkey", "S.nationkey"}

    def test_x_includes_residual_attrs(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select PS.suppkey from PARTSUPP PS where PS.availqty > 5",
        )
        assert "PS.availqty" in a.x_attrs("PS")

    def test_unused_attr_not_in_x(self, paper_db):
        a = get_analysis(
            paper_db.schema, "select PS.suppkey from PARTSUPP PS"
        )
        assert "PS.partkey" not in a.x_attrs("PS")

    def test_group_and_order_attrs_counted(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select S.nationkey, count(*) as n from SUPPLIER S "
            "group by S.nationkey order by n",
        )
        assert "S.nationkey" in a.x_attrs("S")


class TestStructure:
    def test_conjunctive_flag(self, paper_db):
        a = get_analysis(
            paper_db.schema,
            "select S.suppkey from SUPPLIER S "
            "where S.nationkey = 1 or S.nationkey = 2",
        )
        assert not a.conjunctive

    def test_join_edges(self, paper_db, q1_sql):
        a = get_analysis(paper_db.schema, q1_sql)
        assert ("N", "S") in a.join_edges()
        assert ("PS", "S") in a.join_edges()

    def test_describe_runs(self, paper_db, q1_sql):
        assert "atoms" in get_analysis(paper_db.schema, q1_sql).describe()
