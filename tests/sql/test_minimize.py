"""Tests for min(Q) — SPC minimization (§5.2, Example 5)."""


from repro.sql import analyze, bind, minimize, parse


def min_atoms(db_schema, sql):
    analysis = analyze(bind(parse(sql), db_schema))
    return minimize(analysis)


class TestMinimization:
    def test_no_redundancy_kept(self, paper_db):
        m = min_atoms(
            paper_db.schema,
            "select PS.suppkey from PARTSUPP PS, SUPPLIER S "
            "where PS.suppkey = S.suppkey",
        )
        assert set(m.atoms) == {"PS", "S"}

    def test_example5_self_join_removed(self, paper_db):
        """Q2 of Example 5: the renamed PARTSUPP copy folds away."""
        sql = """
        select PS.suppkey, PS.supplycost
        from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
        where N.name = 'GERMANY' and N.nationkey = S.nationkey
          and S.suppkey = PS.suppkey
          and PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
          and PS.partkey = PS2.partkey
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"N", "S", "PS"}

    def test_example5_x_attrs_shrink(self, paper_db):
        """After folding PS2, availqty leaves X_PS (per Example 5)."""
        sql = """
        select PS.suppkey, PS.supplycost
        from PARTSUPP PS, PARTSUPP PS2
        where PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
          and PS.partkey = PS2.partkey and PS.supplycost = PS2.supplycost
          and PS.suppkey = 1
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"PS"}
        x = {a.split(".")[1] for a in m.x_attrs("PS")}
        assert "availqty" not in x
        assert x == {"suppkey", "supplycost"}

    def test_distinguished_copy_not_removed(self, paper_db):
        """A copy with its own output attribute must survive."""
        sql = """
        select PS.suppkey, PS2.availqty
        from PARTSUPP PS, PARTSUPP PS2
        where PS.suppkey = PS2.suppkey
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"PS", "PS2"}

    def test_copy_with_different_constant_not_removed(self, paper_db):
        sql = """
        select S1.suppkey
        from SUPPLIER S1, SUPPLIER S2
        where S1.nationkey = 10 and S2.nationkey = 20
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"S1", "S2"}

    def test_copy_with_same_constant_removed(self, paper_db):
        sql = """
        select S1.suppkey
        from SUPPLIER S1, SUPPLIER S2
        where S1.nationkey = 10 and S2.nationkey = 10
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"S1"}

    def test_residual_atom_frozen(self, paper_db):
        """Atoms with range predicates cannot be folded away."""
        sql = """
        select S1.suppkey
        from SUPPLIER S1, SUPPLIER S2
        where S1.suppkey = S2.suppkey and S2.nationkey > 5
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"S1", "S2"}

    def test_unconstrained_copy_removed(self, paper_db):
        sql = "select S1.suppkey from SUPPLIER S1, SUPPLIER S2"
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"S1"}

    def test_disjunctive_query_left_alone(self, paper_db):
        sql = """
        select S1.suppkey from SUPPLIER S1, SUPPLIER S2
        where S1.nationkey = 1 or S2.nationkey = 2
        """
        m = min_atoms(paper_db.schema, sql)
        assert set(m.atoms) == {"S1", "S2"}

    def test_minimize_is_pure(self, paper_db):
        sql = "select S1.suppkey from SUPPLIER S1, SUPPLIER S2"
        analysis = analyze(bind(parse(sql), paper_db.schema))
        before = set(analysis.atoms)
        minimize(analysis)
        assert set(analysis.atoms) == before

    def test_equality_semantics_preserved(self, paper_db):
        """Folding never changes query answers."""
        from repro.relational import bag_equal
        from repro.sql import execute, plan_sql

        redundant = """
        select PS.suppkey, PS.supplycost
        from PARTSUPP PS, PARTSUPP PS2
        where PS.suppkey = PS2.suppkey and PS.partkey = PS2.partkey
          and PS.availqty = PS2.availqty and PS.supplycost = PS2.supplycost
        """
        minimal = "select PS.suppkey, PS.supplycost from PARTSUPP PS"
        plan1, _ = plan_sql(redundant, paper_db.schema)
        plan2, _ = plan_sql(minimal, paper_db.schema)
        assert bag_equal(
            execute(plan1, paper_db), execute(plan2, paper_db)
        )
