"""Shared fixtures: the paper's running example plus small workloads."""

from __future__ import annotations

import random

import pytest

from repro.baav import BaaVSchema, BaaVStore, kv_schema
from repro.kv import KVCluster, TaaVStore
from repro.relational import AttrType, Database, RelationSchema


@pytest.fixture()
def paper_schemas():
    """Relations of Example 1 (simplified TPC-H): SUPPLIER/PARTSUPP/NATION."""
    supplier = RelationSchema.of(
        "SUPPLIER",
        {"suppkey": AttrType.INT, "nationkey": AttrType.INT},
        ["suppkey"],
    )
    partsupp = RelationSchema.of(
        "PARTSUPP",
        {
            "partkey": AttrType.INT,
            "suppkey": AttrType.INT,
            "supplycost": AttrType.FLOAT,
            "availqty": AttrType.INT,
        },
        ["partkey", "suppkey"],
    )
    nation = RelationSchema.of(
        "NATION",
        {"nationkey": AttrType.INT, "name": AttrType.STR},
        ["nationkey"],
    )
    return supplier, partsupp, nation


@pytest.fixture()
def paper_db(paper_schemas):
    supplier, partsupp, nation = paper_schemas
    return Database.from_dict(
        [supplier, partsupp, nation],
        {
            "SUPPLIER": [(1, 10), (2, 10), (3, 20), (4, 30)],
            "PARTSUPP": [
                (100, 1, 5.0, 7),
                (100, 2, 3.0, 9),
                (200, 1, 2.0, 4),
                (300, 3, 8.0, 1),
                (300, 4, 1.5, 2),
            ],
            "NATION": [(10, "GERMANY"), (20, "FRANCE"), (30, "GERMANY")],
        },
    )


@pytest.fixture()
def paper_baav_schema(paper_schemas):
    """The BaaV schema of Example 1."""
    supplier, partsupp, nation = paper_schemas
    return BaaVSchema(
        [
            kv_schema("nation_by_name", nation, ["name"]),
            kv_schema("sup_by_nation", supplier, ["nationkey"]),
            kv_schema("ps_by_sup", partsupp, ["suppkey"]),
        ]
    )


@pytest.fixture()
def rng():
    """The deterministic RNG every randomized test must draw from.

    Tier-1 runs are reproducible by construction: tests never call the
    global ``random`` module or an unseeded ``random.Random()`` — they
    take this fixture (fresh per test, fixed seed) or pin an explicit
    seed, exactly like the workload generators and benchmarks do.
    """
    return random.Random(0x51D1A9)


@pytest.fixture()
def cluster():
    return KVCluster(4)


@pytest.fixture(scope="session", autouse=True)
def _reap_node_processes():
    """Session-wide safety net for the socket transport.

    Node servers run as forked child processes; clusters reap them on
    ``close()`` / garbage collection, but a test that fails mid-churn
    (or deliberately SIGKILLs processes) can leave strays. Ports are
    ephemeral (each listener binds ``127.0.0.1:0``), so parallel test
    sessions never collide; this teardown guarantees the *processes*
    don't outlive the session either.
    """
    yield
    from repro.kv.remote import reap_orphans

    reap_orphans()


@pytest.fixture()
def paper_store(paper_db, paper_baav_schema, cluster):
    return BaaVStore.map_database(paper_db, paper_baav_schema, cluster)


@pytest.fixture()
def paper_taav(paper_db, cluster):
    return TaaVStore.from_database(paper_db, cluster)


Q1_SQL = """
select PS.suppkey, SUM(PS.supplycost) as total
from PARTSUPP as PS, SUPPLIER as S, NATION as N
where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
  and N.name = 'GERMANY'
group by PS.suppkey
"""


@pytest.fixture()
def q1_sql():
    """Q1 of Example 3 (simplified TPC-H q11)."""
    return Q1_SQL


@pytest.fixture(scope="session")
def tpch_tiny():
    from repro.workloads.tpch import generate_tpch

    return generate_tpch(scale_factor=0.001, seed=7)


@pytest.fixture(scope="session")
def mot_small():
    from repro.workloads.mot import generate_mot

    return generate_mot(scale=1.0, seed=11)


@pytest.fixture(scope="session")
def airca_small():
    from repro.workloads.airca import generate_airca

    return generate_airca(scale=1.0, seed=13)
