"""Cross-workload integration: every query, every path, bag-equal."""

import pytest

from repro.relational import bag_diff, bag_equal
from repro.sql import execute as ra_execute, plan_sql
from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads import airca_generator, mot_generator
from repro.workloads.airca import airca_baav_schema
from repro.workloads.mot import mot_baav_schema
from repro.workloads.tpch import QUERIES, query_names, tpch_baav_schema


def check_all(db, baav, queries, backend="kudu"):
    base = SQLOverNoSQL(backend, workers=4, storage_nodes=3)
    base.load(db)
    zidian = ZidianSystem(backend, workers=4, storage_nodes=3)
    zidian.load(db, baav)
    failures = []
    for name, sql in queries:
        plan, _ = plan_sql(sql, db.schema)
        reference = ra_execute(plan, db)
        base_result = base.execute(sql)
        z_result = zidian.execute(sql)
        if not bag_equal(reference, base_result.relation):
            failures.append((name, "baseline",
                             bag_diff(reference, base_result.relation)))
        if not bag_equal(reference, z_result.relation):
            failures.append((name, "zidian",
                             bag_diff(reference, z_result.relation)))
    assert not failures, failures


@pytest.mark.slow
class TestTPCH:
    def test_all_22_queries(self, tpch_tiny):
        queries = [(n, QUERIES[n]) for n in query_names()]
        check_all(tpch_tiny, tpch_baav_schema(), queries)


class TestMOT:
    def test_all_12_templates(self, mot_small):
        queries = [
            (q.template, q.sql)
            for q in mot_generator(17).generate(mot_small, per_template=1)
        ]
        check_all(mot_small, mot_baav_schema(), queries)


class TestAIRCA:
    def test_all_12_templates(self, airca_small):
        queries = [
            (q.template, q.sql)
            for q in airca_generator(17).generate(airca_small, per_template=1)
        ]
        check_all(airca_small, airca_baav_schema(), queries)


class TestMetricsShape:
    def test_scan_free_queries_much_fewer_gets(self, mot_small):
        base = SQLOverNoSQL("hbase", workers=4, storage_nodes=3)
        base.load(mot_small)
        zidian = ZidianSystem("hbase", workers=4, storage_nodes=3)
        zidian.load(mot_small, mot_baav_schema())
        for q in mot_generator(23).generate(
            mot_small, per_template=1,
            templates=("q1", "q2", "q3", "q4", "q5", "q6"),
        ):
            m_base = base.execute(q.sql).metrics
            m_z = zidian.execute(q.sql).metrics
            assert m_z.n_get * 10 <= m_base.n_get, q.template

    def test_zidian_never_slower(self, mot_small):
        base = SQLOverNoSQL("kudu", workers=4, storage_nodes=3)
        base.load(mot_small)
        zidian = ZidianSystem("kudu", workers=4, storage_nodes=3)
        zidian.load(mot_small, mot_baav_schema())
        for q in mot_generator(29).generate(mot_small, per_template=1):
            m_base = base.execute(q.sql).metrics
            m_z = zidian.execute(q.sql).metrics
            assert m_z.sim_time_ms <= m_base.sim_time_ms * 1.05, q.template
