"""Failure injection: node crashes, corrupted storage, missing segments,
bad plans — including REAL process crashes on the socket transport."""

import random

import pytest

from repro.baav import BaaVStore
from repro.errors import (
    BaaVError,
    CodecError,
    ExecutionError,
    PlanError,
    ReproError,
)
from repro.kba import Constant, ExecContext, Extend, ScanKV, TaaVScan, execute
from repro.kv import KVCluster, codec
from repro.relational import Database


@pytest.fixture()
def store(paper_db, paper_baav_schema):
    cluster = KVCluster(3)
    return BaaVStore.map_database(paper_db, paper_baav_schema, cluster)


class TestNodeCrash:
    """Crash/recover storage nodes through the public cluster API and
    assert both query correctness and the failover metrics."""

    def test_query_survives_any_single_crash_with_replication(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        from repro.systems import ZidianSystem

        system = ZidianSystem(
            "kudu", workers=2, storage_nodes=3, replication_factor=2
        )
        system.load(paper_db, paper_baav_schema)
        want = sorted(system.execute(q1_sql).rows)
        for doomed in list(system.cluster.nodes):
            system.cluster.fail_node(doomed)
            result = system.execute(q1_sql)
            assert sorted(result.rows) == want
            # the engine prices the degraded cluster: storage work is
            # spread over the two live nodes, not three
            assert result.metrics.storage_nodes == 2
            system.cluster.recover_node(doomed)

    def test_crash_charges_failover_rebalance_metrics(
        self, paper_db, paper_baav_schema
    ):
        from repro.systems import ZidianSystem

        system = ZidianSystem(
            "kudu", workers=2, storage_nodes=3, replication_factor=2
        )
        system.load(paper_db, paper_baav_schema)
        system.cluster.fail_node(0)
        report = system.cluster.last_rebalance
        assert report is not None
        assert report.keys_moved > 0
        assert report.bytes_moved > 0
        total = system.cluster.total_counters()
        assert total.rebalance_keys_moved == report.keys_moved
        assert total.rebalance_bytes_moved == report.bytes_moved
        assert total.rebalance_round_trips == report.round_trips

    def test_baseline_system_survives_crash_too(self, paper_db, q1_sql):
        from repro.systems import SQLOverNoSQL

        system = SQLOverNoSQL(
            "kudu", workers=2, storage_nodes=3, replication_factor=3
        )
        system.load(paper_db)
        want = sorted(system.execute(q1_sql).rows)
        system.cluster.fail_node(1)
        system.cluster.fail_node(2)  # two of three down, R=3 still serves
        assert sorted(system.execute(q1_sql).rows) == want

    def test_unreplicated_crash_degrades_reads(self, paper_db, q1_sql):
        """R=1 (the paper's cluster) documents the failure the tentpole
        removes: a crashed node's tuples silently leave the scan."""
        from repro.systems import SQLOverNoSQL

        system = SQLOverNoSQL("kudu", workers=2, storage_nodes=3)
        system.load(paper_db)
        want = system.execute(q1_sql).rows
        system.cluster.fail_node(0)
        got = system.execute(q1_sql).rows
        assert len(got) <= len(want)

    def test_kv_workload_through_crash_and_recovery(self, rng):
        """A randomized KV workload interleaved with a crash: every
        acknowledged write stays readable (R=2, one node down)."""
        from repro.kv import KVCluster
        from repro.kv.codec import encode_key

        cluster = KVCluster(4, replication_factor=2)
        oracle = {}
        doomed = None
        for step in range(300):
            key = encode_key((rng.randrange(60),))
            if step == 150:
                doomed = rng.choice(cluster.live_node_ids)
                cluster.fail_node(doomed)
            if rng.random() < 0.7:
                value = f"v{step}".encode()
                cluster.put("wl", key, value)
                oracle[key] = value
            else:
                cluster.delete("wl", key)
                oracle.pop(key, None)
        for key, value in oracle.items():
            assert cluster.get("wl", key) == value
        cluster.recover_node(doomed)
        assert dict(cluster.scan("wl", count_as_gets=False)) == oracle


def _seeded_workload(cluster, inject_at, inject, steps=300, seed=0xFA17):
    """The seeded put/delete stream of the crash tests; both transports
    run it verbatim so their failover behavior is directly comparable.
    Returns the oracle of acknowledged writes."""
    from repro.kv.codec import encode_key

    rng = random.Random(seed)
    oracle = {}
    for step in range(steps):
        key = encode_key((rng.randrange(60),))
        if step == inject_at:
            inject(cluster)
        if rng.random() < 0.7:
            value = f"v{step}".encode()
            cluster.put("wl", key, value)
            oracle[key] = value
        else:
            cluster.delete("wl", key)
            oracle.pop(key, None)
    return oracle


class TestProcessCrash:
    """SIGKILL real node processes mid-workload (socket transport).

    The in-process ``fail_node`` tests above simulate crashes; these
    kill actual OS processes and prove the cluster's crash *detection*
    (dead peer -> NodePeerError -> mark down, re-replicate, retry the
    op) gives the same guarantees: no acknowledged read or write is
    lost at R=2, and the failover rebalance charges the same counters
    the in-process scenario does.
    """

    DOOMED = 1

    def test_sigkill_mid_workload_loses_nothing(self):
        from repro.kv import KVCluster

        with KVCluster(
            4, replication_factor=2, transport="socket"
        ) as cluster:
            oracle = _seeded_workload(
                cluster,
                inject_at=150,
                inject=lambda c: c.nodes[self.DOOMED].process.sigkill(),
            )
            # the workload itself crossed the crash: every op after the
            # SIGKILL was retried through failover and acknowledged
            assert cluster.down_node_ids == [self.DOOMED]
            for key, value in oracle.items():
                assert cluster.get("wl", key) == value
            # recovery respawns an empty process and re-syncs it
            cluster.recover_node(self.DOOMED)
            assert cluster.down_node_ids == []
            assert cluster.nodes[self.DOOMED].process.alive
            pairs = list(cluster.scan("wl", count_as_gets=False))
            # exactly-once: one pair per acknowledged key, right value
            assert len(pairs) == len(oracle)
            assert dict(pairs) == oracle

    def test_sigkill_failover_counters_match_in_process_scenario(self):
        """The failover-phase rebalance is deterministic: ops between
        the SIGKILL and its detection can only touch keys whose owner
        lists exclude the dead node (touching it IS detection), so the
        re-replicated key set — and with it keys/bytes/round-trips —
        equals the in-process ``fail_node`` run at the same step."""
        from repro.kv import KVCluster

        def counters_after(transport, inject):
            with KVCluster(
                4, replication_factor=2, transport=transport
            ) as cluster:
                _seeded_workload(cluster, inject_at=150, inject=inject)
                # force detection in case the tail of the workload
                # never touched the dead node
                list(cluster.scan("wl", count_as_gets=False))
                assert cluster.down_node_ids == [self.DOOMED]
                total = cluster.total_counters()
                return (
                    total.rebalance_keys_moved,
                    total.rebalance_bytes_moved,
                    total.rebalance_round_trips,
                )

        local = counters_after(
            "local", lambda c: c.fail_node(self.DOOMED)
        )
        socket_ = counters_after(
            "socket", lambda c: c.nodes[self.DOOMED].process.sigkill()
        )
        assert local == socket_
        assert local[0] > 0  # the crash actually moved data

    def test_cascading_process_crashes(self):
        """Sequential SIGKILLs with traffic in between: each failover
        re-replicates before the next crash, so R=2 survives losing
        half the cluster one node at a time."""
        from repro.kv import KVCluster
        from repro.kv.codec import encode_key

        with KVCluster(
            4, replication_factor=2, transport="socket"
        ) as cluster:
            oracle = {}
            for i in range(80):
                key = encode_key((i,))
                value = f"v{i}".encode()
                cluster.put("wl", key, value)
                oracle[key] = value
            for doomed in (0, 2):
                cluster.nodes[doomed].process.sigkill()
                # traffic detects the crash and rides the failover
                for key, value in oracle.items():
                    assert cluster.get("wl", key) == value
                assert doomed in cluster.down_node_ids
            assert cluster.num_live_nodes == 2
            assert (
                dict(cluster.scan("wl", count_as_gets=False)) == oracle
            )

    def test_last_replica_killed_raises_unavailable(self):
        from repro.errors import ClusterUnavailableError
        from repro.kv import KVCluster

        with KVCluster(1, transport="socket") as cluster:
            cluster.put("wl", b"k", b"v")
            cluster.nodes[0].process.sigkill()
            with pytest.raises(ClusterUnavailableError):
                cluster.get("wl", b"k")

    def test_service_queries_survive_node_process_crash(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        """End to end: a query service over a socket-transport system
        keeps answering correctly through a real node-process crash."""
        from repro.service import QueryService
        from repro.systems import ZidianSystem

        system = ZidianSystem(
            "kudu",
            workers=2,
            storage_nodes=3,
            replication_factor=2,
            transport="socket",
        )
        try:
            system.load(paper_db, paper_baav_schema)
            with QueryService(system, max_workers=2) as service:
                session = service.open_session()
                want = sorted(session.execute(q1_sql).rows)
                system.cluster.nodes[0].process.sigkill()
                assert sorted(session.execute(q1_sql).rows) == want
        finally:
            system.close()


class TestClusterKillRestart:
    """Whole-cluster kill-and-restart on a durable cluster (PR 8).

    Unlike the single-node crashes above, nothing survives to
    re-replicate from: every acknowledged write must come back from the
    nodes' own WAL + checkpoint state, byte for byte.
    """

    @pytest.mark.parametrize("replication_factor", [1, 2])
    def test_acked_writes_survive_full_sigkill(
        self, tmp_path, replication_factor
    ):
        from repro.kv import KVCluster
        from repro.kv.codec import encode_key

        data_dir = str(tmp_path / "cluster")
        oracle = {}
        with KVCluster(
            3,
            replication_factor=replication_factor,
            transport="socket",
            data_dir=data_dir,
        ) as cluster:
            for i in range(120):
                key = encode_key((i,))
                value = f"v{i}".encode()
                cluster.put("wl", key, value)
                oracle[key] = value
            cluster.delete("wl", encode_key((0,)))
            oracle.pop(encode_key((0,)))
            for node in cluster.nodes.values():
                node.crash()  # SIGKILL every node process at once

        with KVCluster(
            3,
            replication_factor=replication_factor,
            transport="socket",
            data_dir=data_dir,
        ) as reborn:
            pairs = dict(reborn.scan("wl", count_as_gets=False))
            assert pairs == oracle  # exactly-once, byte for byte

    def test_durable_sigkill_mid_workload_recovers_by_replay(self):
        """The PR's headline scenario over the real wire: a SIGKILLed
        durable node restarts by WAL replay + delta catch-up, so the
        recovery rebalance ships only the writes it missed — not its
        whole key range like the volatile runs above."""
        from repro.kv import KVCluster

        with KVCluster(
            4, replication_factor=2, transport="socket", durability="wal"
        ) as cluster:
            doomed = 1
            oracle = _seeded_workload(
                cluster,
                inject_at=150,
                inject=lambda c: c.nodes[doomed].process.sigkill(),
            )
            list(cluster.scan("wl", count_as_gets=False))
            assert cluster.down_node_ids == [doomed]
            cluster.recover_node(doomed)
            report = cluster.last_rebalance
            # the node's full key range (owner lists include it again)
            full_range = sum(
                1
                for key in oracle
                if doomed in cluster._live_owner_ids(
                    cluster.full_key("wl", key)
                )
            )
            # the replayed node needed at most the post-crash delta —
            # strictly less than re-shipping everything it owns
            assert report.keys_moved < max(1, full_range)
            for key, value in oracle.items():
                assert cluster.get("wl", key) == value

    def test_durable_system_blocks_survive_full_sigkill(
        self, paper_db, paper_baav_schema, q1_sql, tmp_path
    ):
        """End to end: a Zidian system loads onto a durable cluster,
        every node process is SIGKILLed, and a cluster rebuilt from the
        same data_dir holds every BaaV block byte-for-byte — the loaded
        state needs no re-load, it comes back from the WAL."""
        from repro.kv import KVCluster
        from repro.systems import ZidianSystem

        data_dir = str(tmp_path / "system")
        system = ZidianSystem(
            "kudu",
            workers=2,
            storage_nodes=3,
            replication_factor=2,
            data_dir=data_dir,
        )
        try:
            system.load(paper_db, paper_baav_schema)
            assert sorted(system.execute(q1_sql).rows)  # sanity: it runs
            blocks = {
                namespace: dict(
                    system.cluster.scan(namespace, count_as_gets=False)
                )
                for namespace in system.cluster.namespaces()
            }
            for node in system.cluster.nodes.values():
                node.crash()
        finally:
            system.close()

        with KVCluster(
            3, replication_factor=2, data_dir=data_dir
        ) as reborn:
            assert any(blocks.values())  # the system really wrote data
            for namespace, pairs in blocks.items():
                got = dict(reborn.scan(namespace, count_as_gets=False))
                assert got == pairs


class TestCorruptedStorage:
    def test_corrupt_block_payload_raises_codec_error(self, store):
        instance = store.instance("sup_by_nation")
        key_bytes = codec.encode_key((10, 0))
        instance.cluster.put(instance.namespace, key_bytes, b"\xff\xff\xff")
        with pytest.raises(CodecError):
            instance.get((10,))

    def test_missing_segment_detected(self, store):
        instance = store.instance("sup_by_nation")
        # claim 3 segments but store only segment 0
        from repro.baav.store import _encode_segment
        from repro.baav.block import Block

        instance.cluster.put(
            instance.namespace,
            codec.encode_key((77, 0)),
            _encode_segment(3, Block([((1,), 1)])),
        )
        with pytest.raises(BaaVError):
            instance.get((77,))

    def test_errors_are_repro_errors(self):
        assert issubclass(CodecError, ReproError)
        assert issubclass(BaaVError, ReproError)
        assert issubclass(PlanError, ReproError)


class TestBadPlans:
    def test_extend_probe_not_covering_key(self, store):
        plan = Extend(
            Constant(("x",), ((1,),)),
            "ps_by_sup",
            "PS",
            on=(),  # key not covered
        )
        with pytest.raises(PlanError):
            execute(plan, ExecContext(store))

    def test_extend_unknown_instance(self, store):
        plan = Extend(
            Constant(("x",), ((1,),)), "nope", "PS", (("x", "suppkey"),)
        )
        with pytest.raises(ReproError):
            execute(plan, ExecContext(store))

    def test_taav_scan_without_taav_store(self, store):
        with pytest.raises(ExecutionError):
            execute(TaaVScan("SUPPLIER", "S"), ExecContext(store, None))

    def test_scan_unknown_instance(self, store):
        with pytest.raises(ReproError):
            execute(ScanKV("nope", "S"), ExecContext(store))

    def test_stats_group_without_stats(self, paper_db, paper_baav_schema):
        from repro.kba import StatsGroup
        from repro.sql import ast
        from repro.sql.algebra import AggSpec

        cluster = KVCluster(2)
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster, keep_stats=False
        )
        plan = StatsGroup(
            "ps_by_sup",
            "PS",
            (AggSpec("s", "SUM", ast.Column("PS.supplycost")),),
        )
        with pytest.raises(ExecutionError):
            execute(plan, ExecContext(store))


class TestEmptyData:
    def test_empty_database_scan_free_query(self, paper_schemas, paper_baav_schema):
        supplier, partsupp, nation = paper_schemas
        empty = Database.from_dict(
            [supplier, partsupp, nation],
            {"SUPPLIER": [], "PARTSUPP": [], "NATION": []},
        )
        from repro.systems import ZidianSystem

        system = ZidianSystem("kudu", workers=2, storage_nodes=2)
        system.load(empty, paper_baav_schema)
        result = system.execute(
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey and N.name = 'GERMANY'"
        )
        assert result.rows == []

    def test_empty_relation_aggregate(self, paper_schemas, paper_baav_schema):
        supplier, partsupp, nation = paper_schemas
        empty = Database.from_dict(
            [supplier, partsupp, nation],
            {"SUPPLIER": [], "PARTSUPP": [], "NATION": []},
        )
        from repro.systems import SQLOverNoSQL, ZidianSystem

        base = SQLOverNoSQL("kudu", workers=2, storage_nodes=2)
        base.load(empty)
        zidian = ZidianSystem("kudu", workers=2, storage_nodes=2)
        zidian.load(empty, paper_baav_schema)
        sql = "select count(*) as n, sum(S.suppkey) as s from SUPPLIER S"
        assert base.execute(sql).rows == [(0, None)]
        assert zidian.execute(sql).rows == [(0, None)]

    def test_null_join_keys_never_match(self, paper_schemas, paper_baav_schema):
        supplier, partsupp, nation = paper_schemas
        db = Database.from_dict(
            [supplier, partsupp, nation],
            {
                "SUPPLIER": [(1, None), (2, 10)],
                "PARTSUPP": [],
                "NATION": [(10, "GERMANY"), (None, "NOWHERE")],
            },
        )
        from repro.relational import bag_equal
        from repro.sql import execute as ra_execute, plan_sql
        from repro.systems import ZidianSystem

        sql = (
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey"
        )
        plan, _ = plan_sql(sql, db.schema)
        reference = ra_execute(plan, db)
        assert sorted(reference.rows) == [(2,)]
        system = ZidianSystem("kudu", workers=2, storage_nodes=2)
        system.load(db, paper_baav_schema)
        assert bag_equal(system.execute(sql).relation, reference)


class TestDisjunctiveQueries:
    """OR predicates: conservative decisions, still-correct plans."""

    def test_or_within_alias(self, paper_db, paper_baav_schema):
        from repro.relational import bag_equal
        from repro.sql import execute as ra_execute, plan_sql
        from repro.systems import ZidianSystem

        sql = (
            "select S.suppkey from SUPPLIER S "
            "where S.nationkey = 10 or S.nationkey = 30"
        )
        plan, _ = plan_sql(sql, paper_db.schema)
        reference = ra_execute(plan, paper_db)
        system = ZidianSystem("kudu", workers=2, storage_nodes=2)
        system.load(paper_db, paper_baav_schema)
        result = system.execute(sql)
        assert not result.decision.is_scan_free  # conservative
        assert bag_equal(result.relation, reference)

    def test_or_across_aliases(self, paper_db, paper_baav_schema):
        from repro.relational import bag_equal
        from repro.sql import execute as ra_execute, plan_sql
        from repro.systems import ZidianSystem

        sql = (
            "select S.suppkey, PS.partkey from SUPPLIER S, PARTSUPP PS "
            "where S.suppkey = PS.suppkey "
            "and (S.nationkey = 10 or PS.availqty > 5)"
        )
        plan, _ = plan_sql(sql, paper_db.schema)
        reference = ra_execute(plan, paper_db)
        system = ZidianSystem("kudu", workers=2, storage_nodes=2)
        system.load(paper_db, paper_baav_schema)
        assert bag_equal(system.execute(sql).relation, reference)

    def test_constant_and_or_mix(self, paper_db, paper_baav_schema):
        """A top-level constant conjunct still drives a scan-free chain
        even when another conjunct is disjunctive."""
        from repro.relational import bag_equal
        from repro.sql import execute as ra_execute, plan_sql
        from repro.systems import ZidianSystem

        sql = (
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey and N.name = 'GERMANY' "
            "and (S.suppkey = 1 or S.suppkey = 2)"
        )
        plan, _ = plan_sql(sql, paper_db.schema)
        reference = ra_execute(plan, paper_db)
        system = ZidianSystem("kudu", workers=2, storage_nodes=2)
        system.load(paper_db, paper_baav_schema)
        result = system.execute(sql)
        assert result.decision.is_scan_free
        assert bag_equal(result.relation, reference)


class TestMvccChurn:
    """Cluster churn (fail/recover/add) racing open snapshots must not
    corrupt snapshot reads NOR leak version chains: rebalancing and
    recovery copy base state with raw store ops, so the overlay tracks
    only transactional overwrites, wherever the keys currently live."""

    COUNT_SQL = "select count(*) as n from PARTSUPP PS"

    def _loaded(self, paper_db, paper_baav_schema, **kwargs):
        from repro.systems import ZidianSystem

        system = ZidianSystem(
            "kudu", workers=2, storage_nodes=3,
            replication_factor=2, **kwargs,
        )
        system.load(paper_db.copy(), paper_baav_schema)
        system.enable_transactions()
        return system

    def _commit_row(self, system, key):
        with system.begin() as txn:
            txn.apply_updates(
                "PARTSUPP", inserts=[(key, 1, 1.0, 1)]
            )
        return txn.epoch

    def test_fail_recover_during_open_snapshot(
        self, paper_db, paper_baav_schema
    ):
        system = self._loaded(paper_db, paper_baav_schema)
        manager = system.transactions
        base = system.execute(self.COUNT_SQL).rows[0][0]
        with manager.snapshot() as epoch:
            self._commit_row(system, 900)
            system.cluster.fail_node(0)
            # the pinned reader still sees the pre-commit state, off
            # the surviving replicas
            assert system.execute(self.COUNT_SQL).rows[0][0] == base
            system.cluster.recover_node(0)
            # recovery re-syncs base state with raw ops: the overlay
            # must not have recorded any of it as new versions
            assert system.execute(self.COUNT_SQL).rows[0][0] == base
            assert manager.versions.read_epoch() == epoch
        # snapshot released: nothing retained for it may linger
        assert manager.epochs.pinned() == 0
        assert manager.versions.tracked_versions() == 0
        assert manager.versions.tracked_keys() == 0
        assert system.execute(self.COUNT_SQL).rows[0][0] == base + 1
        system.close()

    def test_add_node_rebalance_during_open_snapshot(
        self, paper_db, paper_baav_schema
    ):
        system = self._loaded(paper_db, paper_baav_schema)
        manager = system.transactions
        base = system.execute(self.COUNT_SQL).rows[0][0]
        with manager.snapshot():
            self._commit_row(system, 901)
            node = system.cluster.add_node()
            # rebalancing migrated blocks between nodes; the snapshot
            # still reads its pinned pre-commit state
            assert system.execute(self.COUNT_SQL).rows[0][0] == base
            assert node.node_id in system.cluster.live_node_ids
        assert manager.versions.tracked_versions() == 0
        assert manager.versions.tracked_keys() == 0
        assert system.execute(self.COUNT_SQL).rows[0][0] == base + 1
        system.close()

    def test_churn_between_commits_leaks_nothing(
        self, paper_db, paper_baav_schema
    ):
        """A churn storm interleaved with commits and snapshots: once
        the last snapshot unpins, the overlay must be empty (the leak
        sweep the PR-9 GC is accountable for)."""
        system = self._loaded(paper_db, paper_baav_schema)
        manager = system.transactions
        base = system.execute(self.COUNT_SQL).rows[0][0]
        for step in range(4):
            with manager.snapshot():
                self._commit_row(system, 910 + step)
                doomed = system.cluster.live_node_ids[0]
                system.cluster.fail_node(doomed)
                system.cluster.recover_node(doomed)
            # every commit epoch was superseded only by the next one;
            # each unpin advances the horizon and sweeps
            assert manager.epochs.pinned() == 0
        assert manager.versions.tracked_versions() == 0
        assert manager.versions.tracked_keys() == 0
        assert (
            system.execute(self.COUNT_SQL).rows[0][0] == base + 4
        )
        system.close()

    def test_socket_transport_churn_leak_sweep(
        self, paper_db, paper_baav_schema
    ):
        """Same sweep over real node processes (socket transport)."""
        system = self._loaded(
            paper_db, paper_baav_schema, transport="socket"
        )
        try:
            manager = system.transactions
            base = system.execute(self.COUNT_SQL).rows[0][0]
            with manager.snapshot():
                self._commit_row(system, 920)
                doomed = system.cluster.live_node_ids[0]
                system.cluster.fail_node(doomed)
                assert (
                    system.execute(self.COUNT_SQL).rows[0][0] == base
                )
                system.cluster.recover_node(doomed)
            assert manager.versions.tracked_versions() == 0
            assert manager.versions.tracked_keys() == 0
            assert (
                system.execute(self.COUNT_SQL).rows[0][0] == base + 1
            )
        finally:
            system.close()
