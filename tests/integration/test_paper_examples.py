"""Integration tests tracing the paper's running examples end to end."""


from repro.baav import BaaVSchema, BaaVStore, kv_schema
from repro.core import Zidian
from repro.kba import Extend, GroupK, walk
from repro.kv import KVCluster
from repro.relational import bag_equal
from repro.sql import execute as ra_execute, plan_sql
from repro.systems import SQLOverNoSQL, ZidianSystem


class TestExample1:
    """BaaV schemas over the simplified TPC-H relations."""

    def test_non_pk_attributes_as_keys(self, paper_baav_schema):
        # nationkey, suppkey and name are keys although they are not
        # primary keys of their relations — impossible under TaaV
        assert paper_baav_schema.get("sup_by_nation").key == ("nationkey",)
        assert paper_baav_schema.get("ps_by_sup").key == ("suppkey",)
        assert paper_baav_schema.get("nation_by_name").key == ("name",)

    def test_taav_is_special_case_of_baav(self, paper_schemas):
        """TaaV = BaaV with singleton blocks (§4.1)."""
        from repro.baav import taav_equivalent_schema
        from repro.relational import Database

        supplier, _, _ = paper_schemas
        db = Database.from_dict(
            [supplier], {"SUPPLIER": [(1, 10), (2, 20)]}
        )
        schema = BaaVSchema([taav_equivalent_schema(supplier)])
        store = BaaVStore.map_database(db, schema, KVCluster(2))
        instance = store.instance("taav_SUPPLIER")
        assert instance.degree == 1  # every block is a single tuple


class TestExample3And7:
    """Q1, its scan-free plan ξ1, and the chase that generates it."""

    def test_full_pipeline(self, paper_db, paper_baav_schema, q1_sql):
        cluster = KVCluster(4)
        store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
        zidian = Zidian(paper_db.schema, paper_baav_schema, store)

        plan, decision = zidian.plan(q1_sql)
        # M1 verdicts
        assert decision.answerable
        assert decision.is_scan_free
        assert decision.is_bounded

        # M2 plan shape: the ∝ chain of Example 7
        extends = [n for n in walk(plan.root) if isinstance(n, Extend)]
        assert {e.kv_name for e in extends} == {
            "nation_by_name", "sup_by_nation", "ps_by_sup"
        }
        assert isinstance(plan.root, GroupK)

    def test_results_match_all_three_backends(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        plan, _ = plan_sql(q1_sql, paper_db.schema)
        reference = ra_execute(plan, paper_db)
        for backend in ("hbase", "kudu", "cassandra"):
            system = ZidianSystem(backend, workers=4, storage_nodes=2)
            system.load(paper_db, paper_baav_schema)
            assert bag_equal(system.execute(q1_sql).relation, reference)


class TestTable2Shape:
    """The case-study improvements of Table 2, at fixture scale."""

    def test_zidian_improves_all_four_metrics(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        for backend in ("hbase", "kudu", "cassandra"):
            base = SQLOverNoSQL(backend, workers=4, storage_nodes=2)
            base.load(paper_db)
            m_base = base.execute(q1_sql).metrics

            zidian = ZidianSystem(backend, workers=4, storage_nodes=2)
            zidian.load(paper_db, paper_baav_schema)
            m_z = zidian.execute(q1_sql).metrics

            assert m_z.sim_time_ms < m_base.sim_time_ms, backend
            assert m_z.n_get < m_base.n_get, backend
            assert m_z.data_values < m_base.data_values, backend
            assert m_z.comm_bytes < m_base.comm_bytes, backend


class TestBoundedQueriesStableUnderGrowth:
    """Exp-2's key claim: bounded query cost is independent of |D|."""

    def test_gets_constant_as_database_grows(self, paper_schemas):
        from repro.relational import Database

        supplier, partsupp, nation = paper_schemas
        baav = BaaVSchema(
            [
                kv_schema("nation_by_name", nation, ["name"]),
                kv_schema("sup_by_nation", supplier, ["nationkey"]),
                kv_schema("ps_by_sup", partsupp, ["suppkey"]),
            ]
        )
        sql = """
        select PS.partkey, PS.supplycost
        from PARTSUPP PS, SUPPLIER S, NATION N
        where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
          and N.name = 'GERMANY'
        """
        gets = []
        for scale in (1, 4, 16):
            rows_s = [(i, 10 if i <= 2 else 20) for i in range(1, 4 * scale)]
            rows_ps = [
                (100 + i, (i % (4 * scale - 1)) + 1, float(i), i)
                for i in range(60 * scale)
            ]
            db = Database.from_dict(
                [supplier, partsupp, nation],
                {
                    "SUPPLIER": rows_s,
                    "PARTSUPP": rows_ps,
                    "NATION": [(10, "GERMANY"), (20, "FRANCE")],
                },
            )
            system = ZidianSystem("kudu", workers=2, storage_nodes=2)
            system.load(db, baav)
            result = system.execute(sql)
            assert result.decision.is_scan_free
            gets.append(result.metrics.n_get)
        # the German supplier set is fixed: gets do not grow with |D|
        assert gets[0] == gets[1] == gets[2]
