"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, args=(), stdin=""):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "scan_free=True" in proc.stdout
        assert "Extend" in proc.stdout

    @pytest.mark.slow
    def test_tpch_case_study(self):
        proc = run_example("tpch_case_study.py", ["0.001"])
        assert proc.returncode == 0, proc.stderr
        assert "SoHZidian" in proc.stdout
        assert "M1 decision" in proc.stdout

    @pytest.mark.slow
    def test_mot_fleet_analytics(self):
        proc = run_example("mot_fleet_analytics.py")
        assert proc.returncode == 0, proc.stderr
        assert "Incremental maintenance" in proc.stdout

    @pytest.mark.slow
    def test_schema_design_t2b(self):
        proc = run_example("schema_design_t2b.py")
        assert proc.returncode == 0, proc.stderr
        assert "T2B designed" in proc.stdout
        assert "Scan-free over the designed schema" in proc.stdout

    @pytest.mark.slow
    def test_zidian_shell(self):
        proc = run_example(
            "zidian_shell.py", ["mot", "1"],
            stdin=".tables\nq1\n.explain q7\n.quit\n",
        )
        assert proc.returncode == 0, proc.stderr
        assert "decision" in proc.stdout
        assert "verdict" in proc.stdout

    @pytest.mark.slow
    def test_paper_walkthrough(self):
        proc = run_example("paper_walkthrough.py")
        assert proc.returncode == 0, proc.stderr
        assert "Example 7" in proc.stdout
        assert "scan_free=True" in proc.stdout
