"""Unit tests for plan-generation internals: top splitting, substitution."""


from repro.core.plangen import _split_top, substitute_table
from repro.sql import algebra, plan_sql
from repro.sql.executor import Table, run as ra_run


def plan_for(db, sql):
    plan, _ = plan_sql(sql, db.schema)
    return plan


class TestSplitTop:
    def test_plain_spj_core_is_whole_plan_below_project(self, paper_db):
        plan = plan_for(
            paper_db,
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey and N.name = 'GERMANY'",
        )
        core, replace, groupby, having = _split_top(plan)
        assert groupby is None and having is None
        assert replace is core
        assert isinstance(core, (algebra.JoinNode, algebra.SelectNode))

    def test_groupby_detected(self, paper_db, q1_sql):
        plan = plan_for(paper_db, q1_sql)
        core, replace, groupby, having = _split_top(plan)
        assert isinstance(groupby, algebra.GroupByNode)
        assert replace is groupby
        assert having is None

    def test_having_detected(self, paper_db, q1_sql):
        plan = plan_for(
            paper_db, q1_sql + " having SUM(PS.supplycost) > 1.0 "
        )
        core, replace, groupby, having = _split_top(plan)
        assert isinstance(groupby, algebra.GroupByNode)
        assert isinstance(having, algebra.SelectNode)
        assert replace is having

    def test_order_limit_stay_above(self, paper_db, q1_sql):
        plan = plan_for(paper_db, q1_sql + " order by total desc limit 2 ")
        core, replace, groupby, having = _split_top(plan)
        assert isinstance(groupby, algebra.GroupByNode)
        # ordering/limit/projection remain in the RA top above `replace`
        labels = plan.describe()
        assert "OrderBy" in labels and "Limit" in labels


class TestSubstituteTable:
    def test_replaces_core_and_executes_top(self, paper_db, q1_sql):
        plan = plan_for(paper_db, q1_sql + " order by total desc limit 1 ")
        core, replace, groupby, having = _split_top(plan)
        fake = Table(
            tuple(replace.output),
            [(1, 99.0), (2, 3.0)],
        )
        final = substitute_table(plan, replace, fake)
        out = ra_run(final, _NoDb())
        assert out.rows == [(1, 99.0)]

    def test_root_replacement(self):
        table = Table(("x",), [(1,)])
        node = algebra.TableNode(Table(("x",), []))
        replaced = substitute_table(node, node, table)
        assert isinstance(replaced, algebra.TableNode)
        assert replaced.table is table


class _NoDb:
    def relation(self, name):
        raise AssertionError(f"top unexpectedly scanned {name}")


class TestUniqueNames:
    def test_dedupe(self):
        from repro.sql.executor import unique_names

        assert unique_names(["a", "a", "b", "a"]) == ["a", "a#2", "b", "a#3"]

    def test_identity_when_unique(self):
        from repro.sql.executor import unique_names

        assert unique_names(["x", "y"]) == ["x", "y"]
