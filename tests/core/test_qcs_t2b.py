"""Tests for QCS extraction and the T2B schema designer (§8.1, M4)."""


from repro.core import QCS, design_schema, extract_qcs, extract_workload_qcs
from repro.core.scanfree import is_scan_free
from repro.sql import analyze, bind, parse


def bound(schema, sql):
    return bind(parse(sql), schema)


class TestQCSExtraction:
    def test_paper_example(self, paper_db):
        """Q = πF(σA=1 R ⋈B=E S) yields AB[A] and EF[E] (§8.1 example)."""
        from repro.relational import AttrType, DatabaseSchema, RelationSchema

        r = RelationSchema.of(
            "R", {"A": AttrType.INT, "B": AttrType.INT, "C": AttrType.INT}
        )
        s = RelationSchema.of(
            "S", {"E": AttrType.INT, "F": AttrType.INT, "G": AttrType.INT}
        )
        schema = DatabaseSchema([r, s])
        qcs = extract_qcs(
            bound(
                schema,
                "select S.F from R, S where R.A = 1 and R.B = S.E",
            )
        )
        by_rel = {q.relation: q for q in qcs}
        assert by_rel["R"].z == frozenset({"A", "B"})
        assert by_rel["R"].x == frozenset({"A"})
        assert by_rel["S"].z == frozenset({"E", "F"})
        assert by_rel["S"].x == frozenset({"E"})

    def test_q1_access_patterns(self, paper_db, q1_sql):
        qcs = extract_qcs(bound(paper_db.schema, q1_sql))
        by_rel = {q.relation: q for q in qcs}
        assert by_rel["NATION"].x == frozenset({"name"})
        assert by_rel["SUPPLIER"].x == frozenset({"nationkey"})
        assert by_rel["PARTSUPP"].x == frozenset({"suppkey"})

    def test_scan_pattern_empty_x(self, paper_db):
        qcs = extract_qcs(
            bound(paper_db.schema, "select S.suppkey from SUPPLIER S")
        )
        assert qcs[0].x == frozenset()

    def test_workload_dedupe(self, paper_db, q1_sql):
        queries = [bound(paper_db.schema, q1_sql) for _ in range(3)]
        assert len(extract_workload_qcs(queries)) == len(
            extract_workload_qcs(queries[:1])
        )

    def test_qcs_x_subset_z_enforced(self):
        q = QCS("R", frozenset({"a"}), frozenset({"a", "b"}))
        assert q.x <= q.z


class TestT2B:
    def workload(self, paper_db, q1_sql):
        sqls = [
            q1_sql,
            "select S.suppkey from SUPPLIER S, NATION N "
            "where S.nationkey = N.nationkey and N.name = 'FRANCE'",
        ]
        return [bound(paper_db.schema, sql) for sql in sqls]

    def test_design_supports_workload(self, paper_db, q1_sql):
        qcs = extract_workload_qcs(self.workload(paper_db, q1_sql))
        baav, report = design_schema(paper_db.schema, qcs, paper_db)
        assert all(report.supported.values())

    def test_designed_schema_makes_queries_scan_free(
        self, paper_db, q1_sql
    ):
        qcs = extract_workload_qcs(self.workload(paper_db, q1_sql))
        baav, _ = design_schema(paper_db.schema, qcs, paper_db)
        report = is_scan_free(
            analyze(bound(paper_db.schema, q1_sql)), baav
        )
        assert report.scan_free

    def test_redundant_schema_removed(self, paper_db, q1_sql):
        # feed the same pattern twice with an extra superfluous one
        queries = self.workload(paper_db, q1_sql)
        qcs = extract_workload_qcs(queries)
        # duplicate QCS with wider Z on NATION (same X)
        qcs.append(QCS("NATION", frozenset({"name", "nationkey"}),
                       frozenset({"name"})))
        baav, report = design_schema(paper_db.schema, qcs, paper_db)
        names = [s.name for s in baav]
        assert len(names) == len(set(names))
        assert all(report.supported.values())

    def test_budget_triggers_merging(self, paper_db, q1_sql):
        queries = self.workload(paper_db, q1_sql) + [
            bound(
                paper_db.schema,
                "select PS.availqty from PARTSUPP PS, SUPPLIER S "
                "where PS.suppkey = S.suppkey and S.nationkey = 10",
            )
        ]
        qcs = extract_workload_qcs(queries)
        unlimited, _ = design_schema(paper_db.schema, qcs, paper_db)
        tight, report = design_schema(
            paper_db.schema, qcs, paper_db, budget_bytes=400
        )
        assert len(tight) <= len(unlimited)
        # merging preserves support
        assert all(report.supported.values())

    def test_scan_qcs_uses_primary_key(self, paper_db):
        qcs = [QCS("SUPPLIER", frozenset({"suppkey", "nationkey"}),
                   frozenset())]
        baav, report = design_schema(paper_db.schema, qcs, paper_db)
        schemas = baav.over_relation("SUPPLIER")
        assert schemas and schemas[0].key == ("suppkey",)
        assert all(report.supported.values())

    def test_schema_only_estimate_without_database(self, paper_db, q1_sql):
        qcs = extract_workload_qcs(self.workload(paper_db, q1_sql))
        baav, report = design_schema(paper_db.schema, qcs, None)
        assert len(baav) >= 1
        assert report.estimated_bytes > 0


class TestSuggestSchemas:
    """Human-in-the-loop schema design (§8.1 interface)."""

    def test_no_suggestions_when_supported(self, paper_db, q1_sql):
        from repro.core import suggest_schemas
        from repro.sql import bind, parse

        queries = [bind(parse(q1_sql), paper_db.schema)]
        qcs = extract_workload_qcs(queries)
        baav, _ = design_schema(paper_db.schema, qcs, paper_db)
        assert suggest_schemas(paper_db.schema, qcs, baav, paper_db) == []

    def test_suggests_missing_pattern(self, paper_db, paper_baav_schema):
        from repro.core import suggest_schemas

        # access PARTSUPP by partkey: not supported by the paper schema
        missing = QCS(
            "PARTSUPP",
            frozenset({"partkey", "supplycost"}),
            frozenset({"partkey"}),
        )
        suggestions = suggest_schemas(
            paper_db.schema, [missing], paper_baav_schema, paper_db
        )
        assert len(suggestions) == 1
        suggestion = suggestions[0]
        assert suggestion.kv_schema.key == ("partkey",)
        assert suggestion.estimated_bytes > 0
        assert suggestion.supports == [str(missing)]

    def test_adding_suggestion_fixes_support(
        self, paper_db, paper_baav_schema
    ):
        from repro.core import Zidian, suggest_schemas

        missing = QCS(
            "PARTSUPP",
            frozenset({"partkey", "supplycost"}),
            frozenset({"partkey"}),
        )
        sql = (
            "select PS.supplycost from PARTSUPP PS where PS.partkey = 100"
        )
        before = Zidian(paper_db.schema, paper_baav_schema)
        assert not before.decide(sql).is_scan_free
        suggestions = suggest_schemas(
            paper_db.schema, [missing], paper_baav_schema, paper_db
        )
        for suggestion in suggestions:
            paper_baav_schema.add(suggestion.kv_schema)
        after = Zidian(paper_db.schema, paper_baav_schema)
        assert after.decide(sql).is_scan_free
