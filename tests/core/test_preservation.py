"""Tests for Condition (II) result preservability — Theorem 2, Example 5."""

import pytest

from repro.baav import BaaVSchema, KVSchema, kv_schema
from repro.core import is_result_preserving
from repro.sql import analyze, bind, parse


def decide(schema, baav, sql):
    return is_result_preserving(analyze(bind(parse(sql), schema)), baav)


@pytest.fixture()
def partial_baav(paper_schemas):
    """R̃'1 of Example 5: PARTSUPP' without availqty."""
    supplier, partsupp, nation = paper_schemas
    return BaaVSchema(
        [
            kv_schema("nation_by_name", nation, ["name"]),
            kv_schema("sup_by_nation", supplier, ["nationkey"]),
            KVSchema(
                "ps_partial", partsupp, ["suppkey"],
                ["partkey", "supplycost"],
            ),
        ]
    )


Q1_PRIME = """
select PS.suppkey, PS.supplycost
from NATION N, SUPPLIER S, PARTSUPP PS
where N.name = 'GERMANY' and N.nationkey = S.nationkey
  and S.suppkey = PS.suppkey
"""


class TestConditionII:
    def test_q1_preserved_by_full_schema(self, paper_db, paper_baav_schema):
        report = decide(paper_db.schema, paper_baav_schema, Q1_PRIME)
        assert report.preserved

    def test_example5_partial_schema_preserves_q1prime(
        self, paper_db, partial_baav
    ):
        """R̃'1 is not data preserving but is result preserving for Q'1."""
        report = decide(paper_db.schema, partial_baav, Q1_PRIME)
        assert report.preserved
        assert report.witnesses["PS"] == "ps_partial"

    def test_query_needing_missing_attr_not_preserved(
        self, paper_db, partial_baav
    ):
        sql = """
        select PS.suppkey, PS.availqty
        from PARTSUPP PS where PS.suppkey = 1
        """
        report = decide(paper_db.schema, partial_baav, sql)
        assert not report.preserved
        assert report.missing == ["PS"]

    def test_example5_q2_preserved_after_minimization(
        self, paper_db, partial_baav
    ):
        """Q2 = Q'1 + a redundant PARTSUPP copy equated on availqty.

        X_PS of Q2 includes availqty, which R̃'1 lacks; but min(Q2) = Q'1,
        so Condition (II) still holds — this justifies minimizing first.
        """
        q2 = """
        select PS.suppkey, PS.supplycost
        from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
        where N.name = 'GERMANY' and N.nationkey = S.nationkey
          and S.suppkey = PS.suppkey
          and PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
          and PS.partkey = PS2.partkey
        """
        report = decide(paper_db.schema, partial_baav, q2)
        assert report.preserved
        assert "PS2" not in report.minimal_aliases

    def test_without_minimization_q2_would_fail(
        self, paper_db, partial_baav
    ):
        """Sanity: checking Condition (II) on Q2 itself (no min) fails."""
        q2 = """
        select PS.suppkey, PS.supplycost
        from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
        where N.name = 'GERMANY' and N.nationkey = S.nationkey
          and S.suppkey = PS.suppkey
          and PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
          and PS.partkey = PS2.partkey
        """
        analysis = analyze(bind(parse(q2), paper_db.schema))
        report = is_result_preserving(
            analysis, partial_baav, minimized=analysis
        )
        assert not report.preserved

    def test_aggregate_query_uses_spc_core(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        """Theorem 3: RAaggr preservation via the max SPC sub-query."""
        report = decide(paper_db.schema, paper_baav_schema, q1_sql)
        assert report.preserved
