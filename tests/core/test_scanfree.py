"""Tests for GET / VC / Condition (III) — Theorems 4–5, Example 6."""


from repro.baav import BaaVSchema, BaaVStore, KVSchema, kv_schema
from repro.core import compute_get, compute_vc, is_bounded, is_scan_free
from repro.sql import analyze, bind, parse


def get_analysis(schema, sql):
    return analyze(bind(parse(sql), schema))


Q1_PRIME = """
select PS.suppkey, PS.supplycost
from NATION N, SUPPLIER S, PARTSUPP PS
where N.name = 'GERMANY' and N.nationkey = S.nationkey
  and S.suppkey = PS.suppkey
"""


class TestGET:
    def test_rule_a_constants(self, paper_db, paper_baav_schema):
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        result = compute_get(analysis, paper_baav_schema)
        assert "N.name" in result.attrs

    def test_rule_b_transitivity(self, paper_db, paper_baav_schema):
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        result = compute_get(analysis, paper_baav_schema)
        # S.nationkey enters via N.nationkey's term
        assert "S.nationkey" in result.attrs

    def test_rule_c_key_to_value(self, paper_db, paper_baav_schema):
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        result = compute_get(analysis, paper_baav_schema)
        # suppkey fetched through sup_by_nation; then PARTSUPP values
        assert "S.suppkey" in result.attrs
        assert "PS.supplycost" in result.attrs
        assert "PS.availqty" in result.attrs  # full Y joins GET

    def test_example6_get_content(self, paper_db, paper_baav_schema):
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        result = compute_get(analysis, paper_baav_schema)
        expected_core = {
            "N.name", "N.nationkey", "S.nationkey", "S.suppkey",
            "PS.suppkey", "PS.supplycost",
        }
        assert expected_core <= result.attrs

    def test_chasing_sequence_records_steps(
        self, paper_db, paper_baav_schema
    ):
        """The derivation mirrors Example 7's T1/T2/T3."""
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        result = compute_get(analysis, paper_baav_schema)
        schemas = [step.schema.name for step in result.steps]
        assert schemas.index("nation_by_name") < schemas.index(
            "sup_by_nation"
        )
        assert schemas.index("sup_by_nation") < schemas.index("ps_by_sup")

    def test_no_constants_empty_get(self, paper_db, paper_baav_schema):
        analysis = get_analysis(
            paper_db.schema, "select S.suppkey from SUPPLIER S"
        )
        result = compute_get(analysis, paper_baav_schema)
        assert result.attrs == frozenset()

    def test_in_list_binds(self, paper_db, paper_baav_schema):
        analysis = get_analysis(
            paper_db.schema,
            "select N.nationkey from NATION N where N.name in ('A','B')",
        )
        result = compute_get(analysis, paper_baav_schema)
        assert "N.nationkey" in result.attrs

    def test_range_does_not_bind(self, paper_db, paper_baav_schema):
        analysis = get_analysis(
            paper_db.schema,
            "select N.nationkey from NATION N where N.name > 'A'",
        )
        result = compute_get(analysis, paper_baav_schema)
        assert result.attrs == frozenset()


class TestVC:
    def test_example6_vc(self, paper_db, paper_baav_schema):
        analysis = get_analysis(paper_db.schema, Q1_PRIME)
        entries = compute_vc(analysis, paper_baav_schema)
        by_alias = {}
        for entry in entries:
            by_alias.setdefault(entry.alias, set()).update(entry.attrs)
        assert {"N.name", "N.nationkey"} <= by_alias["N"]
        assert {"S.nationkey", "S.suppkey"} <= by_alias["S"]
        assert {"PS.suppkey", "PS.supplycost"} <= by_alias["PS"]

    def test_vc_requires_full_retrievability(
        self, paper_db, paper_baav_schema
    ):
        analysis = get_analysis(
            paper_db.schema,
            "select S.suppkey from SUPPLIER S where S.suppkey > 0",
        )
        entries = compute_vc(analysis, paper_baav_schema)
        assert entries == []


class TestConditionIII:
    def test_example6_q1prime_scan_free(self, paper_db, paper_baav_schema):
        report = is_scan_free(
            get_analysis(paper_db.schema, Q1_PRIME), paper_baav_schema
        )
        assert report.scan_free
        assert set(report.witnesses) == {"N", "S", "PS"}

    def test_q1_aggregate_scan_free(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        """Theorem 5: the RAaggr Q1 is scan-free via its SPC core."""
        report = is_scan_free(
            get_analysis(paper_db.schema, q1_sql), paper_baav_schema
        )
        assert report.scan_free

    def test_no_constant_not_scan_free(self, paper_db, paper_baav_schema):
        report = is_scan_free(
            get_analysis(
                paper_db.schema,
                "select S.suppkey, S.nationkey from SUPPLIER S",
            ),
            paper_baav_schema,
        )
        assert not report.scan_free
        assert "S" in report.missing

    def test_partially_covered_join_not_scan_free(
        self, paper_db, paper_baav_schema
    ):
        # constant on PARTSUPP side cannot reach NATION (no schema keyed
        # on S.suppkey or N.nationkey)
        sql = """
        select N.name from SUPPLIER S, NATION N
        where S.nationkey = N.nationkey and S.suppkey = 1
        """
        report = is_scan_free(
            get_analysis(paper_db.schema, sql), paper_baav_schema
        )
        assert not report.scan_free

    def test_minimization_applies(self, paper_schemas, paper_db):
        """Example 5 continued: Q2 is scan-free over R̃'1 via min(Q2)."""
        supplier, partsupp, nation = paper_schemas
        partial = BaaVSchema(
            [
                kv_schema("nation_by_name", nation, ["name"]),
                kv_schema("sup_by_nation", supplier, ["nationkey"]),
                KVSchema("ps_partial", partsupp, ["suppkey"],
                         ["partkey", "supplycost"]),
            ]
        )
        q2 = """
        select PS.suppkey, PS.supplycost
        from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
        where N.name = 'GERMANY' and N.nationkey = S.nationkey
          and S.suppkey = PS.suppkey
          and PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
          and PS.partkey = PS2.partkey
        """
        report = is_scan_free(
            get_analysis(paper_db.schema, q2), partial
        )
        assert report.scan_free


class TestBounded:
    def test_bounded_when_degrees_small(
        self, paper_db, paper_baav_schema, cluster, q1_sql
    ):
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster
        )
        analysis = get_analysis(paper_db.schema, q1_sql)
        report = is_bounded(analysis, store, degree_bound=10)
        assert report.bounded
        assert all(d <= 10 for d in report.degrees.values())

    def test_unbounded_when_degree_exceeds(
        self, paper_db, paper_baav_schema, cluster, q1_sql
    ):
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster
        )
        analysis = get_analysis(paper_db.schema, q1_sql)
        report = is_bounded(analysis, store, degree_bound=1)
        assert report.scan_free and not report.bounded

    def test_non_scan_free_never_bounded(
        self, paper_db, paper_baav_schema, cluster
    ):
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster
        )
        analysis = get_analysis(
            paper_db.schema, "select S.suppkey from SUPPLIER S"
        )
        report = is_bounded(analysis, store, degree_bound=1000)
        assert not report.bounded
