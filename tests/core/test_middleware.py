"""Tests for the Zidian middleware facade (M1 + M2 + diagnostics)."""

import pytest

from repro.core import Zidian
from repro.errors import SQLAnalysisError, SQLSyntaxError


@pytest.fixture()
def zidian(paper_db, paper_baav_schema, paper_store):
    return Zidian(paper_db.schema, paper_baav_schema, paper_store)


class TestDecide:
    def test_q1_full_verdict(self, zidian, q1_sql):
        decision = zidian.decide(q1_sql)
        assert decision.answerable
        assert decision.is_scan_free
        assert decision.is_bounded
        assert "answerable=True" in decision.summary()

    def test_accepts_sql_string_or_bound(self, zidian, paper_db, q1_sql):
        from repro.sql import bind, parse

        bound = bind(parse(q1_sql), paper_db.schema)
        assert zidian.decide(bound).is_scan_free
        assert zidian.decide(q1_sql).is_scan_free

    def test_without_store_no_bounded_verdict(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema)
        decision = zidian.decide(q1_sql)
        assert decision.bounded is None
        assert not decision.is_bounded

    def test_syntax_error_propagates(self, zidian):
        with pytest.raises(SQLSyntaxError):
            zidian.decide("select from where")

    def test_binding_error_propagates(self, zidian):
        with pytest.raises(SQLAnalysisError):
            zidian.decide("select nope from SUPPLIER S")

    def test_data_preserving(self, zidian):
        assert zidian.data_preserving().preserved

    def test_degree_bound_configurable(
        self, paper_db, paper_baav_schema, paper_store, q1_sql
    ):
        strict = Zidian(
            paper_db.schema, paper_baav_schema, paper_store, degree_bound=1
        )
        decision = strict.decide(q1_sql)
        assert decision.is_scan_free and not decision.is_bounded


class TestExplain:
    def test_explain_scan_free_query(self, zidian, q1_sql):
        text = zidian.explain(q1_sql)
        assert "verdict" in text
        assert "scan_free=True" in text
        assert "nation_by_name" in text          # chase step
        assert "Constant" in text                # plan leaf
        assert "X[PS]" in text

    def test_explain_non_scan_free_query(self, zidian):
        text = zidian.explain(
            "select S.suppkey, S.nationkey from SUPPLIER S"
        )
        assert "scan_free=False" in text
        assert "uncovered" in text

    def test_explain_shows_degrees(self, zidian, q1_sql):
        assert "degrees" in zidian.explain(q1_sql)

    def test_explain_shows_min_atoms(self, zidian, paper_db):
        sql = """
        select S1.suppkey from SUPPLIER S1, SUPPLIER S2
        where S1.nationkey = S2.nationkey and S2.nationkey = 10
        and S1.nationkey = 10
        """
        text = zidian.explain(sql)
        assert "min(Q)" in text
        assert "S2" not in text.split("min(Q)")[1].splitlines()[0]
