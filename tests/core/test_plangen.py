"""Tests for chase-based KBA plan generation (§6.2, Example 7)."""

import pytest

from repro.baav import BaaVSchema, BaaVStore, KVSchema, kv_schema
from repro.core import Zidian, substitute_table
from repro.kba import (
    Constant,
    ExecContext,
    Extend,
    GroupK,
    ScanKV,
    TaaVScan,
    execute,
    is_scan_free,
    walk,
)
from repro.errors import NotPreservedError
from repro.sql import execute as ra_execute, plan_sql
from repro.sql.executor import Table, run as ra_run


def run_zidian_plan(plan, store, taav, db):
    blockset = execute(plan.root, ExecContext(store, taav))
    table = Table(blockset.attrs, list(blockset.expand()))
    final = substitute_table(plan.ra_plan, plan.replace_node, table)
    return ra_run(final, db)


def reference(db, sql):
    ref_plan, _ = plan_sql(sql, db.schema)
    return ra_run(ref_plan, db)


class TestExample7:
    def test_q1_plan_is_the_papers_chain(
        self, paper_db, paper_baav_schema, paper_store, q1_sql
    ):
        """ξ1 = group_by((('GERMANY' ∝ N) ∝ S) ∝ PS, ...)."""
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, decision = zidian.plan(q1_sql)
        assert decision.is_scan_free
        assert plan.scan_free
        nodes = list(walk(plan.root))
        extends = [n for n in nodes if isinstance(n, Extend)]
        assert [e.kv_name for e in extends] == [
            "ps_by_sup", "sup_by_nation", "nation_by_name"
        ]
        constants = [n for n in nodes if isinstance(n, Constant)]
        assert len(constants) == 1
        assert constants[0].keys == (("GERMANY",),)
        assert isinstance(plan.root, GroupK)
        assert is_scan_free(plan.root)

    def test_q1_plan_answers_correctly(
        self, paper_db, paper_baav_schema, paper_store, paper_taav, q1_sql
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(q1_sql)
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, q1_sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_q1_gets_bounded_by_probes(
        self, paper_db, paper_baav_schema, paper_store, cluster, q1_sql
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(q1_sql)
        cluster.reset_counters()
        execute(plan.root, ExecContext(paper_store))
        # 1 (nation) + 2 (suppliers per germany nations) + 3 (partsupp)
        assert cluster.total_counters().gets <= 8


class TestChainConstruction:
    def test_in_list_makes_multi_key_constant(
        self, paper_db, paper_baav_schema, paper_store
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        sql = """
        select S.suppkey from SUPPLIER S, NATION N
        where S.nationkey = N.nationkey and N.name in ('GERMANY', 'FRANCE')
        """
        plan, decision = zidian.plan(sql)
        assert decision.is_scan_free
        constants = [
            n for n in walk(plan.root) if isinstance(n, Constant)
        ]
        assert len(constants[0].keys) == 2

    def test_multi_constant_islands_one_constant_leaf(
        self, paper_db, paper_baav_schema, paper_store, paper_taav
    ):
        """Two constants on different relations: cartesian constant leaf."""
        sql = """
        select S.suppkey, PS.partkey
        from SUPPLIER S, NATION N, PARTSUPP PS
        where S.nationkey = N.nationkey and N.name = 'GERMANY'
          and PS.suppkey = S.suppkey and PS.availqty = 9
        """
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(sql)
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_equality_filter_on_fetched_values(
        self, paper_db, paper_baav_schema, paper_store, paper_taav
    ):
        """Fetched value attrs equated to constants must be filtered."""
        sql = """
        select S.suppkey from SUPPLIER S, NATION N
        where S.nationkey = N.nationkey and N.name = 'GERMANY'
          and S.suppkey = 2
        """
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(sql)
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        assert sorted(got.rows) == [(2,)]


class TestScanFallback:
    def test_uncovered_alias_scans_kv_instance(
        self, paper_db, paper_baav_schema, paper_store, paper_taav
    ):
        """No constants: aliases fetched by scanning KV instances."""
        sql = "select S.suppkey, S.nationkey from SUPPLIER S"
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, decision = zidian.plan(sql)
        assert not decision.is_scan_free
        assert plan.access["S"] == "scan_kv"
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_mixed_chain_and_scan(
        self, paper_db, paper_baav_schema, paper_store, paper_taav
    ):
        """Join of a chain-covered alias and a scanned alias."""
        sql = """
        select S.suppkey, PS.supplycost
        from SUPPLIER S, PARTSUPP PS
        where S.suppkey = PS.suppkey and PS.availqty > 3
        """
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, decision = zidian.plan(sql)
        assert not decision.is_scan_free
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_taav_fallback_for_uncovered_attrs(
        self, paper_schemas, paper_db, paper_taav, cluster
    ):
        """Attributes outside R̃ fall back to TaaV scans when allowed."""
        supplier, partsupp, nation = paper_schemas
        partial = BaaVSchema(
            [
                KVSchema("ps_partial", partsupp, ["suppkey"],
                         ["partkey", "supplycost"]),
            ]
        )
        store = BaaVStore.map_database(paper_db, partial, cluster)
        zidian = Zidian(paper_db.schema, partial, store)
        sql = "select PS.availqty from PARTSUPP PS where PS.suppkey = 1"
        plan, decision = zidian.plan(sql)
        assert not decision.answerable
        assert plan.access["PS"] == "taav"
        got = run_zidian_plan(plan, store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_taav_fallback_disabled_raises(
        self, paper_schemas, paper_db, cluster
    ):
        supplier, partsupp, nation = paper_schemas
        partial = BaaVSchema(
            [
                KVSchema("ps_partial", partsupp, ["suppkey"],
                         ["partkey", "supplycost"]),
            ]
        )
        store = BaaVStore.map_database(paper_db, partial, cluster)
        zidian = Zidian(
            paper_db.schema, partial, store, allow_taav_fallback=False
        )
        with pytest.raises(NotPreservedError):
            zidian.plan(
                "select PS.availqty from PARTSUPP PS where PS.suppkey = 1"
            )


class TestSecondaryFetch:
    def test_two_schemas_of_one_alias(self, paper_db, cluster, paper_taav):
        """X needs attrs split over two KV schemas; pk pins combinations."""
        supplier = paper_db.schema.relation("SUPPLIER")
        partsupp = paper_db.schema.relation("PARTSUPP")
        nation = paper_db.schema.relation("NATION")
        baav = BaaVSchema(
            [
                kv_schema("nation_by_name", nation, ["name"]),
                KVSchema("sup_a", supplier, ["nationkey"], ["suppkey"]),
                # second schema of SUPPLIER keyed by its pk
                KVSchema("sup_b", supplier, ["suppkey"], ["nationkey"]),
                kv_schema("ps_by_sup", partsupp, ["suppkey"]),
            ]
        )
        store = BaaVStore.map_database(paper_db, baav, cluster)
        zidian = Zidian(paper_db.schema, baav, store)
        sql = """
        select PS.partkey, PS.availqty
        from NATION N, SUPPLIER S, PARTSUPP PS
        where N.name = 'FRANCE' and N.nationkey = S.nationkey
          and S.suppkey = PS.suppkey
        """
        plan, decision = zidian.plan(sql)
        got = run_zidian_plan(plan, store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)


class TestStatsFastPath:
    def test_whole_instance_groupby_uses_stats(
        self, paper_db, paper_baav_schema, paper_store, paper_taav
    ):
        sql = """
        select PS.suppkey, sum(PS.supplycost) as total
        from PARTSUPP PS group by PS.suppkey
        """
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(sql)
        assert plan.uses_stats
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        from repro.relational.compare import rows_bag_equal

        assert rows_bag_equal(got.rows, want.rows)

    def test_stats_disabled(self, paper_db, paper_baav_schema, paper_store):
        zidian = Zidian(
            paper_db.schema, paper_baav_schema, paper_store, use_stats=False
        )
        plan, _ = zidian.plan(
            "select PS.suppkey, sum(PS.supplycost) as total "
            "from PARTSUPP PS group by PS.suppkey"
        )
        assert not plan.uses_stats

    def test_stats_not_used_with_predicates(
        self, paper_db, paper_baav_schema, paper_store
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(
            "select PS.suppkey, sum(PS.supplycost) as total "
            "from PARTSUPP PS where PS.availqty > 2 group by PS.suppkey"
        )
        assert not plan.uses_stats

    def test_stats_not_used_for_count_star(
        self, paper_db, paper_baav_schema, paper_store
    ):
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(
            "select PS.suppkey, count(*) as n "
            "from PARTSUPP PS group by PS.suppkey"
        )
        assert not plan.uses_stats


class TestHavingOrderLimit:
    def test_having_inside_kba(
        self, paper_db, paper_baav_schema, paper_store, paper_taav, q1_sql
    ):
        sql = q1_sql + " having SUM(PS.supplycost) > 4.0 "
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(sql)
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert sorted(got.rows) == sorted(want.rows)

    def test_order_limit_post_ops(
        self, paper_db, paper_baav_schema, paper_store, paper_taav, q1_sql
    ):
        sql = q1_sql + " order by total desc limit 1 "
        zidian = Zidian(paper_db.schema, paper_baav_schema, paper_store)
        plan, _ = zidian.plan(sql)
        got = run_zidian_plan(plan, paper_store, paper_taav, paper_db)
        want = reference(paper_db, sql)
        assert got.rows == want.rows
