"""Tests for clo(R̃, R̃) and Condition (I) — Theorem 1, Example 4."""


from repro.baav import BaaVSchema, KVSchema, kv_schema
from repro.core import closure, closures, is_data_preserving
from repro.relational import AttrType, DatabaseSchema, RelationSchema


class TestClosure:
    def test_rule1_own_attributes(self, paper_schemas, paper_baav_schema):
        supplier, partsupp, nation = paper_schemas
        nation_schema = paper_baav_schema.get("nation_by_name")
        clo = closure(nation_schema, paper_baav_schema)
        assert {"NATION.name", "NATION.nationkey"} <= clo

    def test_rule2_pk_chaining(self):
        """R(a,b,c,d) pk=a with <b|a> and <a|c,d>: clo(<b|a>) = all."""
        rel = RelationSchema.of(
            "R",
            {"a": AttrType.INT, "b": AttrType.INT, "c": AttrType.INT,
             "d": AttrType.INT},
            ["a"],
        )
        by_b = KVSchema("by_b", rel, ["b"], ["a"])
        by_a = KVSchema("by_a", rel, ["a"], ["c", "d"])
        baav = BaaVSchema([by_b, by_a])
        clo = closure(by_b, baav)
        assert clo == frozenset({"R.a", "R.b", "R.c", "R.d"})

    def test_no_chaining_without_pk(self):
        """A non-pk key does not trigger rule 2."""
        rel = RelationSchema.of(
            "R",
            {"a": AttrType.INT, "b": AttrType.INT, "c": AttrType.INT},
            ["a"],
        )
        by_b = KVSchema("by_b", rel, ["b"], ["c"])   # no pk coverage
        by_c = KVSchema("by_c", rel, ["c"], ["a"])
        baav = BaaVSchema([by_b, by_c])
        clo = closure(by_b, baav)
        # pk(by_c) defaults to {a} (contained); {a} not in clo(by_b) start
        # {b, c}; so by_c's attrs never join... unless pk(by_c) <= clo.
        assert "R.a" not in clo or {"R.c", "R.a"} <= clo

    def test_transitive_chaining(self):
        rel = RelationSchema.of(
            "R",
            {"a": AttrType.INT, "b": AttrType.INT, "c": AttrType.INT,
             "d": AttrType.INT},
            ["a"],
        )
        s1 = KVSchema("s1", rel, ["d"], ["b"], primary_key=["b"])
        s2 = KVSchema("s2", rel, ["b"], ["a"], primary_key=["b"])
        s3 = KVSchema("s3", rel, ["a"], ["c"], primary_key=["a"])
        baav = BaaVSchema([s1, s2, s3])
        clo = closure(s1, baav)
        assert clo == frozenset({"R.a", "R.b", "R.c", "R.d"})

    def test_closures_computes_all(self, paper_baav_schema):
        clo = closures(paper_baav_schema)
        assert set(clo) == {"nation_by_name", "sup_by_nation", "ps_by_sup"}


class TestConditionI:
    def test_example4_data_preserving(self, paper_db, paper_baav_schema):
        """Example 4: R̃1 is data preserving for R1."""
        report = is_data_preserving(paper_db.schema, paper_baav_schema)
        assert report.preserved
        assert set(report.witnesses) == {"SUPPLIER", "PARTSUPP", "NATION"}

    def test_missing_attribute_breaks_preservation(self, paper_schemas):
        """Example 5's R̃'1 (PARTSUPP without availqty) is not preserving."""
        supplier, partsupp, nation = paper_schemas
        baav = BaaVSchema(
            [
                kv_schema("nation_by_name", nation, ["name"]),
                kv_schema("sup_by_nation", supplier, ["nationkey"]),
                KVSchema(
                    "ps_partial", partsupp, ["suppkey"],
                    ["partkey", "supplycost"],
                ),
            ]
        )
        schema = DatabaseSchema([supplier, partsupp, nation])
        report = is_data_preserving(schema, baav)
        assert not report.preserved
        assert report.missing == ["PARTSUPP"]

    def test_relation_with_no_schema_not_preserved(self, paper_schemas):
        supplier, partsupp, nation = paper_schemas
        baav = BaaVSchema([kv_schema("n", nation, ["name"])])
        schema = DatabaseSchema([supplier, nation])
        report = is_data_preserving(schema, baav)
        assert not report.preserved
        assert "SUPPLIER" in report.missing

    def test_pk_chained_preservation(self):
        """Preservation via the clo chain, not a single full schema."""
        rel = RelationSchema.of(
            "R",
            {"a": AttrType.INT, "b": AttrType.INT, "c": AttrType.INT},
            ["a"],
        )
        baav = BaaVSchema(
            [
                KVSchema("by_b", rel, ["b"], ["a"]),
                KVSchema("by_a", rel, ["a"], ["c"]),
            ]
        )
        report = is_data_preserving(DatabaseSchema([rel]), baav)
        assert report.preserved
        assert report.witnesses["R"] == "by_b"
