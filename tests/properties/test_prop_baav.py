"""Property tests for the BaaV mapping and block invariants (§4.1)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, BaaVStore, Block, Maintainer, kv_schema, split_block
from repro.kv import KVCluster
from repro.relational import AttrType, Database, RelationSchema

SCHEMA = RelationSchema.of(
    "R",
    {"a": AttrType.INT, "b": AttrType.INT, "c": AttrType.STR},
    [],
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=3),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=30,
)


def make_store(rows, key, compress=True, split_threshold=10_000):
    db = Database.from_dict([SCHEMA], {"R": rows})
    baav = BaaVSchema([kv_schema("r", SCHEMA, key)])
    store = BaaVStore.map_database(
        db, baav, KVCluster(3), compress=compress,
        split_threshold=split_threshold,
    )
    return db, store.instance("r")


@given(rows_strategy, st.sampled_from([["a"], ["b"], ["a", "b"], ["c"]]))
@settings(max_examples=40, deadline=None)
def test_mapping_roundtrip(rows, key):
    """relational_version(map(D)) == π_XY(D) as a bag (§4.1)."""
    db, instance = make_store(rows, key)
    attrs = list(instance.schema.key) + list(instance.schema.value)
    expected = Counter(db["R"].project(attrs))
    got = Counter(instance.relational_version().rows)
    assert got == expected


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_compression_invisible_to_reads(rows):
    _, compressed = make_store(rows, ["a"], compress=True)
    _, raw = make_store(rows, ["a"], compress=False)
    assert Counter(compressed.relational_version().rows) == Counter(
        raw.relational_version().rows
    )


@given(rows_strategy, st.integers(min_value=1, max_value=7))
@settings(max_examples=25, deadline=None)
def test_split_threshold_invisible_to_reads(rows, threshold):
    _, whole = make_store(rows, ["a"])
    _, split = make_store(rows, ["a"], split_threshold=threshold)
    assert Counter(whole.relational_version().rows) == Counter(
        split.relational_version().rows
    )


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_degree_equals_max_group(rows):
    _, instance = make_store(rows, ["a"])
    groups = Counter(r[0] for r in rows)
    expected = max(groups.values()) if groups else 0
    assert instance.degree == expected


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 5)), max_size=10
    ),
    st.integers(min_value=1, max_value=6),
)
def test_split_block_preserves_bag_and_bounds(entries, max_tuples):
    block = Block([(row, count) for row, count in
                   [((a,), c) for a, c in entries]])
    segments = split_block(block, max_tuples)
    assert all(s.num_tuples <= max_tuples for s in segments)
    merged = Counter()
    for segment in segments:
        for row in segment.expand():
            merged[row] += 1
    assert merged == Counter(block.expand())


@given(rows_strategy, rows_strategy)
@settings(max_examples=25, deadline=None)
def test_incremental_maintenance_equals_rebuild(initial, inserts):
    """maintain(map(D), Δ) == map(D + Δ) — §8.2 incremental updates."""
    db, instance = make_store(initial, ["a"])
    store = BaaVStore(
        BaaVSchema([instance.schema]), instance.cluster
    )
    store.instances["r"] = instance
    Maintainer(store).insert("R", inserts)

    updated = Database.from_dict([SCHEMA], {"R": initial + inserts})
    _, rebuilt = make_store(initial + inserts, ["a"])
    assert Counter(instance.relational_version().rows) == Counter(
        rebuilt.relational_version().rows
    )
