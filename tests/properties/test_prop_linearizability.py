"""Property: concurrent service histories linearize against an oracle.

A single writer session applies a sequence of Δ batches while reader
threads stream aggregate queries through the :class:`QueryService`.
Because updates run under the service's exclusive lock, every read must
observe the state after some *prefix* of the write sequence — never a
torn half-batch — and each reader's successive reads must observe
non-decreasing prefixes (reads happen after their predecessors
returned). The oracle replays the same batches single-threaded and
enumerates the legal states; hypothesis drives batch shapes and the
replication factor.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.relational import AttrType, Database, RelationSchema
from repro.service import QueryService
from repro.systems import SQLOverNoSQL

REC = RelationSchema.of(
    "REC", {"k": AttrType.INT, "v": AttrType.INT}, ["k"]
)

COUNT_SUM_SQL = "select count(*) as n, sum(R.v) as s from REC R"


def build_database(initial_rows):
    return Database.from_dict([REC], {"REC": list(initial_rows)})


def oracle_states(initial_rows, batches):
    """(count, sum) after every write prefix, keyed by count.

    Batch *i* inserts rows tagged ``v = i + 1`` (and optionally deletes
    one earlier row), so successive states have distinct counts+sums
    and a read maps back to exactly one prefix.
    """
    rows = list(initial_rows)
    states = {}

    def record(prefix):
        n = len(rows)
        s = sum(v for _, v in rows) if rows else None
        states[(n, s)] = prefix

    record(0)
    for prefix, (inserts, deletes) in enumerate(batches, start=1):
        for row in deletes:
            rows.remove(row)
        rows.extend(inserts)
        record(prefix)
    return states


@st.composite
def write_workloads(draw):
    """Initial rows plus insert/delete batches with unique keys/tags."""
    n_initial = draw(st.integers(min_value=1, max_value=4))
    initial = [(k, 0) for k in range(n_initial)]
    n_batches = draw(st.integers(min_value=2, max_value=4))
    next_key = n_initial
    live = list(initial)
    batches = []
    for index in range(n_batches):
        size = draw(st.integers(min_value=1, max_value=3))
        inserts = []
        for _ in range(size):
            # v encodes the batch index: states of different prefixes
            # differ in both count and sum
            inserts.append((next_key, (index + 1) * 100 + next_key))
            next_key += 1
        deletes = []
        if live and draw(st.booleans()):
            deletes.append(live[draw(
                st.integers(min_value=0, max_value=len(live) - 1)
            )])
        for row in deletes:
            live.remove(row)
        live.extend(inserts)
        batches.append((inserts, deletes))
    return initial, batches


@settings(max_examples=10, deadline=None)
@given(
    workload=write_workloads(),
    replication_factor=st.sampled_from([1, 2]),
)
def test_concurrent_history_linearizes(workload, replication_factor):
    initial, batches = workload
    states = oracle_states(initial, batches)
    database = build_database(initial)
    system = SQLOverNoSQL(
        workers=2,
        storage_nodes=2,
        batch_size=4,
        replication_factor=replication_factor,
    )
    system.load(database)

    observations = {0: [], 1: []}
    failures = []
    writer_done = threading.Event()

    with QueryService(system, max_workers=3, max_queued=8) as service:

        def reader(reader_id: int) -> None:
            try:
                with service.open_session(f"r{reader_id}") as session:
                    while True:
                        rows = session.submit(COUNT_SUM_SQL).result(
                            timeout=30.0
                        ).rows
                        observations[reader_id].append(rows[0])
                        if writer_done.is_set():
                            break
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in observations
        ]
        for thread in threads:
            thread.start()
        with service.open_session("writer") as writer:
            for inserts, deletes in batches:
                writer.apply_updates(
                    "REC", inserts=inserts, deletes=deletes
                )
        writer_done.set()
        for thread in threads:
            thread.join(timeout=30.0)

    assert failures == []
    final_prefix = len(batches)
    for reader_id, seen in observations.items():
        assert seen, f"reader {reader_id} observed nothing"
        prefixes = []
        for n, s in seen:
            assert (n, s) in states, (
                f"reader {reader_id} observed torn state (n={n}, s={s}); "
                f"legal states: {sorted(states)}"
            )
            prefixes.append(states[(n, s)])
        assert prefixes == sorted(prefixes), (
            f"reader {reader_id} went back in time: {prefixes}"
        )
    # the writer finished before the readers' last round: the final
    # state must have been observed, and it matches the oracle
    final_rows = system.execute(COUNT_SUM_SQL).rows
    assert states[final_rows[0]] == final_prefix
