"""Property: every read is a state at ONE commit epoch (PR 9, MVCC).

A writer session commits multi-statement transactions — each Δ spans
two relations (and a secondary index) — while reader threads stream
aggregate queries through the :class:`QueryService`. Under snapshot
isolation every result must equal the database state at exactly the
epoch stamped on its metrics: not merely *some* legal prefix (the
linearizability property), but the one the snapshot pinned — and never
a torn Δ where one relation (or the index) shows a commit the other
does not. Hypothesis drives the transaction shapes and the replication
factor; a deterministic twin runs the same check over the socket
transport.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.relational import AttrType, Database, RelationSchema
from repro.service import QueryService
from repro.systems import SQLOverNoSQL

REC = RelationSchema.of(
    "REC", {"k": AttrType.INT, "v": AttrType.INT}, ["k"]
)
AUX = RelationSchema.of(
    "AUX", {"k": AttrType.INT, "w": AttrType.INT}, ["k"]
)

#: spans both relations: a commit visible in REC but not AUX (or vice
#: versa) yields a (n, s, t) no single epoch produces
JOIN_SQL = (
    "select count(*) as n, sum(R.v) as s, sum(A.w) as t "
    "from REC R, AUX A where R.k = A.k"
)
#: rides the secondary index on REC.v: a commit visible in the index
#: but not the blocks (or vice versa) breaks the epoch-exact count
INDEX_SQL = (
    "select count(*) as n, sum(R.v) as s from REC R where R.v >= 0"
)


def oracle_states(initial, txns):
    """Expected (join, index) answers after every commit epoch."""
    live = dict(initial)  # k -> (v, w)
    states = {}

    def record(epoch):
        n = len(live)
        s = sum(v for v, _ in live.values()) if live else None
        t = sum(w for _, w in live.values()) if live else None
        states[epoch] = ((n, s, t), (n, s))

    record(0)
    for epoch, (inserts, deletes) in enumerate(txns, start=1):
        for k in deletes:
            del live[k]
        live.update(inserts)
        record(epoch)
    return states


@st.composite
def txn_workloads(draw):
    """Initial rows plus multi-relation transactions (inserts+deletes).

    ``v``/``w`` encode the commit epoch, so states at different epochs
    differ in sum even when counts collide.
    """
    n_initial = draw(st.integers(min_value=1, max_value=3))
    initial = {
        k: (k, 10_000 + k) for k in range(n_initial)
    }
    n_txns = draw(st.integers(min_value=2, max_value=4))
    next_key = n_initial
    live = dict(initial)
    txns = []
    for index in range(n_txns):
        inserts = {}
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            inserts[next_key] = (
                (index + 1) * 100 + next_key,
                10_000 + (index + 1) * 100 + next_key,
            )
            next_key += 1
        deletes = []
        if len(live) > 1 and draw(st.booleans()):
            keys = sorted(live)
            deletes.append(keys[draw(
                st.integers(min_value=0, max_value=len(keys) - 1)
            )])
        for k in deletes:
            del live[k]
        live.update(inserts)
        txns.append((inserts, deletes))
    return initial, txns


def build_system(initial, replication_factor, transport=None):
    database = Database.from_dict(
        [REC, AUX],
        {
            "REC": [(k, v) for k, (v, _) in sorted(initial.items())],
            "AUX": [(k, w) for k, (_, w) in sorted(initial.items())],
        },
    )
    system = SQLOverNoSQL(
        workers=2,
        storage_nodes=2,
        batch_size=4,
        replication_factor=replication_factor,
        indexes=["REC.v:ordered"],
        transport=transport,
    )
    system.load(database)
    return system


@settings(max_examples=10, deadline=None)
@given(
    workload=txn_workloads(),
    replication_factor=st.sampled_from([1, 2]),
)
def test_snapshots_are_epoch_exact(workload, replication_factor):
    initial, txns = workload
    states = oracle_states(initial, txns)
    system = build_system(initial, replication_factor)
    run_check(system, initial, txns, states)


def test_snapshots_are_epoch_exact_over_sockets():
    """Deterministic twin of the property over the socket transport."""
    initial = {0: (0, 10_000), 1: (1, 10_001)}
    txns = [
        ({2: (102, 10_102)}, []),
        ({3: (203, 10_203), 4: (204, 10_204)}, [0]),
        ({5: (305, 10_305)}, [2]),
    ]
    states = oracle_states(initial, txns)
    system = build_system(initial, 2, transport="socket")
    run_check(system, initial, txns, states)


def run_check(system, initial, txns, states):
    live = dict(initial)
    observations = {0: [], 1: []}
    failures = []
    writer_done = threading.Event()

    with QueryService(system, max_workers=3, max_queued=8) as service:

        def reader(reader_id: int) -> None:
            try:
                with service.open_session(f"r{reader_id}") as session:
                    while True:
                        for sql, which in (
                            (JOIN_SQL, 0), (INDEX_SQL, 1),
                        ):
                            result = session.submit(sql).result(
                                timeout=30.0
                            )
                            observations[reader_id].append(
                                (
                                    result.metrics.snapshot_epoch,
                                    which,
                                    result.rows[0],
                                )
                            )
                        if writer_done.is_set():
                            return
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(repr(exc))

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in observations
        ]
        for thread in threads:
            thread.start()
        try:
            with service.open_session("writer") as writer:
                for inserts, deletes in txns:
                    with writer.begin() as txn:
                        txn.apply_updates(
                            "REC",
                            inserts=[
                                (k, v) for k, (v, _) in inserts.items()
                            ],
                            deletes=[
                                (k, live[k][0]) for k in deletes
                            ],
                        )
                        txn.apply_updates(
                            "AUX",
                            inserts=[
                                (k, w) for k, (_, w) in inserts.items()
                            ],
                            deletes=[
                                (k, live[k][1]) for k in deletes
                            ],
                        )
                    for k in deletes:
                        del live[k]
                    live.update(inserts)
        finally:
            writer_done.set()
            for thread in threads:
                thread.join(timeout=30.0)

        assert failures == []
        final_epoch = len(txns)
        for reader_id, seen in observations.items():
            assert seen, f"reader {reader_id} observed nothing"
            epochs = []
            for epoch, which, row in seen:
                assert epoch in states, (
                    f"reader {reader_id} pinned unknown epoch {epoch}"
                )
                want = states[epoch][which]
                assert tuple(row) == want, (
                    f"reader {reader_id} at epoch {epoch} saw {row}, "
                    f"expected {want} "
                    f"({'join' if which == 0 else 'index'} read)"
                )
                epochs.append(epoch)
            # snapshots move forward: a session's successive reads pin
            # non-decreasing epochs
            assert epochs == sorted(epochs), (
                f"reader {reader_id} went back in time: {epochs}"
            )
        # after the writer finished, a fresh snapshot pins the final
        # epoch and sees the fully-committed state
        with service.open_session("check") as session:
            result = session.execute(JOIN_SQL)
            assert result.metrics.snapshot_epoch == final_epoch
            assert tuple(result.rows[0]) == states[final_epoch][0]
    system.close()
