"""Property: cached execution ≡ uncached execution.

The read-through block cache is a pure plumbing optimization: for any
database, query, cache capacity and update batch, a system reading
through the cache must return exactly the answers of the cache-off
system — including after incremental maintenance (inserts/deletes then
re-query), which exercises the write-invalidation path. Hits can only
remove work: never more gets, round trips or simulated time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, KVSchema
from repro.relational import AttrType, Database, RelationSchema, bag_equal, bag_diff
from repro.systems import ZidianSystem

VEHICLE = RelationSchema.of(
    "V",
    {"vid": AttrType.INT, "make": AttrType.STR, "region": AttrType.INT},
    ["vid"],
)
EVENT = RelationSchema.of(
    "E",
    {
        "eid": AttrType.INT,
        "vid": AttrType.INT,
        "kind": AttrType.STR,
        "score": AttrType.INT,
    },
    ["eid"],
)

BAAV = BaaVSchema(
    [
        KVSchema("v_by_id", VEHICLE, ["vid"], ["make", "region"]),
        KVSchema("e_by_vid", EVENT, ["vid"], ["eid", "kind", "score"]),
    ]
)

MAKES = ["ford", "bmw", "audi"]
KINDS = ["pass", "fail"]


@st.composite
def database_strategy(draw):
    n_vehicles = draw(st.integers(min_value=0, max_value=8))
    vehicles = [
        (vid, draw(st.sampled_from(MAKES)), draw(st.integers(0, 2)))
        for vid in range(n_vehicles)
    ]
    n_events = draw(st.integers(min_value=0, max_value=15))
    events = [
        (
            eid,
            draw(st.integers(0, max(0, n_vehicles - 1) or 0)),
            draw(st.sampled_from(KINDS)),
            draw(st.integers(0, 50)),
        )
        for eid in range(n_events)
    ]
    return Database.from_dict([VEHICLE, EVENT], {"V": vehicles, "E": events})


@st.composite
def query_strategy(draw):
    make = draw(st.sampled_from(MAKES))
    kind = draw(st.sampled_from(KINDS))
    shape = draw(st.integers(0, 2))
    if shape == 0:
        return f"select V.vid, V.region from V where V.make = '{make}'"
    if shape == 1:
        return (
            "select V.vid, E.kind, E.score from V, E "
            f"where V.vid = E.vid and V.make = '{make}'"
        )
    return (
        "select V.make, sum(E.score) as total from V, E "
        f"where V.vid = E.vid and E.kind = '{kind}' group by V.make"
    )


def _pair(db, cache_capacity_bytes):
    # each system gets its own Database copy: apply_updates mutates it
    plain = ZidianSystem("hbase", workers=2, storage_nodes=3)
    plain.load(db.copy(), BAAV)
    cached = ZidianSystem(
        "hbase",
        workers=2,
        storage_nodes=3,
        cache_capacity_bytes=cache_capacity_bytes,
    )
    cached.load(db.copy(), BAAV)
    return plain, cached


@given(
    database_strategy(),
    query_strategy(),
    st.sampled_from([512, 4096, 1 << 20]),
)
@settings(max_examples=40, deadline=None)
def test_cached_equals_uncached(db, sql, capacity):
    plain, cached = _pair(db, capacity)
    reference = plain.execute(sql)
    # run twice so the second pass actually reads through a warm cache
    cached.execute(sql)
    result = cached.execute(sql)

    assert bag_equal(reference.relation, result.relation), (
        sql + "\n" + bag_diff(reference.relation, result.relation)
    )
    # hits only remove storage work, never add it
    assert result.metrics.n_get <= reference.metrics.n_get
    assert result.metrics.n_round_trips <= reference.metrics.n_round_trips
    assert result.metrics.data_values <= reference.metrics.data_values
    assert result.metrics.sim_time_ms <= reference.metrics.sim_time_ms + 1e-9
    assert result.metrics.cache_misses + result.metrics.cache_hits >= 0


@given(
    database_strategy(),
    query_strategy(),
    st.data(),
)
@settings(max_examples=30, deadline=None)
def test_cache_stays_fresh_after_updates(db, sql, data):
    """Invalidation correctness: insert/delete through the maintainer,
    then re-query — the warm cache must never serve stale blocks."""
    plain, cached = _pair(db, 1 << 20)
    cached.execute(sql)  # warm the cache with pre-update blocks

    events = list(db.relation("E").rows)
    n_deletes = data.draw(
        st.integers(0, min(3, len(events))), label="n_deletes"
    )
    deletes = events[:n_deletes]
    n_inserts = data.draw(st.integers(0, 3), label="n_inserts")
    inserts = [
        (
            1000 + i,
            data.draw(st.integers(0, 8), label=f"vid{i}"),
            data.draw(st.sampled_from(KINDS), label=f"kind{i}"),
            data.draw(st.integers(0, 50), label=f"score{i}"),
        )
        for i in range(n_inserts)
    ]

    plain.apply_updates("E", inserts=inserts, deletes=deletes)
    cached.apply_updates("E", inserts=inserts, deletes=deletes)

    reference = plain.execute(sql)
    result = cached.execute(sql)
    assert bag_equal(reference.relation, result.relation), (
        sql + "\n" + bag_diff(reference.relation, result.relation)
    )


def test_mot_suite_cached_equals_uncached(mot_small):
    """Every query of the MOT suite answers identically through a warm
    cache — cold pass, warm pass, and a third pass after incremental
    inserts/deletes exercised the invalidation path."""
    from repro.workloads import mot_generator
    from repro.workloads.mot import mot_baav_schema

    plain = ZidianSystem("cassandra", workers=4, storage_nodes=3)
    plain.load(mot_small.copy(), mot_baav_schema())
    cached = ZidianSystem(
        "cassandra",
        workers=4,
        storage_nodes=3,
        cache_capacity_bytes=16 << 20,
    )
    cached.load(mot_small.copy(), mot_baav_schema())
    queries = [
        q.sql for q in mot_generator(17).generate(mot_small, per_template=1)
    ]

    for _pass in range(2):  # pass 1 fills the cache, pass 2 reads through it
        for sql in queries:
            assert bag_equal(
                plain.execute(sql).relation, cached.execute(sql).relation
            ), sql
    assert cached.cache_stats().hits > 0

    # incremental maintenance, then the whole suite against the warm cache
    doomed = list(mot_small["TEST"].rows[:3])
    for system in (plain, cached):
        system.apply_updates("TEST", inserts=doomed[:1], deletes=doomed)
    for sql in queries:
        assert bag_equal(
            plain.execute(sql).relation, cached.execute(sql).relation
        ), sql
