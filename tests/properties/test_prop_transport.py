"""Property: the socket transport is observationally identical to local.

For any workload — puts, gets, deletes, batched gets, scans, namespace
ops, drops, and fail/recover churn — a ``transport="socket"`` cluster
(every node its own OS process behind the wire protocol) must produce
byte-identical results, the same final contents, and the SAME counters
as the in-process cluster: the wire format, error mapping and stats
aggregation are pure plumbing, invisible to any observer.

Example counts are modest because every example forks a fresh set of
node processes; the op-space coverage comes from the sequence strategy,
not the example count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv import KVCluster

NODES = 3
R = 2

_keys = st.integers(min_value=0, max_value=19).map(
    lambda i: f"k{i:02d}".encode()
)
_namespaces = st.sampled_from(["alpha", "beta"])

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _namespaces, _keys,
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("get"), _namespaces, _keys),
        st.tuples(st.just("delete"), _namespaces, _keys),
        st.tuples(st.just("multi_get"), _namespaces,
                  st.lists(_keys, max_size=6)),
        st.tuples(st.just("scan"), _namespaces),
        st.tuples(st.just("namespace_keys"), _namespaces),
        st.tuples(st.just("namespaces")),
        st.tuples(st.just("drop"), _namespaces),
        st.tuples(st.just("size_bytes")),
        st.tuples(st.just("fail")),
        st.tuples(st.just("recover")),
    ),
    max_size=40,
)


def _apply(cluster: KVCluster, op) -> object:
    """Run one op; the returned value is the observation we compare."""
    kind = op[0]
    if kind == "put":
        _, ns, key, val = op
        cluster.put(ns, key, b"v%d" % val)
        return None
    if kind == "get":
        return cluster.get(op[1], op[2])
    if kind == "delete":
        return cluster.delete(op[1], op[2])
    if kind == "multi_get":
        return cluster.multi_get(op[1], op[2])
    if kind == "scan":
        return sorted(cluster.scan(op[1]))  # counted: exercises metering
    if kind == "namespace_keys":
        return sorted(cluster.namespace_keys(op[1]))
    if kind == "namespaces":
        return cluster.namespaces()
    if kind == "drop":
        return cluster.drop_namespace(op[1])
    if kind == "size_bytes":
        return cluster.size_bytes()
    if kind == "fail":
        # deterministic churn: partition the lowest live node, at most
        # one down at a time (R=2 keeps everything served)
        if not cluster.down_node_ids:
            cluster.fail_node(cluster.live_node_ids[0])
        return sorted(cluster.down_node_ids)
    if kind == "recover":
        if cluster.down_node_ids:
            cluster.recover_node(cluster.down_node_ids[0])
        return sorted(cluster.down_node_ids)
    raise AssertionError(kind)


def _final_state(cluster: KVCluster):
    return {
        ns: sorted(cluster.scan(ns, count_as_gets=False))
        for ns in ("alpha", "beta")
    }


@given(_ops)
@settings(max_examples=12, deadline=None)
def test_socket_transport_is_observationally_identical(ops):
    # transports pinned explicitly: the pairing must hold even when
    # REPRO_KV_TRANSPORT defaults the rest of the suite to sockets
    with KVCluster(
        NODES, replication_factor=R, transport="local"
    ) as local, KVCluster(
        NODES, replication_factor=R, transport="socket"
    ) as remote:
        for op in ops:
            assert _apply(local, op) == _apply(remote, op), op
        assert _final_state(local) == _final_state(remote)
        # counters are client-side on both transports and must agree
        # exactly — gets/puts/hits/bytes AND the rebalance family the
        # churn ops charged
        assert local.total_counters() == remote.total_counters()
        stats_local, stats_remote = local.get_stats(), remote.get_stats()
        assert stats_local.totals == stats_remote.totals
        assert stats_local.per_node == stats_remote.per_node
        assert (stats_local.transport, stats_remote.transport) == (
            "local", "socket",
        )


def test_index_lookups_equivalent_across_transports(paper_db):
    """Secondary-index builds and probes ride the same cluster surface;
    a socket-backed index must return identical postings and charge
    identical counters."""
    from repro.index import IndexManager

    def run(transport):
        with KVCluster(NODES, transport=transport) as cluster:
            manager = IndexManager(cluster)
            manager.create(paper_db.relation("SUPPLIER"), "nationkey")
            manager.create(
                paper_db.relation("PARTSUPP"), "supplycost", "ordered"
            )
            eq = manager.lookup_eq("SUPPLIER", "nationkey", [10, 30, 99])
            rng = manager.lookup_range(
                "PARTSUPP", "supplycost", lo=2.0, hi=6.0
            )
            return eq, rng, cluster.total_counters()

    assert run("local") == run("socket")


def test_query_results_equivalent_across_transports(
    paper_db, paper_baav_schema, q1_sql
):
    """Whole-system check: the same SQL over the same data returns the
    same rows and the same KV metrics on both transports."""
    from repro.systems import ZidianSystem

    def run(transport):
        with ZidianSystem(
            "kudu", workers=2, storage_nodes=NODES, transport=transport
        ) as system:
            system.load(paper_db, paper_baav_schema)
            result = system.execute(q1_sql)
            metrics = result.metrics
            return sorted(result.rows), (
                metrics.n_get, metrics.n_put, metrics.n_round_trips,
                metrics.comm_bytes,
            )

    assert run("local") == run("socket")
