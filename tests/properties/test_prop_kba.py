"""Property tests: KBA operator semantics vs plain relational algebra."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, BaaVStore, kv_schema
from repro.kba import (
    Constant,
    ExecContext,
    Extend,
    JoinK,
    ScanKV,
    Shift,
    execute,
)
from repro.kv import KVCluster
from repro.relational import AttrType, Database, RelationSchema

R1 = RelationSchema.of("T1", {"A": AttrType.INT, "B": AttrType.INT})
R2 = RelationSchema.of("T2", {"B": AttrType.INT, "C": AttrType.INT})

pairs = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15
)


def build(rows1, rows2):
    db = Database.from_dict([R1, R2], {"T1": rows1, "T2": rows2})
    baav = BaaVSchema(
        [kv_schema("R1", R1, ["A"]), kv_schema("R2", R2, ["B"])]
    )
    store = BaaVStore.map_database(db, baav, KVCluster(2))
    return db, ExecContext(store)


@given(pairs, pairs)
@settings(max_examples=40, deadline=None)
def test_extension_is_keyed_natural_join(rows1, rows2):
    """D̃1 ∝ D̃2 has the relational version of D1 ⋈_B D2 (§4.2)."""
    db, ctx = build(rows1, rows2)
    plan = Extend(ScanKV("R1", "r1"), "R2", "r2", (("r1.B", "B"),))
    out = execute(plan, ctx)
    expected = Counter(
        (a, b, c)
        for a, b in rows1
        for b2, c in rows2
        if b == b2
    )
    got = Counter(out.expand())
    assert got == expected


@given(pairs)
@settings(max_examples=30, deadline=None)
def test_shift_preserves_relational_version(rows1):
    db, ctx = build(rows1, [])
    base = execute(ScanKV("R1", "r1"), ctx)
    shifted = execute(Shift(ScanKV("R1", "r1"), ("r1.B",)), ctx)

    def bag(blockset, order):
        positions = [blockset.attrs.index(a) for a in order]
        return Counter(
            tuple(row[p] for p in positions) for row in blockset.expand()
        )

    order = ("r1.A", "r1.B")
    assert bag(base, order) == bag(shifted, order)


@given(pairs)
@settings(max_examples=30, deadline=None)
def test_double_shift_identity(rows1):
    db, ctx = build(rows1, [])
    once = execute(Shift(ScanKV("R1", "r1"), ("r1.B",)), ctx)
    twice = once.shift(("r1.A",)).shift(("r1.B",))
    assert Counter(once.expand()) == Counter(twice.expand())


@given(pairs, pairs)
@settings(max_examples=40, deadline=None)
def test_joink_matches_relational_join(rows1, rows2):
    db, ctx = build(rows1, rows2)
    plan = JoinK(
        ScanKV("R1", "r1"), ScanKV("R2", "r2"), (("r1.B", "r2.B"),)
    )
    out = execute(plan, ctx)
    expected = Counter(
        (a, b, b2, c)
        for a, b in rows1
        for b2, c in rows2
        if b == b2
    )
    # out attrs: key (r1.A, r2.B), values (r1.B, r2.C)
    positions = [out.attrs.index(x) for x in
                 ("r1.A", "r1.B", "r2.B", "r2.C")]
    got = Counter(
        tuple(row[p] for p in positions) for row in out.expand()
    )
    assert got == expected


@given(pairs, st.lists(st.integers(0, 4), max_size=5))
@settings(max_examples=30, deadline=None)
def test_extend_from_constants_equals_filtered_join(rows1, probes):
    """('c' ∝ R̃): only rows whose key is among the probes survive."""
    db, ctx = build([], rows1)
    constant = Constant(("x",), tuple((p,) for p in probes))
    out = execute(Extend(constant, "R2", "r2", (("x", "B"),)), ctx)
    expected = Counter()
    for probe in set(probes):
        for b, c in rows1:
            if b == probe:
                expected[(probe, c)] += 1
    assert Counter(out.expand()) == expected
