"""Property: vectorized execution is invisible except in wall-clock (PR 10).

Random select-project-join(-aggregate) queries over a random database
run twice on each engine — ``vectorized=False`` (per-row ``Expr.eval``)
and ``vectorized=True`` (compiled columnar kernels) — and must agree on

* the answer, as a bag, and
* every storage/cost counter the engines meter: gets, round trips,
  values, bytes, cache hits/misses, index probes/postings, simulated
  time, and — under MVCC snapshots — overlay reads, versions skipped
  and the pinned epoch.

That is the compiled-plan contract of :mod:`repro.kba.compile`: cost
accounting is representation-invariant, so Table-2 style numbers never
depend on which execution mode produced them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import bag_diff, bag_equal
from repro.systems import SQLOverNoSQL, ZidianSystem
from tests.properties.test_prop_equivalence import (
    BAAV,
    database_strategy,
    query_strategy,
)

#: every counter a mode could plausibly perturb; sim_time_ms is the
#: whole cost model, snapshot_epoch/overlay the MVCC read path
COUNTER_FIELDS = (
    "sim_time_ms",
    "n_get",
    "n_round_trips",
    "data_values",
    "comm_bytes",
    "cache_hits",
    "cache_misses",
    "index_probes",
    "index_postings",
    "overlay_reads",
    "versions_skipped",
    "snapshot_epoch",
)


def counters(metrics):
    return {f: getattr(metrics, f) for f in COUNTER_FIELDS}


def assert_modes_agree(make_system, load, sql):
    results = {}
    for vectorized in (False, True):
        system = make_system(vectorized)
        load(system)
        results[vectorized] = system.execute(sql)
    row_result, vec_result = results[False], results[True]
    assert bag_equal(row_result.relation, vec_result.relation), (
        sql + "\n" + bag_diff(row_result.relation, vec_result.relation)
    )
    assert counters(row_result.metrics) == counters(vec_result.metrics), sql


@given(database_strategy(), query_strategy())
@settings(max_examples=40, deadline=None)
def test_baseline_engine_mode_invariant(db, sql):
    assert_modes_agree(
        lambda vectorized: SQLOverNoSQL(
            "kudu",
            workers=2,
            storage_nodes=2,
            indexes=["E.score:ordered"],
            vectorized=vectorized,
        ),
        lambda system: system.load(db.copy()),
        sql,
    )


@given(database_strategy(), query_strategy())
@settings(max_examples=40, deadline=None)
def test_zidian_engine_mode_invariant(db, sql):
    assert_modes_agree(
        lambda vectorized: ZidianSystem(
            "kudu", workers=2, storage_nodes=2, vectorized=vectorized
        ),
        lambda system: system.load(db.copy(), BAAV),
        sql,
    )


@given(
    database_strategy(),
    query_strategy(),
    st.integers(min_value=0, max_value=2),
)
@settings(max_examples=25, deadline=None)
def test_mvcc_snapshot_mode_invariant(db, sql, n_updates):
    """Under a pinned snapshot with post-pin commits, the overlay
    resolution (reads served, versions skipped, epoch) is identical
    across modes — the vectorized Extend replays the exact same probes.
    """

    def run(vectorized):
        system = SQLOverNoSQL(
            "kudu", workers=2, storage_nodes=2, vectorized=vectorized
        )
        system.load(db.copy())
        manager = system.enable_transactions()
        events = list(db.relation("E").rows)
        with manager.snapshot():
            # commits land after the pin: the snapshot must answer from
            # the overlay's superseded versions, in both modes
            for i in range(n_updates):
                with system.begin() as txn:
                    txn.apply_updates(
                        "E",
                        inserts=[(1000 + i, 0, "pass", 99)],
                        deletes=[events[i]] if i < len(events) else [],
                    )
            return system.execute(sql)

    row_result = run(False)
    vec_result = run(True)
    assert bag_equal(row_result.relation, vec_result.relation), (
        sql + "\n" + bag_diff(row_result.relation, vec_result.relation)
    )
    assert counters(row_result.metrics) == counters(vec_result.metrics), sql
