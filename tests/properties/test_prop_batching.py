"""Property: batched execution ≡ per-key execution.

The multi-get pipeline is a pure plumbing optimization — for any
database, query and batch size, a Zidian system probing with coalesced
multi-gets must return exactly the per-key system's answers, issue the
same number of get invocations, and never more round trips than gets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, KVSchema
from repro.relational import AttrType, Database, RelationSchema, bag_equal, bag_diff
from repro.systems import ZidianSystem

VEHICLE = RelationSchema.of(
    "V",
    {"vid": AttrType.INT, "make": AttrType.STR, "region": AttrType.INT},
    ["vid"],
)
EVENT = RelationSchema.of(
    "E",
    {
        "eid": AttrType.INT,
        "vid": AttrType.INT,
        "kind": AttrType.STR,
        "score": AttrType.INT,
    },
    ["eid"],
)

BAAV = BaaVSchema(
    [
        KVSchema("v_by_id", VEHICLE, ["vid"], ["make", "region"]),
        KVSchema("e_by_vid", EVENT, ["vid"], ["eid", "kind", "score"]),
    ]
)

MAKES = ["ford", "bmw", "audi"]
KINDS = ["pass", "fail"]


@st.composite
def database_strategy(draw):
    n_vehicles = draw(st.integers(min_value=0, max_value=8))
    vehicles = [
        (vid, draw(st.sampled_from(MAKES)), draw(st.integers(0, 2)))
        for vid in range(n_vehicles)
    ]
    n_events = draw(st.integers(min_value=0, max_value=15))
    events = [
        (
            eid,
            draw(st.integers(0, max(0, n_vehicles - 1) or 0)),
            draw(st.sampled_from(KINDS)),
            draw(st.integers(0, 50)),
        )
        for eid in range(n_events)
    ]
    return Database.from_dict([VEHICLE, EVENT], {"V": vehicles, "E": events})


@st.composite
def query_strategy(draw):
    make = draw(st.sampled_from(MAKES))
    kind = draw(st.sampled_from(KINDS))
    shape = draw(st.integers(0, 2))
    if shape == 0:
        return f"select V.vid, V.region from V where V.make = '{make}'"
    if shape == 1:
        return (
            "select V.vid, E.kind, E.score from V, E "
            f"where V.vid = E.vid and V.make = '{make}'"
        )
    return (
        "select V.make, sum(E.score) as total from V, E "
        f"where V.vid = E.vid and E.kind = '{kind}' group by V.make"
    )


@given(
    database_strategy(),
    query_strategy(),
    st.integers(min_value=1, max_value=11),
)
@settings(max_examples=40, deadline=None)
def test_batched_equals_per_key(db, sql, batch_size):
    per_key = ZidianSystem("hbase", workers=2, storage_nodes=3, batch_size=1)
    per_key.load(db, BAAV)
    reference = per_key.execute(sql)

    batched = ZidianSystem(
        "hbase", workers=2, storage_nodes=3, batch_size=batch_size
    )
    batched.load(db, BAAV)
    result = batched.execute(sql)

    assert bag_equal(reference.relation, result.relation), (
        sql + "\n" + bag_diff(reference.relation, result.relation)
    )
    # same logical work, never more RPCs than logical gets
    assert result.metrics.n_get == reference.metrics.n_get
    assert result.metrics.data_values == reference.metrics.data_values
    assert result.metrics.n_round_trips <= reference.metrics.n_round_trips
    assert result.metrics.n_round_trips <= result.metrics.n_get
    # amortization can only help simulated time
    assert result.metrics.sim_time_ms <= reference.metrics.sim_time_ms + 1e-9
