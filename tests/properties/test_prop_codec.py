"""Property-based tests for the KV codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kv import codec

value_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)
row_strategy = st.tuples() | st.lists(value_strategy, max_size=8).map(tuple)


@given(value_strategy)
def test_value_roundtrip(value):
    data = codec.encode_value(value)
    out, pos = codec.decode_value(data, 0)
    assert out == value
    assert pos == len(data)


@given(row_strategy)
def test_row_roundtrip(row):
    data = codec.encode_row(row)
    out, pos = codec.decode_row(data)
    assert out == row
    assert pos == len(data)


@given(row_strategy)
def test_key_roundtrip(key):
    assert codec.decode_key(codec.encode_key(key)) == key


@given(st.lists(row_strategy, max_size=4))
def test_keys_injective(keys):
    """Distinct key tuples encode to distinct bytes."""
    encoded = {}
    for key in keys:
        data = codec.encode_key(key)
        if data in encoded:
            assert encoded[data] == key
        encoded[data] = key


@given(
    st.lists(
        st.tuples(row_strategy, st.integers(min_value=1, max_value=100)),
        max_size=6,
    )
)
def test_entries_roundtrip(entries):
    data = codec.encode_entries(entries)
    out, pos = codec.decode_entries(data)
    assert out == entries
    assert pos == len(data)
