"""The flagship property: Zidian answers == reference SQL answers.

Random select-project-join(-aggregate) queries over a random database,
executed three ways — reference in-memory, baseline SQL-over-NoSQL, and
Zidian KBA plans — must agree as bags (Theorem 6 correctness).
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, KVSchema
from repro.relational import AttrType, Database, RelationSchema, bag_equal, bag_diff
from repro.sql import execute as ra_execute, plan_sql
from repro.systems import SQLOverNoSQL, ZidianSystem

VEHICLE = RelationSchema.of(
    "V",
    {"vid": AttrType.INT, "make": AttrType.STR, "region": AttrType.INT},
    ["vid"],
)
EVENT = RelationSchema.of(
    "E",
    {
        "eid": AttrType.INT,
        "vid": AttrType.INT,
        "kind": AttrType.STR,
        "score": AttrType.INT,
    },
    ["eid"],
)

BAAV = BaaVSchema(
    [
        KVSchema("v_by_id", VEHICLE, ["vid"], ["make", "region"]),
        KVSchema("v_by_make", VEHICLE, ["make"], ["vid", "region"]),
        KVSchema("e_by_vid", EVENT, ["vid"], ["eid", "kind", "score"]),
        KVSchema("e_by_kind", EVENT, ["kind"], ["eid", "vid", "score"]),
    ]
)

MAKES = ["ford", "bmw", "audi"]
KINDS = ["pass", "fail"]


@st.composite
def database_strategy(draw):
    n_vehicles = draw(st.integers(min_value=0, max_value=8))
    vehicles = [
        (
            vid,
            draw(st.sampled_from(MAKES)),
            draw(st.integers(0, 2)),
        )
        for vid in range(n_vehicles)
    ]
    n_events = draw(st.integers(min_value=0, max_value=15))
    events = [
        (
            eid,
            draw(st.integers(0, max(0, n_vehicles - 1) or 0)),
            draw(st.sampled_from(KINDS)),
            draw(st.integers(0, 50)),
        )
        for eid in range(n_events)
    ]
    return Database.from_dict(
        [VEHICLE, EVENT], {"V": vehicles, "E": events}
    )


@st.composite
def query_strategy(draw):
    make = draw(st.sampled_from(MAKES))
    kind = draw(st.sampled_from(KINDS))
    shape = draw(st.integers(0, 5))
    if shape == 0:
        return (
            f"select V.vid, V.region from V where V.make = '{make}'"
        )
    if shape == 1:
        return (
            "select V.vid, E.kind, E.score from V, E "
            f"where V.vid = E.vid and V.make = '{make}'"
        )
    if shape == 2:
        threshold = draw(st.integers(0, 50))
        return (
            "select E.eid, V.make from V, E "
            f"where V.vid = E.vid and E.kind = '{kind}' "
            f"and E.score > {threshold}"
        )
    if shape == 3:
        return (
            "select V.make, sum(E.score) as total, count(*) as n "
            "from V, E where V.vid = E.vid "
            f"and E.kind = '{kind}' group by V.make"
        )
    if shape == 4:
        return (
            "select E.kind, max(E.score) as hi from E group by E.kind"
        )
    return (
        "select V.region, count(*) as n from V, E "
        f"where V.vid = E.vid and V.make in ('{make}', 'bmw') "
        "group by V.region"
    )


@given(database_strategy(), query_strategy())
@settings(max_examples=60, deadline=None)
def test_three_way_equivalence(db, sql):
    plan, _ = plan_sql(sql, db.schema)
    reference = ra_execute(plan, db)

    baseline = SQLOverNoSQL("kudu", workers=2, storage_nodes=2)
    baseline.load(db)
    base_result = baseline.execute(sql)
    assert bag_equal(reference, base_result.relation), bag_diff(
        reference, base_result.relation
    )

    zidian = ZidianSystem("kudu", workers=2, storage_nodes=2)
    zidian.load(db, BAAV)
    z_result = zidian.execute(sql)
    assert bag_equal(reference, z_result.relation), (
        sql + "\n" + bag_diff(reference, z_result.relation)
    )


@given(database_strategy())
@settings(max_examples=20, deadline=None)
def test_scan_free_decision_stable_across_data(db):
    """Scan-freeness is a schema-level property: data independent."""
    from repro.core import Zidian

    zidian = Zidian(db.schema, BAAV)
    sql = (
        "select V.vid, E.score from V, E "
        "where V.vid = E.vid and V.make = 'ford'"
    )
    assert zidian.decide(sql).is_scan_free
