"""Property tests for Zidian's decision procedures.

Soundness properties that must hold for *any* schema/query combination:

* minimization never changes query answers (folded copies are redundant);
* T2B always supports the QCS it was given;
* scan-free decisions imply scan-free generated plans (Theorem 6(2));
* result-preserving decisions imply correct answers (Theorem 6(1)).
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baav import BaaVSchema, KVSchema
from repro.core import (
    QCS,
    Zidian,
    design_schema,
    extract_workload_qcs,
)
from repro.kba import is_scan_free as plan_is_scan_free
from repro.relational import AttrType, Database, DatabaseSchema, RelationSchema
from repro.sql import analyze, bind, minimize, parse

R = RelationSchema.of(
    "R",
    {"k": AttrType.INT, "a": AttrType.INT, "b": AttrType.INT},
    ["k"],
)
S = RelationSchema.of(
    "S",
    {"k": AttrType.INT, "c": AttrType.INT},
    ["k"],
)
SCHEMA = DatabaseSchema([R, S])


@st.composite
def redundant_query(draw):
    """A query with a fully-equated copy of one atom (always redundant)."""
    base_alias, copy_alias = "R1", "R2"
    constant = draw(st.integers(0, 3))
    equalities = " and ".join(
        f"{base_alias}.{attr} = {copy_alias}.{attr}"
        for attr in ("k", "a", "b")
    )
    return (
        f"select {base_alias}.a from R {base_alias}, R {copy_alias} "
        f"where {equalities} and {base_alias}.k = {constant}"
    )


@given(redundant_query())
@settings(max_examples=25, deadline=None)
def test_fully_equated_copy_always_folds(sql):
    analysis = analyze(bind(parse(sql), SCHEMA))
    minimal = minimize(analysis)
    assert len(minimal.atoms) == 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["R", "S"]),
            st.sets(st.sampled_from(["k", "a", "b", "c"]), min_size=1),
            st.sets(st.sampled_from(["k", "a", "b", "c"]), max_size=2),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=40, deadline=None)
def test_t2b_always_supports_its_qcs(raw):
    qcs_list = []
    for relation, z, x in raw:
        attrs = set(SCHEMA.relation(relation).attribute_names)
        z = frozenset(z & attrs)
        x = frozenset(x & z)
        if not z:
            continue
        qcs_list.append(QCS(relation, z, x))
    if not qcs_list:
        return
    baav, report = design_schema(SCHEMA, qcs_list)
    assert all(report.supported.values()), report.supported


BAAV = BaaVSchema(
    [
        KVSchema("r_by_k", R, ["k"], ["a", "b"]),
        KVSchema("r_by_a", R, ["a"], ["k", "b"]),
        KVSchema("s_by_k", S, ["k"], ["c"]),
    ]
)


@st.composite
def small_query(draw):
    shape = draw(st.integers(0, 3))
    value = draw(st.integers(0, 4))
    if shape == 0:
        return f"select R.a, R.b from R where R.k = {value}"
    if shape == 1:
        return f"select R.k from R where R.a = {value}"
    if shape == 2:
        return (
            "select R.b, S.c from R, S where R.k = S.k "
            f"and R.a = {value}"
        )
    return f"select R.a from R where R.b > {value}"


@given(small_query())
@settings(max_examples=40, deadline=None)
def test_scan_free_decision_implies_scan_free_plan(sql):
    """Theorem 6(2): the generated plan realizes the decision."""
    zidian = Zidian(SCHEMA, BAAV)
    plan, decision = zidian.plan(sql)
    if decision.is_scan_free:
        assert plan.scan_free
        assert plan_is_scan_free(plan.root)


@given(
    small_query(),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
        max_size=12,
        unique_by=lambda t: t[0],
    ),
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        max_size=8,
        unique_by=lambda t: t[0],
    ),
)
@settings(max_examples=40, deadline=None)
def test_answerable_decision_implies_correct_answers(sql, r_rows, s_rows):
    """Theorem 6(1): plans answer Q exactly when R̃ preserves it."""
    from repro.relational import bag_equal
    from repro.sql import execute as ra_execute, plan_sql
    from repro.systems import ZidianSystem

    db = Database.from_dict([R, S], {"R": r_rows, "S": s_rows})
    system = ZidianSystem("kudu", workers=2, storage_nodes=2)
    system.load(db, BAAV)
    result = system.execute(sql)
    assert result.decision.answerable
    ra_plan, _ = plan_sql(sql, db.schema)
    assert bag_equal(ra_execute(ra_plan, db), result.relation)
