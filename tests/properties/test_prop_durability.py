"""Durability property: replay(checkpoint + log) ≡ the pre-crash store.

Hypothesis drives random mutation sequences — every op of the engines'
logged surface (``put`` / ``multi_put`` / ``delete`` / ``multi_delete``
/ ``drop_prefix`` / ``clear``) interleaved with explicit checkpoints —
against a durable store, mirrored into a plain dict oracle. At a random
crash point the WAL handle is abandoned (exactly the page-cache state a
SIGKILL leaves, optionally with torn debris appended) and a fresh store
recovers from disk. The recovered store must equal the oracle
byte-for-byte, whatever the op mix, checkpoint placement, engine or
fsync policy.

This is the harness that proves recovery correct by construction —
the unit tests in ``test_wal.py`` pick specific corruptions, this one
searches the space.
"""

import struct

from hypothesis import given, settings, strategies as st

from repro.kv.checkpoint import NodeDurability
from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore

_keys = st.integers(0, 12).map(lambda i: b"k%02d" % i)
_values = st.integers(0, 9).map(lambda i: b"value-%d" % i)

# one mutation of the logged surface (checkpoints ride along as an op
# so hypothesis places them anywhere in the stream)
_ops = st.one_of(
    st.tuples(st.just("put"), _keys, _values),
    st.tuples(
        st.just("multi_put"),
        st.lists(st.tuples(_keys, _values), max_size=4),
        st.none(),
    ),
    st.tuples(st.just("delete"), _keys, st.none()),
    st.tuples(
        st.just("multi_delete"), st.lists(_keys, max_size=4), st.none()
    ),
    st.tuples(
        st.just("drop_prefix"),
        st.sampled_from([b"k0", b"k1", b"k"]),
        st.none(),
    ),
    st.tuples(st.just("clear"), st.none(), st.none()),
    st.tuples(st.just("checkpoint"), st.none(), st.none()),
)


def _apply(store, dur, oracle: dict, op) -> None:
    kind, a, b = op
    if kind == "put":
        store.put(a, b)
        oracle[a] = b
    elif kind == "multi_put":
        store.multi_put(a)
        oracle.update(a)
    elif kind == "delete":
        store.delete(a)
        oracle.pop(a, None)
    elif kind == "multi_delete":
        store.multi_delete(a)
        for key in a:
            oracle.pop(key, None)
    elif kind == "drop_prefix":
        store.drop_prefix(a)
        for key in [k for k in oracle if k.startswith(a)]:
            del oracle[key]
    elif kind == "clear":
        store.clear()
        oracle.clear()
    elif kind == "checkpoint":
        dur.checkpoint(store)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(_ops, min_size=1, max_size=30),
    engine=st.sampled_from(["mem", "lsm"]),
    fsync_policy=st.sampled_from(["group", "never"]),
    interval=st.sampled_from([3, 512]),
    debris=st.binary(max_size=12),
)
def test_recovery_equals_precrash_oracle(
    tmp_path_factory, ops, engine, fsync_policy, interval, debris
):
    data_dir = str(tmp_path_factory.mktemp("durable"))

    def make_store():
        return MemStore() if engine == "mem" else LSMStore(memtable_limit=4)

    store = make_store()
    dur = NodeDurability(
        data_dir, fsync_policy=fsync_policy, checkpoint_interval=interval
    )
    dur.open(store)
    oracle: dict = {}
    for op in ops:
        _apply(store, dur, oracle, op)
    assert dict(store.scan()) == oracle  # the live store tracks too

    dur.abandon()  # crash: no close-time sync, page-cache state only
    if debris:
        # the crash may additionally tear a record mid-append: a header
        # declaring 64 payload bytes backed by at most 12 of them can
        # never read as complete, whatever hypothesis puts in it
        wal = dur.wal
        assert wal is not None
        with open(wal.path, "ab") as handle:
            handle.write(struct.pack(">I", 64) + debris)

    recovered = make_store()
    report = NodeDurability(data_dir, checkpoint_interval=interval).open(
        recovered
    )
    assert dict(recovered.scan()) == oracle
    total = report.checkpoint_pairs + report.records_replayed
    assert total >= 0 if not oracle else total > 0
