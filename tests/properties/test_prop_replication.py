"""Membership-churn property: the replicated cluster equals a dict oracle.

Hypothesis drives random interleavings of ``put`` / ``delete`` /
``fail_node`` / ``recover_node`` / ``add_node`` / ``remove_node``
against ``replication_factor ∈ {1, 2, 3}``. The generator keeps the
churn inside the failure model's guarantee — strictly fewer than R nodes
down at any moment — and under that constraint the cluster must never
lose or resurrect a key: after every operation, every oracle key reads
back its latest value and every deleted key reads ``None``; at the end,
a full scan equals the oracle exactly.

This is the harness that proves the failover design (eager
re-replication on crash, tombstone logs on recovery, preference-list
migration on scale events) correct, not just plausible.
"""

from hypothesis import given, settings, strategies as st

from repro.kv import KVCluster
from repro.kv.codec import encode_key

MAX_NODES = 7

# op shapes: (kind, a, b) with a/b reinterpreted per kind
_ops = st.tuples(
    st.sampled_from(
        ["put", "put", "put", "delete", "fail", "recover", "add", "remove"]
    ),
    st.integers(0, 15),   # key index
    st.integers(0, 9),    # value index / node selector
)


def _apply(cluster: KVCluster, oracle: dict, op) -> None:
    """Apply one churn op, keeping < R nodes down (the guarantee zone)."""
    kind, a, b = op
    replication = cluster.replication_factor
    if kind == "put":
        key = encode_key((a,))
        value = f"value{b}".encode()
        cluster.put("churn", key, value)
        oracle[key] = value
    elif kind == "delete":
        key = encode_key((a,))
        removed = cluster.delete("churn", key)
        assert removed == (key in oracle)
        oracle.pop(key, None)
    elif kind == "fail":
        live = cluster.live_node_ids
        # stay strictly under R nodes down — the advertised guarantee
        if len(cluster.down_node_ids) + 1 >= replication or len(live) <= 1:
            return
        cluster.fail_node(live[b % len(live)])
    elif kind == "recover":
        down = cluster.down_node_ids
        if down:
            cluster.recover_node(down[b % len(down)])
    elif kind == "add":
        if cluster.num_nodes < MAX_NODES:
            cluster.add_node()
    elif kind == "remove":
        live = cluster.live_node_ids
        # keep enough live nodes for R replicas of every key
        if len(live) > replication:
            cluster.remove_node(live[b % len(live)])


def _check_reads(cluster: KVCluster, oracle: dict) -> None:
    for key, value in oracle.items():
        assert cluster.get("churn", key) == value


@given(
    replication=st.sampled_from([1, 2, 3]),
    num_nodes=st.integers(3, 5),
    ops=st.lists(_ops, max_size=25),
)
@settings(max_examples=250, deadline=None)
def test_churn_matches_dict_oracle(replication, num_nodes, ops):
    cluster = KVCluster(num_nodes, replication_factor=replication)
    oracle: dict = {}
    for op in ops:
        _apply(cluster, oracle, op)
        _check_reads(cluster, oracle)
    # deleted / never-written keys stay absent
    for i in range(16):
        key = encode_key((i,))
        if key not in oracle:
            assert cluster.get("churn", key) is None
    # the full scan is exactly the oracle, each pair exactly once
    assert dict(cluster.scan("churn", count_as_gets=False)) == oracle
    assert sorted(cluster.namespace_keys("churn")) == sorted(oracle)


@given(
    replication=st.sampled_from([2, 3]),
    ops=st.lists(_ops, max_size=20),
    batch=st.lists(st.integers(0, 15), min_size=1, max_size=10),
)
@settings(max_examples=100, deadline=None)
def test_churned_multi_get_stays_positional(replication, ops, batch):
    """Batched reads through churn: positional, oracle-exact answers."""
    cluster = KVCluster(4, replication_factor=replication)
    oracle: dict = {}
    for op in ops:
        _apply(cluster, oracle, op)
    keys = [encode_key((i,)) for i in batch]
    values = cluster.multi_get("churn", keys)
    assert values == [oracle.get(k) for k in keys]
