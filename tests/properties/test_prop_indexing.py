"""Property: index-backed execution ≡ scan-based execution.

For random relations, random update batches and random predicates, a
system answering through secondary indexes must return exactly the rows
a scan-based twin returns — including after incremental write-through
maintenance, and under node fail/recover churn at R ≥ 2. The scan twin
is the oracle: it never consults an index, so any divergence is an
index bug (stale posting, lost bucket entry, wrong bound handling).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baav import BaaVSchema, kv_schema
from repro.relational import AttrType, Attribute, Database, DatabaseSchema
from repro.relational.schema import RelationSchema
from repro.systems import SQLOverNoSQL, ZidianSystem

SCHEMA = RelationSchema(
    "R",
    [
        Attribute("k", AttrType.INT),
        Attribute("c", AttrType.INT),
        Attribute("s", AttrType.INT),
    ],
    ["k"],
)

# small domains force collisions: posting lists grow past one entry and
# deletes regularly empty them
rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 40)),
    min_size=1,
    max_size=40,
).map(
    lambda pairs: [(k,) + pair for k, pair in enumerate(pairs)]
)

updates_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 6),     # c of an insert / row selector of a delete
        st.integers(0, 40),    # s of an insert / unused
    ),
    max_size=12,
)

predicate_strategy = st.one_of(
    st.tuples(st.just("eq"), st.integers(0, 7), st.integers(0, 0)),
    st.tuples(
        st.just("range"), st.integers(-5, 45), st.integers(0, 20)
    ),
    st.tuples(
        st.just("range_strict"), st.integers(-5, 45), st.integers(0, 20)
    ),
    st.tuples(st.just("between"), st.integers(-5, 45), st.integers(0, 20)),
)


def database_from(rows) -> Database:
    db = Database(DatabaseSchema([SCHEMA]))
    db.load("R", list(rows))
    return db


def sql_for(predicate) -> str:
    kind, a, b = predicate
    if kind == "eq":
        where = f"T.c = {a}"
    elif kind == "range":
        where = f"T.s >= {a} and T.s <= {a + b}"
    elif kind == "range_strict":
        where = f"T.s > {a} and T.s < {a + b}"
    else:
        where = f"T.s between {a} and {a + b}"
    return f"select T.k, T.c, T.s from R T where {where}"


def apply_batch(systems, rows, next_pk, updates):
    """Apply one random Δ identically to every system; returns rows'.

    Deletes only touch rows that existed before the batch — systems
    apply the delete list before the insert list.
    """
    inserts, deletes = [], []
    deletable = list(rows)
    for kind, a, b in updates:
        if kind == "insert":
            inserts.append((next_pk, a, b))
            next_pk += 1
        elif deletable:
            deletes.append(deletable.pop(a % len(deletable)))
    for system in systems:
        system.apply_updates("R", inserts=inserts, deletes=deletes)
    return deletable + inserts, next_pk


@settings(max_examples=40, deadline=None)
@given(
    rows=rows_strategy,
    updates=updates_strategy,
    predicates=st.lists(predicate_strategy, min_size=1, max_size=4),
)
def test_baseline_index_equals_scan(rows, updates, predicates):
    indexed = SQLOverNoSQL(
        "hbase",
        storage_nodes=3,
        indexes=["R.c", "R.s:ordered"],
    )
    indexed.load(database_from(rows))
    plain = SQLOverNoSQL("hbase", storage_nodes=3)
    plain.load(database_from(rows))

    for predicate in predicates:
        sql = sql_for(predicate)
        assert sorted(indexed.execute(sql).rows) == sorted(
            plain.execute(sql).rows
        )

    rows, _ = apply_batch(
        [indexed, plain], rows, len(rows) + 100, updates
    )
    for predicate in predicates:
        sql = sql_for(predicate)
        expected = sorted(plain.execute(sql).rows)
        assert sorted(indexed.execute(sql).rows) == expected


@settings(max_examples=25, deadline=None)
@given(
    rows=rows_strategy,
    updates=updates_strategy,
    predicate=predicate_strategy,
    churn=st.tuples(st.integers(0, 3), st.integers(0, 3)),
)
def test_index_survives_churn_at_r2(rows, updates, predicate, churn):
    """fail → query → recover → update → query, replicated twice."""
    indexed = SQLOverNoSQL(
        "hbase",
        storage_nodes=4,
        replication_factor=2,
        indexes=["R.c", "R.s:ordered"],
    )
    indexed.load(database_from(rows))
    plain = SQLOverNoSQL(
        "hbase", storage_nodes=4, replication_factor=2
    )
    plain.load(database_from(rows))
    sql = sql_for(predicate)

    victim_a, victim_b = churn
    for system in (indexed, plain):
        system.cluster.fail_node(system.cluster.live_node_ids[victim_a])
    assert sorted(indexed.execute(sql).rows) == sorted(
        plain.execute(sql).rows
    )
    rows, next_pk = apply_batch(
        [indexed, plain], rows, len(rows) + 100, updates
    )
    for system in (indexed, plain):
        system.cluster.recover_node(system.cluster.down_node_ids[0])
        live = system.cluster.live_node_ids
        system.cluster.fail_node(live[victim_b % len(live)])
    assert sorted(indexed.execute(sql).rows) == sorted(
        plain.execute(sql).rows
    )


@settings(max_examples=25, deadline=None)
@given(
    rows=rows_strategy,
    updates=updates_strategy,
    predicate=predicate_strategy,
)
def test_zidian_index_equals_scan(rows, updates, predicate):
    """The KBA IndexProbe path agrees with the ScanKV/TaaV path too."""
    baav = BaaVSchema([kv_schema("r_by_k", SCHEMA, ["k"])])
    indexed = ZidianSystem(
        "hbase", storage_nodes=3, indexes=["R.c", "R.s:ordered"]
    )
    indexed.load(database_from(rows), baav)
    plain = ZidianSystem("hbase", storage_nodes=3)
    plain.load(database_from(rows), baav)

    sql = sql_for(predicate)
    assert sorted(indexed.execute(sql).rows) == sorted(
        plain.execute(sql).rows
    )
    rows, _ = apply_batch(
        [indexed, plain], rows, len(rows) + 100, updates
    )
    assert sorted(indexed.execute(sql).rows) == sorted(
        plain.execute(sql).rows
    )
