"""The batched multi-get / multi-put pipeline: grouping, counters, costs."""

import pytest

from repro.kv import KVCluster
from repro.kv.backends import PROFILES, BackendProfile, profile
from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore
from repro.kv.node import StorageNode


def _loaded_cluster(n_keys=40, nodes=4, engine="mem"):
    cluster = KVCluster(nodes, engine=engine)
    for i in range(n_keys):
        cluster.put("ns", f"k{i:03d}".encode(), f"v{i}".encode())
    cluster.reset_counters()
    return cluster


class TestStoreMultiGet:
    @pytest.mark.parametrize("store_cls", [MemStore, LSMStore])
    def test_matches_per_key_gets(self, store_cls):
        store = store_cls()
        for i in range(30):
            store.put(f"k{i}".encode(), f"v{i}".encode())
        keys = [b"k3", b"missing", b"k17", b"k3"]
        assert store.multi_get(keys) == [store.get(k) for k in keys]

    @pytest.mark.parametrize("store_cls", [MemStore, LSMStore])
    def test_multi_put_visible(self, store_cls):
        store = store_cls()
        store.multi_put([(b"a", b"1"), (b"b", b"2"), (b"a", b"3")])
        # later duplicates win, as with sequential puts
        assert store.get(b"a") == b"3"
        assert store.get(b"b") == b"2"


class TestNodeRoundTrips:
    def test_single_ops_are_one_round_trip_each(self):
        node = StorageNode(0)
        node.put(b"x", b"1")
        node.get(b"x")
        node.get(b"y")
        assert node.counters.puts == 1
        assert node.counters.gets == 2
        assert node.counters.round_trips == 3

    def test_multi_get_is_one_round_trip(self):
        node = StorageNode(0)
        for i in range(10):
            node.store.put(f"k{i}".encode(), b"v")
        node.counters.reset()
        values = node.multi_get([f"k{i}".encode() for i in range(10)])
        assert all(v == b"v" for v in values)
        assert node.counters.gets == 10
        assert node.counters.hits == 10
        assert node.counters.round_trips == 1

    def test_empty_batch_is_free(self):
        node = StorageNode(0)
        assert node.multi_get([]) == []
        node.multi_put([])
        assert node.counters.round_trips == 0


class TestClusterMultiGet:
    @pytest.mark.parametrize("engine", ["mem", "lsm"])
    def test_positional_results(self, engine):
        cluster = _loaded_cluster(engine=engine)
        keys = [b"k005", b"nope", b"k017", b"k001", b"k005"]
        values = cluster.multi_get("ns", keys)
        assert values == [cluster.peek("ns", k) for k in keys]
        assert values[1] is None

    def test_one_round_trip_per_owning_node(self):
        """The acceptance criterion: a mixed batch costs exactly one
        round trip on each node that owns at least one key."""
        cluster = _loaded_cluster(n_keys=60)
        keys = [f"k{i:03d}".encode() for i in range(60)]
        owners = {
            cluster.ring.node_for(cluster.full_key("ns", k)) for k in keys
        }
        assert len(owners) > 1  # genuinely mixed placement
        cluster.multi_get("ns", keys)
        per_node = cluster.counters_per_node()
        for node_id, counters in per_node.items():
            expected = 1 if node_id in owners else 0
            assert counters.round_trips == expected
        total = cluster.total_counters()
        assert total.round_trips == len(owners)
        assert total.gets == len(keys)

    def test_duplicates_fetched_once(self):
        cluster = _loaded_cluster()
        values = cluster.multi_get("ns", [b"k001"] * 5)
        assert values == [cluster.peek("ns", b"k001")] * 5
        total = cluster.total_counters()
        assert total.gets == 1
        assert total.round_trips == 1

    def test_multi_put_round_trips_and_ordering(self):
        cluster = KVCluster(4)
        items = [(f"k{i}".encode(), b"old") for i in range(20)]
        items += [(b"k7", b"new")]  # later duplicate wins
        cluster.multi_put("ns", items)
        owners = {
            cluster.ring.node_for(cluster.full_key("ns", k))
            for k, _ in items
        }
        total = cluster.total_counters()
        assert total.puts == len(items)
        assert total.round_trips == len(owners)
        assert cluster.peek("ns", b"k7") == b"new"

    def test_single_get_still_one_round_trip(self):
        cluster = _loaded_cluster()
        cluster.get("ns", b"k001")
        total = cluster.total_counters()
        assert total.gets == 1
        assert total.round_trips == 1


class TestBackendBatchCosts:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_unbatched_equals_legacy_cost(self, name):
        p = profile(name)
        assert p.batched_get_cost_ms(7, 7, 100) == pytest.approx(
            p.get_cost_ms(7, 100)
        )
        assert p.batched_put_cost_ms(7, 7, 100) == pytest.approx(
            p.put_cost_ms(7, 100)
        )

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_batching_is_cheaper(self, name):
        p = profile(name)
        assert p.batched_get_cost_ms(2, 64, 64) < p.get_cost_ms(64, 64)

    def test_inconsistent_decomposition_rejected(self):
        with pytest.raises(ValueError):
            BackendProfile(
                name="bad",
                get_latency_ms=1.0,
                scan_value_ms=0.0,
                put_latency_ms=1.0,
                write_value_ms=0.0,
                network_bytes_per_ms=1.0,
                cpu_value_ms=0.0,
                job_overhead_ms=0.0,
                stage_overhead_ms=0.0,
                round_trip_ms=0.9,
                get_key_ms=0.5,   # 0.9 + 0.5 != 1.0
                put_key_ms=0.1,
            )


class TestTaaVBatching:
    def _taav(self):
        from repro.kv.taav import TaaVRelation
        from repro.relational import AttrType, RelationSchema

        schema = RelationSchema.of(
            "R", {"id": AttrType.INT, "v": AttrType.STR}, ["id"]
        )
        cluster = KVCluster(3)
        taav = TaaVRelation(schema, cluster)
        taav.load([(i, f"row{i}") for i in range(50)])
        cluster.reset_counters()
        return taav, cluster

    def test_multi_get_matches_per_key(self):
        taav, cluster = self._taav()
        keys = [(3,), (99,), (41,), (3,)]
        assert taav.multi_get(keys) == [taav.get(k) for k in keys]

    def test_batched_fetch_all_same_rows_fewer_round_trips(self):
        taav, cluster = self._taav()
        per_key = taav.fetch_all()
        per_key_counters = cluster.total_counters()
        cluster.reset_counters()
        batched = taav.fetch_all(batch_size=16)
        batched_counters = cluster.total_counters()
        assert sorted(per_key.rows) == sorted(batched.rows)
        assert batched_counters.gets == per_key_counters.gets
        assert batched_counters.round_trips < per_key_counters.round_trips


class TestInstanceMultiGet:
    def test_blocks_match_per_key_gets(self, paper_db, paper_baav_schema):
        from repro.baav import BaaVStore

        cluster = KVCluster(3)
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster, split_threshold=4
        )
        instance = next(iter(store))
        keys = instance.keys()
        assert keys
        per_key = {tuple(k): instance.get(k) for k in keys}
        cluster.reset_counters()
        batched = instance.multi_get(keys + [("nope",) * len(keys[0])])
        for key in keys:
            expected = per_key[tuple(key)]
            got = batched[tuple(key)]
            assert got is not None
            assert sorted(got.entries) == sorted(expected.entries)
        counters = cluster.total_counters()
        # two waves (segment 0, then tail segments) of at most one round
        # trip per node each — never one per key
        assert counters.round_trips <= min(
            counters.gets, 2 * cluster.num_nodes
        )
