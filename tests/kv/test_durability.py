"""Crash/recovery semantics of durable nodes and clusters (PR 8).

Three layers of the crash story:

* :class:`StorageNode` — ``crash()`` destroys the volatile store (the
  satellite-1 bugfix: before PR 8 a local kill silently degraded to
  partition semantics), ``restart()`` recovers by WAL replay when the
  node is durable and comes back empty otherwise.
* :class:`KVCluster` knobs — durability resolution (``data_dir`` ⇒
  ``"wal"``, env fallback, scratch-dir ownership) and the invalid
  combinations.
* Cluster recovery — kill-and-recover moves **zero** bytes on a durable
  cluster (WAL replay + delta catch-up) versus a full re-sync on a
  volatile one, local and socket transports count identically, and a
  whole-cluster restart from ``data_dir`` serves every acked write
  byte-for-byte.

File-format corruption cases live in ``test_wal.py``; end-to-end query
scenarios in ``tests/integration/test_failure_injection.py``.
"""

import os

import pytest

from repro.kv import checkpoint as ckpt
from repro.kv import wal as walmod
from repro.kv.cluster import DURABILITY_ENV, KVCluster
from repro.kv.memstore import MemStore
from repro.kv.node import StorageNode


def _fill(cluster, n=60, value=b"payload-%d"):
    writes = {}
    for i in range(n):
        key = b"k%04d" % i
        cluster.put("ns", key, value % i)
        writes[key] = value % i
    return writes


def _assert_serves(cluster, writes):
    for key, want in writes.items():
        assert cluster.get("ns", key) == want


# --------------------------------------------------------------------------
# StorageNode crash/restart
# --------------------------------------------------------------------------


class TestStorageNodeCrash:
    def test_volatile_kill_destroys_store(self):
        node = StorageNode(0)
        node.put(b"k", b"v")
        assert node.crash()
        assert node.is_crashed
        assert len(node.store) == 0  # the crash-semantics fix
        node.restart()
        assert not node.is_crashed
        assert node.get(b"k") is None  # volatile: comes back empty

    def test_durable_kill_recovers_by_replay(self, tmp_path):
        node = StorageNode(0, data_dir=str(tmp_path / "n0"))
        assert node.durable
        node.put(b"k", b"v")
        node.multi_put([(b"a", b"1"), (b"b", b"2")])
        node.delete(b"a")
        assert node.crash()
        assert len(node.store) == 0
        node.restart()
        assert node.get(b"k") == b"v"
        assert node.get(b"b") == b"2"
        assert node.get(b"a") is None
        assert node.last_recovery is not None
        assert node.last_recovery.records_replayed == 3
        node.close()

    def test_injected_store_degrades_with_warning(self):
        store = MemStore()
        node = StorageNode(0, store=store)
        node.put(b"k", b"v")
        with pytest.warns(RuntimeWarning, match="injected store"):
            assert not node.crash()
        assert not node.is_crashed
        assert store.get(b"k") == b"v"  # partition semantics kept

    def test_crash_idempotent(self):
        node = StorageNode(0)
        assert node.crash()
        assert node.crash()  # already crashed: still honored

    def test_injected_store_with_data_dir_refused(self, tmp_path):
        with pytest.raises(ValueError):
            StorageNode(0, store=MemStore(), data_dir=str(tmp_path))

    def test_checkpoint_requires_durability(self, tmp_path):
        volatile = StorageNode(0)
        with pytest.raises(ValueError):
            volatile.checkpoint()
        durable = StorageNode(0, data_dir=str(tmp_path / "n0"))
        durable.put(b"k", b"v")
        durable.checkpoint()
        assert os.path.exists(
            ckpt.checkpoint_path(str(tmp_path / "n0"), 1))
        durable.close()

    def test_wal_stats_shape(self, tmp_path):
        assert StorageNode(0).wal_stats() == {}
        node = StorageNode(0, data_dir=str(tmp_path / "n0"),
                           fsync_policy="always")
        node.put(b"k", b"v")
        stats = node.wal_stats()
        assert stats["records"] == 1
        assert stats["fsyncs"] == 1
        node.close()

    def test_automatic_checkpoint_bounds_replay(self, tmp_path):
        node = StorageNode(0, data_dir=str(tmp_path / "n0"),
                           checkpoint_interval=8)
        for i in range(20):
            node.put(b"k%02d" % i, b"v")
        node.crash()
        node.restart()
        report = node.last_recovery
        assert report is not None
        assert report.seq >= 2  # the interval fired while writing
        assert report.records_replayed < 8
        assert report.checkpoint_pairs + report.records_replayed >= 16
        for i in range(20):
            assert node.get(b"k%02d" % i) == b"v"
        node.close()


# --------------------------------------------------------------------------
# KVCluster durability knobs
# --------------------------------------------------------------------------


class TestClusterKnobs:
    def test_data_dir_implies_wal(self, tmp_path):
        cluster = KVCluster(2, data_dir=str(tmp_path / "c"))
        assert cluster.durability == "wal"
        assert all(node.durable for node in cluster.nodes.values())
        cluster.close()

    def test_off_with_data_dir_refused(self, tmp_path):
        with pytest.raises(ValueError):
            KVCluster(2, data_dir=str(tmp_path), durability="off")

    def test_unknown_mode_refused(self):
        with pytest.raises(ValueError):
            KVCluster(2, durability="paranoid")
        with pytest.raises(ValueError):
            KVCluster(2, durability="wal", fsync_policy="nope")

    def test_env_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DURABILITY_ENV, "wal")
        cluster = KVCluster(2)
        assert cluster.durability == "wal"
        assert cluster.data_dir is not None  # owned scratch dir
        cluster.close()

    def test_scratch_dir_removed_on_close(self):
        cluster = KVCluster(2, durability="wal")
        scratch = cluster.data_dir
        assert scratch is not None and os.path.isdir(scratch)
        cluster.close()
        assert not os.path.exists(scratch)

    def test_explicit_data_dir_survives_close(self, tmp_path):
        data_dir = str(tmp_path / "c")
        cluster = KVCluster(2, data_dir=data_dir)
        _fill(cluster, n=10)
        cluster.close()
        assert os.path.isdir(data_dir)  # caller's dir, caller's call

    def test_default_is_volatile(self, monkeypatch):
        monkeypatch.delenv(DURABILITY_ENV, raising=False)
        cluster = KVCluster(2)
        assert cluster.durability == "off"
        assert cluster.data_dir is None
        assert cluster.wal_stats() == {
            "records": 0, "bytes": 0, "fsyncs": 0, "rolls": 0}
        cluster.close()

    def test_wal_stats_aggregate(self, tmp_path):
        cluster = KVCluster(
            3, data_dir=str(tmp_path / "c"), fsync_policy="always")
        _fill(cluster, n=20)
        stats = cluster.wal_stats()
        assert stats["records"] == 20
        assert stats["fsyncs"] == 20
        assert stats["bytes"] > 0
        cluster.close()


# --------------------------------------------------------------------------
# kill-and-recover: durable replay vs volatile re-sync
# --------------------------------------------------------------------------


class TestKillRecovery:
    def test_durable_recovery_moves_zero_bytes(self, tmp_path):
        cluster = KVCluster(
            3, replication_factor=2, data_dir=str(tmp_path / "c"))
        writes = _fill(cluster)
        cluster.fail_node(1, kill=True)
        _assert_serves(cluster, writes)  # replicas keep serving
        cluster.recover_node(1)
        report = cluster.last_rebalance
        assert report is not None
        assert report.keys_moved == 0  # WAL replay covered everything
        assert report.bytes_moved == 0
        _assert_serves(cluster, writes)
        cluster.close()

    def test_volatile_recovery_pays_full_resync(self):
        cluster = KVCluster(3, replication_factor=2, durability="off")
        writes = _fill(cluster)
        cluster.fail_node(1, kill=True)
        cluster.recover_node(1)
        report = cluster.last_rebalance
        assert report is not None
        assert report.bytes_moved > 0  # empty respawn: everything moves
        _assert_serves(cluster, writes)
        cluster.close()

    def test_durable_beats_volatile_on_rebalance_bytes(self, tmp_path):
        """The PR's acceptance criterion at the unit level: recovery by
        replay + delta catch-up ships strictly fewer bytes than an
        empty respawn of the same node under the same writes."""
        def recovery_bytes(**kwargs):
            cluster = KVCluster(3, replication_factor=2, **kwargs)
            _fill(cluster)
            cluster.fail_node(1, kill=True)
            cluster.recover_node(1)
            moved = cluster.last_rebalance.bytes_moved
            cluster.close()
            return moved

        durable = recovery_bytes(data_dir=str(tmp_path / "c"))
        volatile = recovery_bytes(durability="off")
        assert durable < volatile

    def test_missed_writes_catch_up_by_delta(self, tmp_path):
        cluster = KVCluster(
            3, replication_factor=2, data_dir=str(tmp_path / "c"))
        writes = _fill(cluster)
        cluster.fail_node(1, kill=True)
        # writes + deletes the dead node misses
        for i in range(10):
            key = b"late%02d" % i
            cluster.put("ns", key, b"late")
            writes[key] = b"late"
        cluster.delete("ns", b"k0000")
        writes.pop(b"k0000")
        cluster.recover_node(1)
        report = cluster.last_rebalance
        # only the missed delta moved, not the node's whole key range
        assert 0 < report.keys_moved <= 10
        _assert_serves(cluster, writes)
        assert cluster.get("ns", b"k0000") is None  # tombstone applied
        cluster.close()

    def test_local_and_socket_kill_count_identically(self, tmp_path):
        """Satellite-1 regression: a volatile kill must cost the same
        recovery re-sync on both transports. Before the fix the local
        store silently survived the kill, so local recovery counted
        zero moved keys where socket recovery re-shipped the node."""
        def kill_recover_counters(transport, data_dir=None):
            cluster = KVCluster(
                3, replication_factor=2, transport=transport,
                data_dir=data_dir,
                durability="wal" if data_dir else "off")
            writes = _fill(cluster)
            cluster.fail_node(1, kill=True)
            cluster.recover_node(1)
            report = cluster.last_rebalance
            _assert_serves(cluster, writes)
            cluster.close()
            return (report.keys_moved, report.bytes_moved)

        assert (kill_recover_counters("local")
                == kill_recover_counters("socket"))
        assert (kill_recover_counters(
                    "local", data_dir=str(tmp_path / "dl"))
                == kill_recover_counters(
                    "socket", data_dir=str(tmp_path / "ds"))
                == (0, 0))

    def test_socket_durable_node_sigkill_recovers(self, tmp_path):
        """A real SIGKILLed node process restarts by replay + delta
        sync instead of an empty respawn + full re-sync."""
        cluster = KVCluster(
            3, replication_factor=2, transport="socket",
            data_dir=str(tmp_path / "c"))
        writes = _fill(cluster)
        cluster.fail_node(1, kill=True)  # SIGKILLs the node process
        assert cluster.nodes[1].is_crashed
        cluster.recover_node(1)
        assert cluster.last_rebalance.bytes_moved == 0
        _assert_serves(cluster, writes)
        stats = cluster.wal_stats()
        assert stats["records"] > 0
        cluster.close()


# --------------------------------------------------------------------------
# whole-cluster restart from data_dir
# --------------------------------------------------------------------------


class TestWholeClusterRestart:
    # pinned to the local transport: ``last_recovery`` is the in-process
    # node's report (a socket node recovers inside its child process —
    # the wire-level variant lives in tests/integration)
    @pytest.mark.parametrize("replication_factor", [1, 2])
    def test_restart_serves_every_acked_write(
        self, tmp_path, replication_factor
    ):
        data_dir = str(tmp_path / "c")
        cluster = KVCluster(
            3, replication_factor=replication_factor, data_dir=data_dir,
            transport="local")
        writes = _fill(cluster, n=100)
        for node in cluster.nodes.values():  # SIGKILL-equivalent, no close
            node.crash()
        cluster.close()

        reborn = KVCluster(
            3, replication_factor=replication_factor, data_dir=data_dir,
            transport="local")
        _assert_serves(reborn, writes)
        assert all(
            node.last_recovery is not None
            for node in reborn.nodes.values()
        )
        reborn.close()

    def test_restart_with_torn_tail(self, tmp_path):
        data_dir = str(tmp_path / "c")
        cluster = KVCluster(1, data_dir=data_dir, transport="local")
        writes = _fill(cluster, n=20)
        cluster.nodes[0].crash()
        cluster.close()
        # the crash tore the last record mid-frame
        log_path = ckpt.wal_path(os.path.join(data_dir, "node-0"), 0)
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x20\xde\xad")

        reborn = KVCluster(1, data_dir=data_dir, transport="local")
        report = reborn.nodes[0].last_recovery
        assert report is not None and report.torn_tail
        _assert_serves(reborn, writes)  # every acked write survived
        reborn.close()

    def test_node_id_reuse_cannot_resurrect(self, tmp_path):
        """remove_node() then add_node() reuses the node id; the fresh
        node must NOT replay the removed node's stale directory."""
        data_dir = str(tmp_path / "c")
        cluster = KVCluster(3, data_dir=data_dir)
        writes = _fill(cluster)
        cluster.remove_node(2)
        # overwrite everything while node 2's old directory still holds
        # its pre-removal values
        for key in writes:
            writes[key] = b"fresh"
            cluster.put("ns", key, b"fresh")
        added = cluster.add_node()
        assert added.node_id == 2  # the id really is reused
        _assert_serves(cluster, writes)
        cluster.close()

    def test_scan_consistent_after_restart(self, tmp_path):
        data_dir = str(tmp_path / "c")
        cluster = KVCluster(2, data_dir=data_dir)
        writes = _fill(cluster, n=30)
        cluster.close()  # orderly shutdown syncs the group-commit tail

        reborn = KVCluster(2, data_dir=data_dir)
        got = dict(reborn.scan("ns"))
        assert got == writes
        reborn.close()


# --------------------------------------------------------------------------
# fsync policy plumbing
# --------------------------------------------------------------------------


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", walmod.FSYNC_POLICIES)
    def test_policy_reaches_the_nodes(self, tmp_path, policy):
        cluster = KVCluster(
            2, data_dir=str(tmp_path / "c"), fsync_policy=policy)
        writes = _fill(cluster, n=40)
        stats = cluster.wal_stats()
        if policy == "always":
            assert stats["fsyncs"] == stats["records"] == 40
        elif policy == "never":
            assert stats["fsyncs"] == 0
        else:
            assert 0 <= stats["fsyncs"] < 40
        # the crash guarantee is policy-independent (page-cache flush)
        for node in cluster.nodes.values():
            node.crash()
        for node in cluster.nodes.values():
            node.restart()
        _assert_serves(cluster, writes)
        cluster.close()
