"""Replication, failover and rebalancing of the KV cluster (PR 3)."""

import pytest

from repro.errors import ClusterUnavailableError
from repro.kv import HashRing, KVCluster
from repro.kv.codec import encode_key


def load(cluster, n=100, namespace="ns"):
    for i in range(n):
        cluster.put(namespace, encode_key((i,)), f"v{i}".encode())
    return {encode_key((i,)): f"v{i}".encode() for i in range(n)}


class TestNodesFor:
    def test_first_owner_matches_node_for(self):
        ring = HashRing([0, 1, 2, 3])
        for i in range(100):
            key = f"key{i}".encode()
            assert ring.nodes_for(key, 1) == [ring.node_for(key)]

    def test_distinct_owners(self):
        ring = HashRing([0, 1, 2, 3, 4])
        for i in range(100):
            owners = ring.nodes_for(f"key{i}".encode(), 3)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_prefix_stability(self):
        """nodes_for(key, n) is a prefix of nodes_for(key, n+1)."""
        ring = HashRing([0, 1, 2, 3, 4])
        for i in range(50):
            key = f"key{i}".encode()
            for n in range(1, 5):
                assert ring.nodes_for(key, n + 1)[:n] == ring.nodes_for(key, n)

    def test_caps_at_ring_size(self):
        ring = HashRing([0, 1])
        assert sorted(ring.nodes_for(b"k", 5)) == [0, 1]

    def test_invalid_n(self):
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.nodes_for(b"k", 0)

    def test_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing().nodes_for(b"k", 1)

    def test_failover_shifts_to_successor(self):
        """Removing a node promotes the next distinct walk node only."""
        ring = HashRing([0, 1, 2, 3])
        for i in range(50):
            key = f"key{i}".encode()
            walk = ring.nodes_for(key, 4)
            survivors = [n for n in walk if n != walk[0]]
            ring2 = HashRing([n for n in (0, 1, 2, 3) if n != walk[0]])
            assert ring2.nodes_for(key, 3) == survivors[:3]


class TestReplicatedWrites:
    def test_put_lands_on_r_replicas(self):
        cluster = KVCluster(4, replication_factor=3)
        cluster.put("ns", b"k", b"v")
        full = cluster.full_key("ns", b"k")
        holders = [
            n.node_id for n in cluster.nodes.values()
            if n.store.get(full) == b"v"
        ]
        assert len(holders) == 3

    def test_write_counters_show_fanout(self):
        cluster = KVCluster(4, replication_factor=3)
        cluster.put("ns", b"k", b"v")
        assert cluster.total_counters().puts == 3

    def test_multi_put_one_round_trip_per_replica_node(self):
        cluster = KVCluster(4, replication_factor=2)
        items = [(encode_key((i,)), b"v") for i in range(50)]
        cluster.multi_put("ns", items)
        total = cluster.total_counters()
        assert total.puts == 100  # 50 items x 2 replicas
        assert total.round_trips <= cluster.num_nodes

    def test_replication_factor_validated(self):
        with pytest.raises(ValueError):
            KVCluster(2, replication_factor=3)
        with pytest.raises(ValueError):
            KVCluster(2, replication_factor=0)

    def test_delete_removes_all_replicas(self):
        cluster = KVCluster(4, replication_factor=3)
        cluster.put("ns", b"k", b"v")
        assert cluster.delete("ns", b"k")
        full = cluster.full_key("ns", b"k")
        assert all(n.store.get(full) is None for n in cluster.nodes.values())


class TestReplicatedReads:
    def test_reads_spread_over_replicas(self):
        """Repeated reads of one hot key hit more than one node."""
        cluster = KVCluster(4, replication_factor=3)
        cluster.put("ns", b"hot", b"v")
        cluster.reset_counters()
        for _ in range(30):
            assert cluster.get("ns", b"hot") == b"v"
        serving = [
            n for n in cluster.nodes.values() if n.counters.gets > 0
        ]
        assert len(serving) == 3
        assert max(n.counters.gets for n in serving) <= 11

    def test_multi_get_balances_batch(self):
        cluster = KVCluster(4, replication_factor=2)
        expected = load(cluster, 80)
        cluster.reset_counters()
        keys = list(expected)
        values = cluster.multi_get("ns", keys)
        assert values == [expected[k] for k in keys]
        per_node = [n.counters.gets for n in cluster.nodes.values()]
        assert max(per_node) < 80  # no single replica served everything

    def test_scan_yields_each_pair_once(self):
        cluster = KVCluster(4, replication_factor=3)
        expected = load(cluster, 60)
        assert dict(cluster.scan("ns", count_as_gets=False)) == expected

    def test_scan_counts_logical_pairs_not_replicas(self):
        cluster = KVCluster(4, replication_factor=3)
        load(cluster, 60)
        cluster.reset_counters()
        list(cluster.scan("ns"))
        assert cluster.total_counters().gets == 60

    def test_namespace_keys_distinct(self):
        cluster = KVCluster(4, replication_factor=3)
        expected = load(cluster, 60)
        assert sorted(cluster.namespace_keys("ns")) == sorted(expected)


class TestFailover:
    def test_single_crash_loses_nothing(self):
        cluster = KVCluster(4, replication_factor=3)
        expected = load(cluster, 150)
        for doomed in list(cluster.nodes):
            cluster.fail_node(doomed)
            for key, value in expected.items():
                assert cluster.get("ns", key) == value
            cluster.recover_node(doomed)

    def test_two_crashes_survive_with_r3(self):
        cluster = KVCluster(5, replication_factor=3)
        expected = load(cluster, 150)
        cluster.fail_node(0)
        cluster.fail_node(1)
        for key, value in expected.items():
            assert cluster.get("ns", key) == value

    def test_writes_during_outage_survive_recovery(self):
        cluster = KVCluster(4, replication_factor=2)
        load(cluster, 50)
        cluster.fail_node(2)
        cluster.put("ns", b"new", b"fresh")
        cluster.put("ns", encode_key((7,)), b"updated")
        cluster.recover_node(2)
        assert cluster.get("ns", b"new") == b"fresh"
        assert cluster.get("ns", encode_key((7,))) == b"updated"
        # no node anywhere still holds the pre-outage value of key 7
        full = cluster.full_key("ns", encode_key((7,)))
        values = {
            n.store.get(full) for n in cluster.nodes.values()
        } - {None}
        assert values == {b"updated"}

    def test_deletes_during_outage_do_not_resurrect(self):
        cluster = KVCluster(3, replication_factor=2)
        expected = load(cluster, 80)
        cluster.fail_node(1)
        for key in list(expected)[:40]:
            cluster.delete("ns", key)
        cluster.recover_node(1)
        for key in list(expected)[:40]:
            assert cluster.get("ns", key) is None
        for key in list(expected)[40:]:
            assert cluster.get("ns", key) == expected[key]

    def test_drop_namespace_during_outage(self):
        cluster = KVCluster(3, replication_factor=2)
        load(cluster, 30)
        cluster.put("other", b"k", b"keep")
        cluster.fail_node(0)
        cluster.drop_namespace("ns")
        cluster.recover_node(0)
        assert cluster.namespace_keys("ns") == []
        assert cluster.get("other", b"k") == b"keep"

    def test_unavailable_when_all_owners_down(self):
        cluster = KVCluster(2, replication_factor=1)
        cluster.put("ns", b"k", b"v")
        cluster.fail_node(0)
        cluster.fail_node(1)
        with pytest.raises(ClusterUnavailableError):
            cluster.get("ns", b"k")
        with pytest.raises(ClusterUnavailableError):
            cluster.put("ns", b"k", b"v2")

    def test_r1_failover_routes_new_writes(self):
        """With R=1 a down node's range is served by its ring successor."""
        cluster = KVCluster(2, replication_factor=1)
        cluster.fail_node(0)
        for i in range(20):
            cluster.put("ns", encode_key((i,)), b"v")
            assert cluster.get("ns", encode_key((i,))) == b"v"
        assert len(cluster.nodes[1].store) == 20

    def test_fail_validations(self):
        cluster = KVCluster(2)
        with pytest.raises(ValueError):
            cluster.fail_node(9)
        cluster.fail_node(0)
        with pytest.raises(ValueError):
            cluster.fail_node(0)
        with pytest.raises(ValueError):
            cluster.recover_node(1)

    def test_liveness_introspection(self):
        cluster = KVCluster(3)
        cluster.fail_node(1)
        assert cluster.live_node_ids == [0, 2]
        assert cluster.down_node_ids == [1]
        assert cluster.num_live_nodes == 2
        assert not cluster.is_live(1)
        cluster.recover_node(1)
        assert cluster.is_live(1)


class TestRebalancing:
    def test_fail_node_charges_rebalance_counters(self):
        cluster = KVCluster(4, replication_factor=2)
        load(cluster, 100)
        cluster.reset_counters()
        cluster.fail_node(0)
        total = cluster.total_counters()
        assert total.rebalance_keys_moved > 0
        assert total.rebalance_bytes_moved > 0
        assert total.rebalance_round_trips > 0
        report = cluster.last_rebalance
        assert report.keys_moved == total.rebalance_keys_moved
        assert report.bytes_moved == total.rebalance_bytes_moved

    def test_recovery_is_incremental(self):
        """An untouched key range costs nothing to re-sync on recovery."""
        cluster = KVCluster(4, replication_factor=3)
        load(cluster, 100)
        cluster.fail_node(0)
        cluster.reset_counters()
        cluster.recover_node(0)
        # nothing was written while down: recovery only drops the
        # failover copies, it re-copies no data
        assert cluster.total_counters().rebalance_keys_moved == 0
        assert cluster.last_rebalance.keys_dropped > 0

    def test_add_node_moves_only_changed_ranges(self):
        cluster = KVCluster(4, replication_factor=2)
        expected = load(cluster, 200)
        cluster.reset_counters()
        cluster.add_node()
        report = cluster.last_rebalance
        # consistent hashing: the new node takes ~1/5 of each replica set
        assert 0 < report.keys_moved < 200
        assert dict(cluster.scan("ns", count_as_gets=False)) == expected

    def test_add_node_preserves_data(self):
        cluster = KVCluster(3, replication_factor=2)
        expected = load(cluster, 200)
        cluster.add_node()
        assert cluster.num_nodes == 4
        for key, value in expected.items():
            assert cluster.peek("ns", key) == value

    def test_remove_node_migrates_data(self):
        cluster = KVCluster(4, replication_factor=2)
        expected = load(cluster, 150)
        cluster.remove_node(2)
        assert cluster.num_nodes == 3
        assert 2 not in cluster.nodes
        for key, value in expected.items():
            assert cluster.get("ns", key) == value
        # every key still has R replicas among the survivors
        full = cluster.full_key("ns", encode_key((0,)))
        holders = [
            n for n in cluster.nodes.values() if n.store.get(full)
        ]
        assert len(holders) == 2

    def test_remove_down_node_discards_its_disk(self):
        cluster = KVCluster(3, replication_factor=2)
        expected = load(cluster, 100)
        cluster.fail_node(1)
        cluster.remove_node(1)
        assert cluster.num_nodes == 2
        assert cluster.down_node_ids == []
        for key, value in expected.items():
            assert cluster.get("ns", key) == value

    def test_cannot_remove_last_node(self):
        cluster = KVCluster(1)
        with pytest.raises(ValueError):
            cluster.remove_node(0)

    def test_replica_invariant_after_churn(self):
        """After any membership event: every live owner holds the key,
        no live non-owner does."""
        cluster = KVCluster(4, replication_factor=2)
        expected = load(cluster, 120)
        cluster.fail_node(0)
        cluster.add_node()
        cluster.recover_node(0)
        cluster.remove_node(2)
        for key, value in expected.items():
            full = cluster.full_key("ns", key)
            owners = set(cluster._live_owner_ids(full))
            for node in cluster.nodes.values():
                held = node.store.get(full)
                if node.node_id in owners:
                    assert held == value
                else:
                    assert held is None


class TestReplicatedCacheInvalidation:
    def test_write_invalidates_across_replicas(self):
        from repro.kv import BlockCache

        cluster = KVCluster(3, replication_factor=2)
        cache = BlockCache(1 << 20)
        cluster.register_cache(cache)
        cluster.put("ns", b"k", b"v1")
        cache.put("ns", b"k", b"v1")
        cluster.put("ns", b"k", b"v2")
        assert cache.peek("ns", b"k") is None

    def test_failover_write_still_invalidates(self):
        from repro.kv import BlockCache

        cluster = KVCluster(3, replication_factor=2)
        cache = BlockCache(1 << 20)
        cluster.register_cache(cache)
        cluster.put("ns", b"k", b"v1")
        cache.put("ns", b"k", b"v1")
        cluster.fail_node(cluster._live_owner_ids(
            cluster.full_key("ns", b"k")
        )[0])
        cluster.put("ns", b"k", b"v2")
        assert cache.peek("ns", b"k") is None
        assert cluster.get("ns", b"k") == b"v2"
