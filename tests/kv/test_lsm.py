"""Tests for the LSM storage engine (memtable / runs / bloom / compaction)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv.lsm import BloomFilter, LSMStore
from repro.kv.memstore import MemStore


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100)
        keys = [f"key{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(k) for k in keys)

    def test_mostly_true_negatives(self):
        bloom = BloomFilter(100)
        for i in range(100):
            bloom.add(f"key{i}".encode())
        false_positives = sum(
            1
            for i in range(1000)
            if bloom.might_contain(f"other{i}".encode())
        )
        assert false_positives < 100  # ~1% expected at 10 bits/key


class TestLSMBasics:
    """Engine-specific behavior only — the generic store/node contract
    is covered for every engine by ``test_conformance.py``."""

    def test_flush_on_threshold(self):
        store = LSMStore(memtable_limit=10)
        for i in range(25):
            store.put(f"k{i:03d}".encode(), b"v")
        assert store.stats.flushes >= 2
        assert store.memtable_size < 10
        for i in range(25):
            assert store.get(f"k{i:03d}".encode()) == b"v"

    def test_newest_run_wins(self):
        store = LSMStore(memtable_limit=4)
        for round_no in (1, 2, 3):
            for i in range(4):
                store.put(f"k{i}".encode(), f"v{round_no}".encode())
        assert store.get(b"k0") == b"v3"

    def test_tombstone_shadows_older_run(self):
        store = LSMStore(memtable_limit=4)
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")  # flushed to a run
        store.delete(b"k1")
        assert store.get(b"k1") is None
        assert b"k1" not in store
        assert len(store) == 3

    def test_compaction_drops_tombstones(self):
        store = LSMStore(memtable_limit=4, max_runs=2)
        for i in range(8):
            store.put(f"k{i}".encode(), b"v")
        for i in range(8):
            store.delete(f"k{i}".encode())
        for i in range(100, 120):
            store.put(f"k{i}".encode(), b"v")
        assert store.stats.compactions >= 1
        assert all(store.get(f"k{i}".encode()) is None for i in range(8))
        assert len(store) == 20

    def test_bloom_skips_counted(self):
        store = LSMStore(memtable_limit=8)
        for i in range(32):
            store.put(f"k{i:03d}".encode(), b"v")
        store.stats.bloom_skips = 0
        for i in range(50):
            store.get(f"absent{i}".encode())
        assert store.stats.bloom_skips > 0

    def test_write_path_does_not_pollute_read_stats(self):
        """Regression: put/delete probed runs through the counted lookup,
        inflating runs_probed/bloom_skips on every write — read
        amplification counters must reflect reads only."""
        store = LSMStore(memtable_limit=8)
        for i in range(64):
            store.put(f"k{i:03d}".encode(), b"v")  # many flushed runs
        store.stats.runs_probed = 0
        store.stats.bloom_skips = 0
        for i in range(64):
            store.put(f"k{i:03d}".encode(), b"v2")  # overwrites probe runs
        store.delete(b"k000")
        assert store.stats.runs_probed == 0
        assert store.stats.bloom_skips == 0
        # point reads still count
        store.get(b"k001")
        assert store.stats.runs_probed > 0

    def test_merged_snapshot_reused_across_next_key_calls(self):
        """Regression: next_key/size_bytes rebuilt the full sorted key
        list per call (O(n²) scan driving); the merged view is now built
        once per write epoch and reused."""
        store = LSMStore(memtable_limit=4)
        for key in (b"b", b"a", b"c", b"d"):
            store.put(key, b"v")
        store.next_key(None)
        snapshot = store._merged
        assert snapshot is not None
        store.next_key(b"a")
        store.size_bytes()
        list(store.scan())
        assert store._merged is snapshot  # reused, not rebuilt
        store.put(b"e", b"v")
        assert store._merged is None  # writes invalidate the view
        assert store.next_key(b"d") == b"e"

    def test_scan_does_not_probe_runs(self):
        """The sequential path reads the merged view, not per-key probes."""
        store = LSMStore(memtable_limit=4)
        for i in range(16):
            store.put(f"k{i:02d}".encode(), b"v")
        store.stats.runs_probed = 0
        assert len(list(store.scan())) == 16
        assert store.stats.runs_probed == 0


class TestEngineParity:
    """LSMStore behaves exactly like MemStore under any op sequence."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]),
                st.integers(0, 15),
                st.integers(0, 5),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_random_ops_match_memstore(self, ops):
        mem = MemStore()
        lsm = LSMStore(memtable_limit=7, max_runs=2)
        for op, key_index, value_index in ops:
            key = f"key{key_index}".encode()
            if op == "put":
                value = f"value{value_index}".encode()
                mem.put(key, value)
                lsm.put(key, value)
            elif op == "delete":
                assert mem.delete(key) == lsm.delete(key)
            else:
                assert mem.get(key) == lsm.get(key)
        assert lsm.keys() == mem.keys()
        assert len(lsm) == len(mem)
        assert list(lsm.scan()) == list(mem.scan())


class TestLSMBackedCluster:
    def test_end_to_end_zidian_on_lsm(self, paper_db, paper_baav_schema,
                                      q1_sql):
        """The whole stack runs unchanged on the LSM engine."""
        from repro.baav import BaaVStore
        from repro.core import Zidian, substitute_table
        from repro.kba import ExecContext, execute
        from repro.kv import KVCluster
        from repro.relational.compare import rows_bag_equal
        from repro.sql import execute as ra_execute, plan_sql
        from repro.sql.executor import Table, run as ra_run

        cluster = KVCluster(3, engine="lsm")
        store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
        zidian = Zidian(paper_db.schema, paper_baav_schema, store)
        plan, decision = zidian.plan(q1_sql)
        assert decision.is_scan_free
        blockset = execute(plan.root, ExecContext(store))
        table = Table(blockset.attrs, list(blockset.expand()))
        final = substitute_table(plan.ra_plan, plan.replace_node, table)
        got = ra_run(final, paper_db)
        ref_plan, _ = plan_sql(q1_sql, paper_db.schema)
        want = ra_execute(ref_plan, paper_db)
        assert rows_bag_equal(got.rows, want.rows)

    def test_write_amplification_visible(self):
        """Compactions rewrite entries — the LSM trade-off the backend
        profiles price into their write costs."""
        store = LSMStore(memtable_limit=16, max_runs=2)
        for i in range(200):
            store.put(f"k{i:04d}".encode(), b"v")
        assert store.stats.entries_rewritten > 200


class TestClearResetsStats:
    """PR 8 satellite regression: ``clear()`` returns the engine to the
    freshly-constructed state, amplification counters included — a
    cleared store has flushed and compacted nothing, so stale counters
    would stop reconciling with the empty engine."""

    def test_clear_resets_lsm_stats(self):
        store = LSMStore(memtable_limit=4, max_runs=2)
        for i in range(40):
            store.put(f"k{i:03d}".encode(), b"v")
        for i in range(20):
            store.get(f"absent{i}".encode())
        stats = store.stats
        assert stats.flushes > 0 and stats.runs_probed + stats.bloom_skips > 0
        store.clear()
        fresh = LSMStore(memtable_limit=4, max_runs=2)
        assert store.stats == fresh.stats
        assert store.num_runs == 0
        assert store.memtable_size == 0

    def test_stats_accumulate_cleanly_after_clear(self):
        store = LSMStore(memtable_limit=4)
        for i in range(12):
            store.put(f"k{i:02d}".encode(), b"v")
        store.clear()
        for i in range(8):
            store.put(f"p{i:02d}".encode(), b"v")
        assert store.stats.flushes == 2  # 8 puts / limit 4, from zero


class TestDropPrefixBatched:
    """PR 8 satellite regression: ``drop_prefix`` routes through ONE
    ``multi_delete`` batch instead of a delete-per-key loop."""

    def test_drop_prefix_crossing_flush_threshold(self):
        store = LSMStore(memtable_limit=4, max_runs=2)
        for i in range(30):
            store.put(f"ns:{i:03d}".encode(), b"v")
        for i in range(10):
            store.put(f"other:{i:03d}".encode(), b"v")
        # the doomed batch (30 tombstones) is 7x the memtable limit, so
        # the batch itself flushes and compacts mid-delete
        dropped = store.drop_prefix(b"ns:")
        assert len(dropped) == 30
        assert [k for k, _ in store.scan(b"ns:")] == []
        assert len(store) == 10
        for i in range(10):
            assert store.get(f"other:{i:03d}".encode()) == b"v"

    def test_drop_prefix_logs_one_wal_record(self, tmp_path):
        from repro.kv.checkpoint import NodeDurability

        dur = NodeDurability(str(tmp_path / "n0"))
        store = LSMStore(memtable_limit=4)
        dur.open(store)
        store.multi_put([(f"ns:{i:02d}".encode(), b"v") for i in range(20)])
        before = dur.wal_stats()["records"]
        store.drop_prefix(b"ns:")
        assert dur.wal_stats()["records"] == before + 1
        # and that one record replays to the same post-drop state
        dur.abandon()
        replayed = LSMStore(memtable_limit=4)
        NodeDurability(str(tmp_path / "n0")).open(replayed)
        assert list(replayed.scan()) == list(store.scan())
