"""Regression tests for snapshot-consistent statistics (PR 5).

Before the thread-safety pass, counters were plain ``+=`` fields read
live: a stats read racing a write could observe torn state — cache
``hits`` above ``lookups``, node ``hits`` above ``gets`` — and
unsynchronized increments could simply be lost. Stats are now
thread-sharded and snapshotted under the layer locks; these tests pin
the invariants, single-threaded and under fire.
"""

from __future__ import annotations

import threading

import pytest

from repro.kv.cache import BlockCache
from repro.kv.cluster import KVCluster


class TestSnapshotSemantics:
    def test_cluster_get_stats_is_a_copy(self):
        cluster = KVCluster(num_nodes=2)
        cluster.put("ns", b"k", b"v")
        cluster.get("ns", b"k")
        stats = cluster.get_stats()
        before = stats.totals.gets
        stats.totals.gets += 100  # mutating the snapshot changes nothing
        assert cluster.get_stats().totals.gets == before
        assert stats.num_nodes == 2
        assert stats.num_live_nodes == 2

    def test_cluster_get_stats_totals_match_per_node(self):
        cluster = KVCluster(num_nodes=3, replication_factor=2)
        for i in range(30):
            cluster.put("ns", f"k{i}".encode(), b"v")
        for i in range(30):
            cluster.get("ns", f"k{i}".encode())
        stats = cluster.get_stats()
        assert stats.totals.gets == sum(
            c.gets for c in stats.per_node.values()
        )
        assert stats.totals.hits <= stats.totals.gets
        assert stats.replication_factor == 2

    def test_cache_stats_is_a_snapshot(self):
        cache = BlockCache(capacity_bytes=4096)
        cache.put("ns", b"k", b"payload")
        cache.get("ns", b"k")
        cache.get("ns", b"missing")
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.lookups == 2
        stats.hits += 50  # a copy: the cache is unaffected
        assert cache.stats.hits == 1

    def test_cluster_stats_include_registered_cache(self):
        cluster = KVCluster(num_nodes=2)
        cache = BlockCache(capacity_bytes=4096)
        cluster.register_cache(cache)
        cache.put("ns", b"k", b"v")
        cache.get("ns", b"k")
        snapshot = cluster.get_stats()
        assert snapshot.cache is not None
        assert snapshot.cache.hits == 1

    def test_thread_counters_are_per_thread(self):
        cluster = KVCluster(num_nodes=2)
        cluster.put("ns", b"k", b"v")
        done = threading.Event()

        def other() -> None:
            cluster.get("ns", b"k")
            done.set()

        thread = threading.Thread(target=other, daemon=True)
        thread.start()
        assert done.wait(timeout=5.0)
        thread.join()
        # this thread never issued the get: its shard shows none,
        # while the cluster aggregate does
        assert cluster.thread_counters().gets == 0
        assert cluster.total_counters().gets == 1

    def test_dead_thread_counts_survive_ident_reuse(self):
        """CPython recycles thread idents: a fresh thread that inherits
        a dead writer's ident must not see (or reset away) its counts.
        Shards are therefore keyed by thread-local storage, not ident."""
        cluster = KVCluster(num_nodes=2)

        def writer() -> None:
            cluster.put("ns", b"k", b"v")

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join()
        # spawn successors until one recycles the dead writer's ident
        # (usually immediate); each resets "its own" counters the way
        # a query execution does
        for _ in range(8):
            successor = threading.Thread(
                target=cluster.reset_counters, kwargs={"thread_only": True}
            )
            successor.start()
            successor.join()
        assert cluster.total_counters().puts == 1

    def test_thread_only_reset_spares_other_threads(self):
        cluster = KVCluster(num_nodes=2)
        cluster.put("ns", b"k", b"v")
        done = threading.Event()

        def other() -> None:
            cluster.get("ns", b"k")
            done.set()

        thread = threading.Thread(target=other, daemon=True)
        thread.start()
        assert done.wait(timeout=5.0)
        thread.join()
        cluster.get("ns", b"k")
        cluster.reset_counters(thread_only=True)
        total = cluster.total_counters()
        assert total.gets == 1  # the other thread's count survives
        cluster.reset_counters()
        assert cluster.total_counters().gets == 0


class TestStaleFillProtection:
    """A write racing a read-through fetch must win: the fill of the
    pre-write payload is rejected, so the cache can never serve a
    stale value forever (the invalidation-epoch guard)."""

    def test_fill_rejected_after_concurrent_invalidation(self):
        cache = BlockCache(capacity_bytes=4096)
        epoch = cache.read_epoch("ns", b"k")
        # ... reader fetches the OLD payload from the cluster here ...
        cache.invalidate("ns", b"k")  # the concurrent write lands
        assert not cache.put_if_fresh("ns", b"k", b"OLD", epoch)
        assert cache.peek("ns", b"k") is None

    def test_fill_rejected_after_namespace_invalidation(self):
        cache = BlockCache(capacity_bytes=4096)
        epoch = cache.read_epoch("ns", b"k")
        cache.invalidate_namespace("ns")  # drop_namespace raced
        assert not cache.put_if_fresh("ns", b"k", b"OLD", epoch)
        assert cache.peek("ns", b"k") is None

    def test_fresh_fill_is_admitted(self):
        cache = BlockCache(capacity_bytes=4096)
        cache.invalidate("ns", b"k")  # history before the read
        epoch = cache.read_epoch("ns", b"k")
        assert cache.put_if_fresh("ns", b"k", b"NEW", epoch)
        assert cache.peek("ns", b"k") == b"NEW"

    def test_read_through_discards_stale_fetch(self):
        from repro.kv.cache import read_through

        cache = BlockCache(capacity_bytes=4096)

        def fetch(key_bytes):
            # the write lands while the fetch is in flight
            cache.invalidate("ns", key_bytes)
            return b"OLD"

        data, reached = read_through(cache, "ns", b"k", fetch)
        assert data == b"OLD" and reached  # caller still gets the read
        assert cache.peek("ns", b"k") is None  # but it is not cached

    def test_floor_epoch_prune_stays_conservative(self):
        cache = BlockCache(capacity_bytes=1 << 20)
        cache.MAX_INVALIDATION_RECORDS = 8
        epoch = cache.read_epoch("ns", b"hot")
        for i in range(20):  # overflow the record table -> floor prune
            cache.invalidate("ns", f"k{i}".encode())
        # records were pruned, but the old observation is still refused
        assert not cache.put_if_fresh("ns", b"hot", b"OLD", epoch)
        fresh = cache.read_epoch("ns", b"hot")
        assert cache.put_if_fresh("ns", b"hot", b"NEW", fresh)


class TestShardRetirement:
    def test_dead_thread_shards_fold_without_losing_history(self):
        """Thread churn must not grow the registry unboundedly, and the
        folded history must stay in the aggregates."""
        cluster = KVCluster(num_nodes=1)
        cluster.put("ns", b"k", b"v")

        def reader() -> None:
            cluster.get("ns", b"k")

        for _ in range(20):
            thread = threading.Thread(target=reader)
            thread.start()
            thread.join()
        node = cluster.nodes[0]
        assert cluster.total_counters().gets == 20
        # registry is O(live threads): the 20 dead readers folded into
        # one retired accumulator
        shard_set = node._shards
        assert len(shard_set._entries) <= 2  # main thread (+ slack)
        cluster.reset_counters()  # the retired history resets too
        assert cluster.total_counters().gets == 0


@pytest.mark.stress
class TestSnapshotUnderFire:
    """The actual race: stats sampled while writer threads hammer."""

    def test_cache_invariants_hold_mid_traffic(self):
        cache = BlockCache(capacity_bytes=1 << 16)
        stop = threading.Event()

        def hammer(worker: int) -> None:
            keys = [f"k{worker}-{i}".encode() for i in range(64)]
            while not stop.is_set():
                for key in keys:
                    cache.put("ns", key, b"x" * 32)
                    cache.get("ns", key)
                    cache.get("ns", key + b"?")  # guaranteed miss
                    cache.invalidate("ns", key)

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        violations = []
        try:
            for _ in range(300):
                stats = cache.stats
                if stats.hits + stats.misses != stats.lookups:
                    violations.append(("lookups", stats))
                if not 0.0 <= stats.hit_rate <= 1.0:
                    violations.append(("rate", stats))
                if stats.bytes_cached < 0:
                    violations.append(("bytes", stats))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert violations == []
        # quiesced: every increment must have survived (no lost updates)
        final = cache.stats
        assert final.hits + final.misses == final.lookups

    def test_cluster_invariants_hold_mid_traffic(self):
        cluster = KVCluster(num_nodes=3, replication_factor=2)
        for i in range(100):
            cluster.put("ns", f"k{i}".encode(), b"v" * 8)
        stop = threading.Event()

        def hammer(worker: int) -> None:
            keys = [f"k{i}".encode() for i in range(worker, 100, 3)]
            while not stop.is_set():
                for key in keys:
                    cluster.get("ns", key)
                    cluster.put("ns", key, b"w" * 8)
                cluster.multi_get("ns", keys[:16])

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        violations = []
        try:
            for _ in range(200):
                snapshot = cluster.get_stats()
                totals = snapshot.totals
                if totals.hits > totals.gets:
                    violations.append(("hits>gets", totals))
                if totals.values_read > totals.bytes_out:
                    # every counted value carries at least one byte here
                    violations.append(("values>bytes", totals))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert violations == []

    def test_no_lost_counter_updates(self):
        """N threads issue exactly K gets each; the aggregate must be
        exactly N*K (plain ``+=`` on shared counters loses updates)."""
        cluster = KVCluster(num_nodes=2)
        cluster.put("ns", b"hot", b"v")
        cluster.reset_counters()
        n_threads, per_thread = 4, 500

        def reader() -> None:
            for _ in range(per_thread):
                cluster.get("ns", b"hot")

        threads = [
            threading.Thread(target=reader, daemon=True)
            for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        total = cluster.total_counters()
        assert total.gets == n_threads * per_thread
        assert total.hits == n_threads * per_thread
