"""Wire-protocol conformance: codec round-trips and adversarial frames.

Two layers of guarantees:

* **codec** — ``decode_request(encode_request(...))`` is the identity
  over arbitrary batch ops (random byte/unicode keys, empty batches),
  and every response body codec round-trips likewise;
* **server** — a live node process answers malformed input (truncated
  length prefix, oversized declared length, garbage opcode, trailing
  bytes) with clean protocol-error frames and KEEPS SERVING: no hang,
  no crash, no poisoned state for the next request.
"""

from __future__ import annotations

import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodePeerError, WireProtocolError
from repro.kv import wire
from repro.kv.remote import NodeClient, NodeProcess


# --------------------------------------------------------------------------
# codec round-trip properties
# --------------------------------------------------------------------------

# keys/values mix raw bytes with UTF-8-encoded unicode text, including
# empty strings — the codec is length-prefixed, never delimiter-based
_blobs = st.one_of(
    st.binary(max_size=64),
    st.text(max_size=32).map(lambda s: s.encode("utf-8")),
)


@given(st.lists(_blobs, max_size=20))
@settings(max_examples=60, deadline=None)
def test_multi_get_roundtrip(keys):
    op, args = wire.decode_request(
        wire.encode_request(wire.OP_MULTI_GET, keys)
    )
    assert op == wire.OP_MULTI_GET
    assert args == (keys,)


@given(st.lists(st.tuples(_blobs, _blobs), max_size=20))
@settings(max_examples=60, deadline=None)
def test_multi_put_roundtrip(items):
    op, args = wire.decode_request(
        wire.encode_request(wire.OP_MULTI_PUT, items)
    )
    assert op == wire.OP_MULTI_PUT
    assert args == (items,)


@given(st.lists(_blobs, max_size=20))
@settings(max_examples=40, deadline=None)
def test_multi_delete_roundtrip(keys):
    op, args = wire.decode_request(
        wire.encode_request(wire.OP_MULTI_DELETE, keys)
    )
    assert (op, args) == (wire.OP_MULTI_DELETE, (keys,))


@given(_blobs)
@settings(max_examples=40, deadline=None)
def test_single_key_ops_roundtrip(key):
    for op in (
        wire.OP_DELETE,
        wire.OP_SCAN,
        wire.OP_KEYS,
        wire.OP_HAS_PREFIX,
        wire.OP_DROP_PREFIX,
    ):
        decoded_op, args = wire.decode_request(wire.encode_request(op, key))
        assert (decoded_op, args) == (op, (key,))


@given(st.one_of(st.none(), _blobs))
@settings(max_examples=40, deadline=None)
def test_next_key_roundtrip(after):
    op, args = wire.decode_request(
        wire.encode_request(wire.OP_NEXT_KEY, after)
    )
    assert (op, args) == (wire.OP_NEXT_KEY, (after,))


def test_nullary_ops_roundtrip():
    for op in (
        wire.OP_PING,
        wire.OP_SIZE_BYTES,
        wire.OP_COUNT,
        wire.OP_CLEAR,
        wire.OP_GET_STATS,
        wire.OP_SHUTDOWN,
    ):
        assert wire.decode_request(wire.encode_request(op)) == (op, ())


@given(st.lists(st.one_of(st.none(), _blobs), max_size=20))
@settings(max_examples=40, deadline=None)
def test_values_body_roundtrip(values):
    assert wire.decode_values(wire.encode_values(values)) == values


@given(st.lists(st.tuples(_blobs, _blobs), max_size=20))
@settings(max_examples=40, deadline=None)
def test_pairs_body_roundtrip(pairs):
    assert wire.decode_pairs(wire.encode_pairs(pairs)) == pairs


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=16),
        st.integers(min_value=0, max_value=2**63 - 1),
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_stats_body_roundtrip(stats):
    assert wire.decode_stats(wire.encode_stats(stats)) == stats


@given(st.binary(max_size=2048))
@settings(max_examples=120, deadline=None)
def test_decoder_total_on_garbage(payload):
    """The request decoder never hangs, loops, or raises anything but
    WireProtocolError on arbitrary payloads — and when it does accept
    one, re-encoding its parse reproduces the payload exactly."""
    try:
        op, args = wire.decode_request(payload)
    except WireProtocolError:
        return
    assert wire.encode_request(op, *args) == payload


# --------------------------------------------------------------------------
# strictness of the codec
# --------------------------------------------------------------------------


def test_truncated_body_rejected():
    good = wire.encode_request(wire.OP_MULTI_GET, [b"abcdef"])
    for cut in range(1, len(good)):
        with pytest.raises(WireProtocolError):
            wire.decode_request(good[:cut])


def test_trailing_garbage_rejected():
    good = wire.encode_request(wire.OP_DELETE, b"k")
    with pytest.raises(WireProtocolError):
        wire.decode_request(good + b"\x00")


def test_unknown_opcode_rejected():
    with pytest.raises(WireProtocolError):
        wire.decode_request(b"\xfe")
    with pytest.raises(WireProtocolError):
        wire.decode_request(b"")


def test_oversized_frame_refused_on_encode():
    with pytest.raises(WireProtocolError):
        wire.encode_frame(b"\x00" * (wire.MAX_FRAME_BYTES + 1))


def test_declared_length_is_bounds_checked():
    # a body whose inner u32 length points past the end of the frame
    evil = bytes((wire.OP_DELETE,)) + struct.pack(">I", 2**31) + b"hi"
    with pytest.raises(WireProtocolError):
        wire.decode_request(evil)


# --------------------------------------------------------------------------
# adversarial frames against a LIVE server process
# --------------------------------------------------------------------------


@pytest.fixture()
def node_proc():
    proc = NodeProcess(0, engine="mem")
    yield proc
    proc.kill()


def _raw_conn(proc: NodeProcess) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", proc.port), timeout=5)
    sock.settimeout(5)
    return sock


def _server_answers(proc: NodeProcess) -> bool:
    client = NodeClient(proc.node_id, proc.port)
    try:
        return client.ping()
    finally:
        client.close()


def test_garbage_opcode_gets_protocol_error_and_connection_survives(
    node_proc,
):
    sock = _raw_conn(node_proc)
    try:
        wire.send_frame(sock, b"\xfe\x01\x02")
        status, body = wire.decode_response(wire.recv_frame(sock))
        assert status == wire.STATUS_PROTOCOL
        assert "opcode" in wire.decode_error_message(body)
        # SAME connection keeps working afterwards
        wire.send_frame(sock, wire.encode_request(wire.OP_PING))
        status, _ = wire.decode_response(wire.recv_frame(sock))
        assert status == wire.STATUS_OK
    finally:
        sock.close()
    assert _server_answers(node_proc)


def test_truncated_length_prefix_never_hangs_server(node_proc):
    sock = _raw_conn(node_proc)
    try:
        sock.sendall(b"\x00\x00")  # half a length prefix, then EOF
    finally:
        sock.close()
    assert _server_answers(node_proc)


def test_truncated_payload_never_hangs_server(node_proc):
    sock = _raw_conn(node_proc)
    try:
        # declare 100 bytes, send 3, hang up
        sock.sendall(struct.pack(">I", 100) + b"abc")
    finally:
        sock.close()
    assert _server_answers(node_proc)


def test_oversized_declared_length_rejected_cleanly(node_proc):
    sock = _raw_conn(node_proc)
    try:
        sock.sendall(struct.pack(">I", wire.MAX_FRAME_BYTES + 1))
        # the server must answer with a protocol error (it cannot trust
        # the rest of the stream, so the connection then closes) — and
        # must NOT try to allocate or read 64MiB+ first
        payload = wire.recv_frame(sock)
        assert payload is not None
        status, body = wire.decode_response(payload)
        assert status == wire.STATUS_PROTOCOL
        assert "limit" in wire.decode_error_message(body)
    finally:
        sock.close()
    assert _server_answers(node_proc)


def test_malformed_body_keeps_connection_and_state(node_proc):
    client = NodeClient(node_proc.node_id, node_proc.port)
    try:
        client.request(wire.OP_MULTI_PUT, [(b"k", b"v")])
        sock = _raw_conn(node_proc)
        try:
            # valid frame, valid opcode, truncated body
            wire.send_frame(sock, bytes((wire.OP_DELETE,)) + b"\xff")
            status, _ = wire.decode_response(wire.recv_frame(sock))
            assert status == wire.STATUS_PROTOCOL
        finally:
            sock.close()
        # the store was untouched by the malformed delete
        values = wire.decode_values(
            client.request(wire.OP_MULTI_GET, [b"k"])
        )
        assert values == [b"v"]
    finally:
        client.close()


def test_shutdown_is_acknowledged_then_process_exits(node_proc):
    client = NodeClient(node_proc.node_id, node_proc.port)
    try:
        client.request(wire.OP_SHUTDOWN)
    finally:
        client.close()
    node_proc.process.join(timeout=10)
    assert not node_proc.alive
    # further requests surface as peer errors, not hangs
    late = NodeClient(node_proc.node_id, node_proc.port)
    with pytest.raises(NodePeerError):
        late.ping()
    late.close()
