"""Cross-backend conformance matrix: one contract, every engine.

Every storage engine a :class:`~repro.kv.node.StorageNode` can mount
must behave identically through the node API — get / multi_get / put /
multi_put / delete / scan / counters — and through the raw store
contract (sorted iteration, ``next()`` cursors, prefix scans). This
module runs the whole contract parametrized over the engines, replacing
the ad-hoc per-backend copies that used to live in ``test_memstore.py``
and ``test_lsm.py`` (engine-specific behavior — flushes, compaction,
bloom filters, merged snapshots — stays in ``test_lsm.py``).

Adding an engine = adding one ``ENGINES`` entry; the matrix does the
rest.

The matrix also runs every case against **remote** nodes —
``mem@socket`` / ``lsm@socket`` spawn a real node server process and
speak the wire protocol of :mod:`repro.kv.wire` — so the socket
transport is held to the exact same contract, counters included
(:class:`~repro.kv.remote.RemoteNode` inherits the counting bodies, and
these tests prove the composition stays faithful).
"""

import pytest

from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore
from repro.kv.node import StorageNode
from repro.kv.remote import RemoteNode, RemoteStore

#: engine name -> raw-store factory exercising that engine's write paths
#: (the LSM limits force flushes and compactions mid-contract)
ENGINES = {
    "mem": lambda: MemStore(),
    "lsm": lambda: LSMStore(memtable_limit=4, max_runs=2),
}

#: picklable engine configs for the remote variants (the node process
#: builds its store from these; same limits as the local factories)
REMOTE_ENGINES = {
    "mem@socket": ("mem", None),
    "lsm@socket": ("lsm", {"memtable_limit": 4, "max_runs": 2}),
}

#: durable variants (PR 8): the same engines with a WAL attached, so
#: every contract case also proves the logging hook changes nothing
#: observable (and the batch-suspension bookkeeping never leaks)
DURABLE_ENGINES = {
    "mem+wal": "mem",
    "lsm+wal": "lsm",
}

ALL_ENGINES = (
    sorted(ENGINES) + sorted(REMOTE_ENGINES) + sorted(DURABLE_ENGINES)
)


def _make_node(engine, tmp_path=None):
    if engine in REMOTE_ENGINES:
        name, store_args = REMOTE_ENGINES[engine]
        return RemoteNode(0, engine=name, store_args=store_args)
    if engine in DURABLE_ENGINES:
        return StorageNode(
            0,
            engine=DURABLE_ENGINES[engine],
            data_dir=str(tmp_path / "wal-node"),
        )
    return StorageNode(0, engine=engine)


@pytest.fixture(params=ALL_ENGINES)
def engine(request):
    return request.param


@pytest.fixture()
def store(engine, tmp_path):
    if engine in REMOTE_ENGINES or engine in DURABLE_ENGINES:
        node = _make_node(engine, tmp_path)
        yield node.store
        node.close()
        return
    yield ENGINES[engine]()


@pytest.fixture()
def node(engine, tmp_path):
    node = _make_node(engine, tmp_path)
    yield node
    node.close()


class TestStoreContract:
    """The raw byte-store contract, identical across engines."""

    def test_put_get(self, store):
        store.put(b"k1", b"v1")
        assert store.get(b"k1") == b"v1"
        assert store.get(b"nope") is None

    def test_overwrite(self, store):
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert store.get(b"k") is None
        assert len(store) == 0

    def test_contains(self, store):
        store.put(b"k", b"v")
        assert b"k" in store and b"x" not in store

    def test_keys_sorted(self, store):
        for key in (b"c", b"a", b"e", b"b", b"d"):
            store.put(key, key.upper())
        assert store.keys() == [b"a", b"b", b"c", b"d", b"e"]
        assert [v for _, v in store.scan()] == [b"A", b"B", b"C", b"D", b"E"]

    def test_multi_get_positional(self, store):
        store.multi_put([(b"a", b"1"), (b"b", b"2")])
        assert store.multi_get([b"b", b"x", b"a", b"b"]) == [
            b"2", None, b"1", b"2",
        ]

    def test_multi_put_later_duplicate_wins(self, store):
        store.multi_put([(b"k", b"old"), (b"k", b"new")])
        assert store.get(b"k") == b"new"

    def test_next_key_iteration(self, store):
        for key in (b"b", b"a", b"c", b"d"):
            store.put(key, b"v")
        seen = []
        cursor = store.next_key(None)
        while cursor is not None:
            seen.append(cursor)
            cursor = store.next_key(cursor)
        assert seen == [b"a", b"b", b"c", b"d"]

    def test_next_key_empty(self, store):
        assert store.next_key() is None

    def test_next_key_after_last(self, store):
        store.put(b"a", b"v")
        assert store.next_key(b"a") is None

    def test_next_key_sees_new_writes(self, store):
        store.put(b"a", b"v")
        assert store.next_key(None) == b"a"
        store.put(b"b", b"v")
        assert store.next_key(b"a") == b"b"

    def test_scan_prefix(self, store):
        store.put(b"ns1:a", b"1")
        store.put(b"ns1:b", b"2")
        store.put(b"ns2:a", b"3")
        assert [k for k, _ in store.scan(b"ns1:")] == [b"ns1:a", b"ns1:b"]

    def test_delete_then_rewrite(self, store):
        for i in range(12):
            store.put(f"k{i:02d}".encode(), b"v1")
        for i in range(0, 12, 2):
            store.delete(f"k{i:02d}".encode())
        for i in range(0, 12, 2):
            store.put(f"k{i:02d}".encode(), b"v2")
        assert len(store) == 12
        for i in range(12):
            want = b"v2" if i % 2 == 0 else b"v1"
            assert store.get(f"k{i:02d}".encode()) == want

    def test_size_bytes(self, store):
        store.put(b"ab", b"xyz")
        assert store.size_bytes() == 5

    def test_clear(self, store):
        for i in range(10):
            store.put(f"k{i}".encode(), b"v")
        store.clear()
        assert len(store) == 0
        assert store.keys() == []


class TestNodeContract:
    """The StorageNode API + counter semantics, identical across engines."""

    def test_get_counts_hit_and_miss(self, node):
        node.put(b"k", b"value", n_values=3)
        assert node.get(b"k", n_values=3) == b"value"
        assert node.get(b"missing") is None
        counters = node.counters
        assert counters.gets == 2
        assert counters.hits == 1
        assert counters.values_read == 3
        assert counters.bytes_out == 5
        assert counters.round_trips == 3  # put + 2 gets

    def test_put_counts(self, node):
        node.put(b"k", b"value", n_values=2)
        counters = node.counters
        assert counters.puts == 1
        assert counters.values_written == 2
        assert counters.bytes_in == 5
        assert counters.round_trips == 1

    def test_multi_get_one_round_trip(self, node):
        node.multi_put([(f"k{i}".encode(), b"v") for i in range(8)])
        node.counters.reset()
        values = node.multi_get(
            [b"k1", b"absent", b"k3"], n_values_each=2
        )
        assert values == [b"v", None, b"v"]
        counters = node.counters
        assert counters.gets == 3
        assert counters.hits == 2
        assert counters.values_read == 4
        assert counters.round_trips == 1

    def test_multi_put_one_round_trip(self, node):
        node.multi_put(
            [(b"a", b"xx"), (b"b", b"yy")], n_values_each=3
        )
        counters = node.counters
        assert counters.puts == 2
        assert counters.values_written == 6
        assert counters.bytes_in == 4
        assert counters.round_trips == 1

    def test_empty_batches_cost_nothing(self, node):
        assert node.multi_get([]) == []
        node.multi_put([])
        assert node.counters.round_trips == 0

    def test_delete_counted_even_on_miss(self, node):
        node.put(b"k", b"v")
        node.counters.reset()
        assert node.delete(b"k")
        assert not node.delete(b"k")
        assert node.counters.deletes == 2
        assert node.counters.round_trips == 2

    def test_peek_and_scan_uncounted(self, node):
        node.put(b"k", b"v")
        node.counters.reset()
        assert node.peek(b"k") == b"v"
        assert list(node.scan()) == [(b"k", b"v")]
        counters = node.counters
        assert counters.gets == 0
        assert counters.round_trips == 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            StorageNode(0, engine="papyrus")


class TestRemoteNodeSpecifics:
    """Remote-only contract points (no local analogue)."""

    def test_unknown_engine_rejected_before_spawn(self):
        # validated in the parent, pre-fork: same error, same place
        with pytest.raises(ValueError):
            RemoteNode(0, engine="papyrus")

    def test_store_is_the_wire_facade(self):
        node = RemoteNode(0)
        try:
            assert isinstance(node.store, RemoteStore)
            assert node.process.alive
            assert node.server_stats()["requests"] >= 1
        finally:
            node.close()

    def test_close_is_idempotent_and_reaps(self):
        node = RemoteNode(0)
        pid = node.process.pid
        node.close()
        node.close()
        assert not node.process.alive
        assert pid is not None

    def test_restart_resets_store_but_keeps_counters(self):
        node = RemoteNode(0)
        try:
            node.put(b"k", b"v")
            before = node.counters_total().puts
            node.process.sigkill()
            node.restart()
            assert node.get(b"k") is None  # fresh process, empty store
            assert node.counters_total().puts == before  # client-side
        finally:
            node.close()
