import pytest

from repro.kv import KVCluster, TaaVStore
from repro.kv.taav import TaaVRelation
from repro.relational import AttrType, Relation, RelationSchema


@pytest.fixture()
def rel():
    schema = RelationSchema.of(
        "R", {"k": AttrType.INT, "v": AttrType.STR}, ["k"]
    )
    return Relation(schema, [(1, "a"), (2, "b"), (3, "c")])


class TestTaaVRelation:
    def test_point_get(self, rel):
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        assert taav.get((2,)) == (2, "b")
        assert taav.get((9,)) is None

    def test_point_get_counts_one_get(self, rel):
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        cluster.reset_counters()
        taav.get((1,))
        total = cluster.total_counters()
        assert total.gets == 1
        assert total.values_read == rel.schema.arity

    def test_scan_counts_get_per_tuple(self, rel):
        """The §3 blind scan: as many gets as the size of the table."""
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        cluster.reset_counters()
        fetched = taav.fetch_all()
        assert fetched == rel
        assert cluster.total_counters().gets == len(rel)

    def test_fetch_all_counts_values(self, rel):
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        cluster.reset_counters()
        taav.fetch_all()
        assert cluster.total_counters().values_read == rel.num_values()

    def test_delete_by_key(self, rel):
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        assert taav.delete_by_key((1,))
        assert taav.get((1,)) is None
        assert len(taav) == 2

    def test_no_pk_uses_rowids(self):
        schema = RelationSchema.of("R", {"a": AttrType.INT})
        cluster = KVCluster(2)
        taav = TaaVRelation(schema, cluster)
        taav.load([(7,), (7,), (7,)])  # duplicates survive
        assert len(taav.fetch_all()) == 3

    def test_scan_iterator(self, rel):
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        assert sorted(taav.scan()) == sorted(rel.rows)

    def test_blind_scan_counts_values(self, rel):
        """Regression: the blind-scan iterator never counted values_read,
        so TaaV #data — the paper's headline metric — was undercounted.
        Every scanned pair is ``arity`` logical values."""
        cluster = KVCluster(2)
        taav = TaaVRelation(rel.schema, cluster)
        taav.load(rel.rows)
        cluster.reset_counters()
        list(taav.scan())
        total = cluster.total_counters()
        assert total.values_read == len(rel) * rel.schema.arity
        assert total.gets == len(rel)


class TestTaaVStore:
    def test_from_database(self, paper_db, cluster):
        store = TaaVStore.from_database(paper_db, cluster)
        assert "SUPPLIER" in store
        assert len(store.relation("NATION").fetch_all()) == 3

    def test_relations_isolated(self, paper_db, cluster):
        store = TaaVStore.from_database(paper_db, cluster)
        supplier = store.relation("SUPPLIER").fetch_all()
        assert supplier == paper_db["SUPPLIER"]
