"""Unit tests for the WAL record codec, log lifecycle and checkpoints.

The crash cases exercise the exact byte-level failure modes recovery
must tolerate: a record cut short mid-payload, a bit flip under the
CRC, an undecodable payload behind a valid CRC, and debris after the
last intact record. Cluster-level crash/recovery lives in
``test_durability.py``; this module stays at the file-format layer.
"""

import os
import struct
import zlib

import pytest

from repro.errors import DurabilityError, WireProtocolError
from repro.kv import checkpoint as ckpt
from repro.kv import wal
from repro.kv.memstore import MemStore

_U32 = struct.Struct(">I")


def _frame(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + _U32.pack(zlib.crc32(payload)) + payload


# --------------------------------------------------------------------------
# record codec
# --------------------------------------------------------------------------


CODEC_CASES = [
    (wal.WAL_PUT, (b"key", b"value")),
    (wal.WAL_PUT, (b"", b"")),
    (wal.WAL_MULTI_PUT, ([(b"a", b"1"), (b"b", b"2")],)),
    (wal.WAL_MULTI_PUT, ([],)),
    (wal.WAL_DELETE, (b"key",)),
    (wal.WAL_MULTI_DELETE, ([b"a", b"b", b"c"],)),
    (wal.WAL_DROP_PREFIX, (b"ns:",)),
    (wal.WAL_CLEAR, ()),
]


class TestRecordCodec:
    @pytest.mark.parametrize(
        "op,args", CODEC_CASES,
        ids=[wal.WAL_OP_NAMES[op] + str(i) for i, (op, _) in
             enumerate(CODEC_CASES)],
    )
    def test_roundtrip(self, op, args):
        payload = wal.encode_record(op, *args)
        got_op, got_args = wal.decode_record(payload)
        assert got_op == op
        assert got_args == args

    def test_unknown_opcode_refused_both_ways(self):
        with pytest.raises(WireProtocolError):
            wal.encode_record(0x7F)
        with pytest.raises(WireProtocolError):
            wal.decode_record(bytes([0x7F]))

    def test_empty_payload_refused(self):
        with pytest.raises(WireProtocolError):
            wal.decode_record(b"")

    def test_trailing_garbage_refused(self):
        payload = wal.encode_record(wal.WAL_DELETE, b"k") + b"junk"
        with pytest.raises(WireProtocolError):
            wal.decode_record(payload)

    def test_truncated_payload_refused(self):
        payload = wal.encode_record(wal.WAL_PUT, b"key", b"value")
        with pytest.raises(WireProtocolError):
            wal.decode_record(payload[:-2])

    @pytest.mark.parametrize("op,args", CODEC_CASES)
    def test_apply_record_matches_direct_ops(self, op, args):
        direct, replayed = MemStore(), MemStore()
        for store in (direct, replayed):
            store.multi_put([(b"ns:seed", b"s"), (b"other", b"o")])
        wal.apply_record(direct, op, args)  # direct == the op itself
        wal.apply_record(replayed, *wal.decode_record(
            wal.encode_record(op, *args)))
        assert list(direct.scan()) == list(replayed.scan())

    def test_validate_fsync_policy(self):
        for policy in wal.FSYNC_POLICIES:
            assert wal.validate_fsync_policy(policy) == policy
        with pytest.raises(ValueError):
            wal.validate_fsync_policy("sometimes")


# --------------------------------------------------------------------------
# read_wal: torn-tail tolerance
# --------------------------------------------------------------------------


class TestReadWal:
    def test_missing_file_is_empty_log(self, tmp_path):
        records, valid, torn = wal.read_wal(str(tmp_path / "absent.log"))
        assert (records, valid, torn) == ([], 0, False)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        assert wal.read_wal(str(path)) == ([], 0, False)

    def test_intact_log(self, tmp_path):
        payloads = [
            wal.encode_record(wal.WAL_PUT, b"k", b"v"),
            wal.encode_record(wal.WAL_DELETE, b"k"),
        ]
        path = tmp_path / "wal.log"
        path.write_bytes(b"".join(_frame(p) for p in payloads))
        records, valid, torn = wal.read_wal(str(path))
        assert [op for op, _ in records] == [wal.WAL_PUT, wal.WAL_DELETE]
        assert valid == path.stat().st_size
        assert not torn

    @pytest.mark.parametrize("cut", [1, 4, 7, 9])
    def test_torn_final_record(self, tmp_path, cut):
        good = _frame(wal.encode_record(wal.WAL_PUT, b"k", b"v"))
        tail = _frame(wal.encode_record(wal.WAL_PUT, b"k2", b"v2"))
        path = tmp_path / "wal.log"
        path.write_bytes(good + tail[:cut])
        records, valid, torn = wal.read_wal(str(path))
        assert len(records) == 1
        assert valid == len(good)
        assert torn

    def test_crc_mismatch_stops_replay(self, tmp_path):
        good = _frame(wal.encode_record(wal.WAL_PUT, b"k", b"v"))
        bad = bytearray(_frame(wal.encode_record(wal.WAL_PUT, b"x", b"y")))
        bad[-1] ^= 0xFF  # flip a payload bit under the CRC
        path = tmp_path / "wal.log"
        path.write_bytes(good + bytes(bad))
        records, valid, torn = wal.read_wal(str(path))
        assert len(records) == 1
        assert valid == len(good)
        assert torn

    def test_insane_declared_length_refused(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(_U32.pack(wal.MAX_RECORD_BYTES + 1) + b"\0" * 64)
        records, valid, torn = wal.read_wal(str(path))
        assert (records, valid, torn) == ([], 0, True)

    def test_valid_crc_undecodable_payload_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(_frame(bytes([0x7F, 1, 2, 3])))
        records, valid, torn = wal.read_wal(str(path))
        assert (records, valid, torn) == ([], 0, True)


# --------------------------------------------------------------------------
# WriteAheadLog lifecycle + fsync policies
# --------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_then_read_back(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = wal.WriteAheadLog(path)
        log.append(wal.WAL_PUT, b"k", b"v")
        log.append(wal.WAL_MULTI_DELETE, [b"a", b"b"])
        log.close()
        records, _, torn = wal.read_wal(path)
        assert not torn
        assert records == [
            (wal.WAL_PUT, (b"k", b"v")),
            (wal.WAL_MULTI_DELETE, ([b"a", b"b"],)),
        ]

    def test_append_visible_before_close(self, tmp_path):
        """The process-crash guarantee: every append is flushed, so the
        file (= the page cache a SIGKILL preserves) always holds it."""
        path = str(tmp_path / "wal.log")
        log = wal.WriteAheadLog(path, fsync_policy="never")
        log.append(wal.WAL_PUT, b"k", b"v")
        records, _, torn = wal.read_wal(path)
        assert len(records) == 1 and not torn
        log.abandon()

    def test_fsync_always(self, tmp_path):
        log = wal.WriteAheadLog(
            str(tmp_path / "w.log"), fsync_policy="always")
        for i in range(5):
            log.append(wal.WAL_DELETE, b"k%d" % i)
        assert log.stats["fsyncs"] == 5
        log.close()
        assert log.stats["fsyncs"] == 5  # already synced; close adds none

    def test_fsync_group(self, tmp_path):
        log = wal.WriteAheadLog(
            str(tmp_path / "w.log"), fsync_policy="group", group_size=4)
        for i in range(10):
            log.append(wal.WAL_DELETE, b"k%d" % i)
        assert log.stats["fsyncs"] == 2  # at records 4 and 8
        log.close()
        assert log.stats["fsyncs"] == 3  # close drains the window of 2

    def test_fsync_never(self, tmp_path):
        log = wal.WriteAheadLog(
            str(tmp_path / "w.log"), fsync_policy="never")
        for i in range(10):
            log.append(wal.WAL_DELETE, b"k%d" % i)
        log.sync()
        log.close()
        assert log.stats["fsyncs"] == 0

    def test_sync_idempotent_when_window_empty(self, tmp_path):
        log = wal.WriteAheadLog(
            str(tmp_path / "w.log"), fsync_policy="group", group_size=4)
        log.append(wal.WAL_CLEAR)
        log.sync()
        log.sync()
        assert log.stats["fsyncs"] == 1
        log.close()

    def test_roll_switches_files(self, tmp_path):
        old, new = str(tmp_path / "a.log"), str(tmp_path / "b.log")
        log = wal.WriteAheadLog(old)
        log.append(wal.WAL_PUT, b"k", b"v1")
        assert log.roll(new) == old
        log.append(wal.WAL_PUT, b"k", b"v2")
        log.close()
        assert log.path == new
        assert log.stats["rolls"] == 1
        assert len(wal.read_wal(old)[0]) == 1
        assert len(wal.read_wal(new)[0]) == 1

    def test_close_idempotent_appends_refused_after(self, tmp_path):
        log = wal.WriteAheadLog(str(tmp_path / "w.log"))
        log.close()
        log.close()
        assert log.closed
        with pytest.raises(ValueError):
            log.append(wal.WAL_CLEAR)

    def test_abandon_keeps_flushed_records(self, tmp_path):
        path = str(tmp_path / "w.log")
        log = wal.WriteAheadLog(path, fsync_policy="group", group_size=100)
        log.append(wal.WAL_PUT, b"k", b"v")
        log.abandon()
        log.abandon()
        assert log.closed
        assert len(wal.read_wal(path)[0]) == 1

    def test_bad_args_refused(self, tmp_path):
        with pytest.raises(ValueError):
            wal.WriteAheadLog(str(tmp_path / "w.log"), fsync_policy="nope")
        with pytest.raises(ValueError):
            wal.WriteAheadLog(str(tmp_path / "w.log"), group_size=0)


# --------------------------------------------------------------------------
# checkpoint file format
# --------------------------------------------------------------------------


class TestCheckpointFormat:
    PAIRS = [(b"a", b"1"), (b"b", b""), (b"c" * 40, b"3" * 200)]

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "checkpoint-00000001")
        size = ckpt.write_checkpoint(path, self.PAIRS)
        assert size == os.path.getsize(path)
        assert ckpt.read_checkpoint(path) == self.PAIRS

    def test_empty_snapshot(self, tmp_path):
        path = str(tmp_path / "checkpoint-00000001")
        ckpt.write_checkpoint(path, [])
        assert ckpt.read_checkpoint(path) == []

    def test_no_tmp_debris_after_commit(self, tmp_path):
        ckpt.write_checkpoint(str(tmp_path / "checkpoint-00000001"),
                              self.PAIRS)
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c"
        path.write_bytes(b"NOPE" + b"\0" * 16)
        with pytest.raises(DurabilityError):
            ckpt.read_checkpoint(str(path))

    def test_crc_mismatch(self, tmp_path):
        path = tmp_path / "c"
        ckpt.write_checkpoint(str(path), self.PAIRS)
        blob = bytearray(path.read_bytes())
        blob[len(ckpt.CHECKPOINT_MAGIC) + 9] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(DurabilityError):
            ckpt.read_checkpoint(str(path))

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "c"
        ckpt.write_checkpoint(str(path), self.PAIRS)
        path.write_bytes(path.read_bytes()[: len(ckpt.CHECKPOINT_MAGIC) + 2])
        with pytest.raises(DurabilityError):
            ckpt.read_checkpoint(str(path))

    def test_latest_generation(self, tmp_path):
        assert ckpt.latest_generation(str(tmp_path / "absent")) == 0
        assert ckpt.latest_generation(str(tmp_path)) == 0
        (tmp_path / "checkpoint-00000003").write_bytes(b"")
        (tmp_path / "wal-00000005.log").write_bytes(b"")
        (tmp_path / "unrelated.txt").write_bytes(b"")
        assert ckpt.latest_generation(str(tmp_path)) == 5


# --------------------------------------------------------------------------
# NodeDurability: open / recover / checkpoint cycle
# --------------------------------------------------------------------------


def _durable_store(data_dir, **kwargs):
    dur = ckpt.NodeDurability(str(data_dir), **kwargs)
    store = MemStore()
    report = dur.open(store)
    return dur, store, report


class TestNodeDurability:
    def test_pristine_open(self, tmp_path):
        dur, store, report = _durable_store(tmp_path / "n0")
        assert report.seq == 0
        assert report.checkpoint_pairs == 0
        assert report.records_replayed == 0
        assert len(store) == 0
        assert dur.wal is not None and not dur.wal.closed
        dur.close()

    def test_replay_after_abandon(self, tmp_path):
        dur, store, _ = _durable_store(tmp_path / "n0")
        store.multi_put([(b"a", b"1"), (b"b", b"2")])
        store.delete(b"a")
        dur.abandon()  # SIGKILL-equivalent: no close-time sync

        dur2, store2, report = _durable_store(tmp_path / "n0")
        assert report.records_replayed == 2  # multi_put logs ONE record
        assert list(store2.scan()) == [(b"b", b"2")]
        dur2.close()

    def test_checkpoint_truncates_log(self, tmp_path):
        dur, store, _ = _durable_store(tmp_path / "n0")
        store.multi_put([(b"k%d" % i, b"v") for i in range(8)])
        dur.checkpoint(store)
        names = sorted(os.listdir(tmp_path / "n0"))
        assert names == ["checkpoint-00000001", "wal-00000001.log"]
        assert wal.read_wal(str(tmp_path / "n0" / "wal-00000001.log"))[0] == []

        store.put(b"post", b"ckpt")
        dur.abandon()
        dur2, store2, report = _durable_store(tmp_path / "n0")
        assert report.seq == 1
        assert report.checkpoint_pairs == 8
        assert report.records_replayed == 1
        assert store2.get(b"post") == b"ckpt"
        assert len(store2) == 9
        dur2.close()

    def test_maybe_checkpoint_interval(self, tmp_path):
        dur, store, _ = _durable_store(
            tmp_path / "n0", checkpoint_interval=4)
        for i in range(3):
            store.put(b"k%d" % i, b"v")
            assert not dur.maybe_checkpoint(store)
        store.put(b"k3", b"v")
        assert dur.maybe_checkpoint(store)
        assert dur.seq == 1
        # the counter rebased: three more appends stay under the bar
        for i in range(3):
            store.put(b"p%d" % i, b"v")
            assert not dur.maybe_checkpoint(store)
        dur.close()

    def test_torn_tail_truncated_on_open(self, tmp_path):
        dur, store, _ = _durable_store(tmp_path / "n0")
        store.put(b"acked", b"v")
        dur.abandon()
        log_path = ckpt.wal_path(str(tmp_path / "n0"), 0)
        intact = os.path.getsize(log_path)
        with open(log_path, "ab") as handle:  # a record cut mid-header
            handle.write(b"\0\0\0")

        dur2, store2, report = _durable_store(tmp_path / "n0")
        assert report.torn_tail
        assert report.bytes_truncated == 3
        assert os.path.getsize(log_path) == intact  # debris gone
        assert store2.get(b"acked") == b"v"
        # the reopened log appends cleanly after the truncation point
        store2.put(b"next", b"v")
        dur2.abandon()
        _, store3, report3 = _durable_store(tmp_path / "n0")
        assert not report3.torn_tail
        assert store3.get(b"next") == b"v"

    def test_long_replay_folds_into_checkpoint(self, tmp_path):
        dur, store, _ = _durable_store(
            tmp_path / "n0", checkpoint_interval=4)
        dur.abandon()
        # grow the log behind the manager's back so open() replays >= 4
        log = wal.WriteAheadLog(ckpt.wal_path(str(tmp_path / "n0"), 0))
        for i in range(6):
            log.append(wal.WAL_PUT, b"k%d" % i, b"v")
        log.close()

        dur2, store2, report = _durable_store(
            tmp_path / "n0", checkpoint_interval=4)
        assert report.records_replayed == 6
        assert dur2.seq == 1  # re-checkpointed: next restart replays 0
        assert len(store2) == 6
        dur2.close()

    def test_checkpoint_before_open_refused(self, tmp_path):
        dur = ckpt.NodeDurability(str(tmp_path / "n0"))
        with pytest.raises(ValueError):
            dur.checkpoint(MemStore())

    def test_bad_args_refused(self, tmp_path):
        with pytest.raises(ValueError):
            ckpt.NodeDurability(str(tmp_path / "n0"), fsync_policy="nope")
        with pytest.raises(ValueError):
            ckpt.NodeDurability(str(tmp_path / "n0"), checkpoint_interval=0)

    def test_wal_stats_passthrough(self, tmp_path):
        dur = ckpt.NodeDurability(str(tmp_path / "n0"))
        assert dur.wal_stats() == {
            "records": 0, "bytes": 0, "fsyncs": 0, "rolls": 0}
        store = MemStore()
        dur.open(store)
        store.put(b"k", b"v")
        assert dur.wal_stats()["records"] == 1
        dur.close()
