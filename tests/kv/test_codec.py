import pytest

from repro.errors import CodecError
from repro.kv import codec


VALUES = [None, True, False, 0, -1, 2**40, -(2**40), 0.0, -3.5, 1e300,
           "", "hello", "ünïcode", "with'quote", "a" * 500]


class TestValueCodec:
    @pytest.mark.parametrize("value", VALUES)
    def test_roundtrip(self, value):
        data = codec.encode_value(value)
        out, pos = codec.decode_value(data, 0)
        assert out == value
        assert pos == len(data)
        # bool/int distinction preserved
        assert type(out) is type(value)

    def test_unknown_type(self):
        with pytest.raises(CodecError):
            codec.encode_value([1])

    def test_truncated(self):
        data = codec.encode_value("hello")
        with pytest.raises(Exception):
            codec.decode_value(data[:2], 0)


class TestRowCodec:
    @pytest.mark.parametrize(
        "row",
        [(), (1,), (1, "a", None, 2.5), tuple(range(100))],
    )
    def test_roundtrip(self, row):
        data = codec.encode_row(row)
        out, pos = codec.decode_row(data)
        assert out == row
        assert pos == len(data)

    def test_concatenated_rows(self):
        data = codec.encode_row((1, 2)) + codec.encode_row(("x",))
        first, pos = codec.decode_row(data, 0)
        second, end = codec.decode_row(data, pos)
        assert first == (1, 2)
        assert second == ("x",)
        assert end == len(data)


class TestEntriesCodec:
    def test_roundtrip(self):
        entries = [((1, "a"), 3), ((2, None), 1)]
        data = codec.encode_entries(entries)
        out, _ = codec.decode_entries(data)
        assert out == entries

    def test_empty(self):
        out, _ = codec.decode_entries(codec.encode_entries([]))
        assert out == []


class TestKeyCodec:
    @pytest.mark.parametrize(
        "key", [(), (1,), ("GERMANY",), (1, "x", 2.5), (None,)]
    )
    def test_roundtrip(self, key):
        assert codec.decode_key(codec.encode_key(key)) == key

    def test_distinct_keys_distinct_bytes(self):
        seen = set()
        for key in [(1,), (2,), ("1",), (1, 2), ((1))]:
            if not isinstance(key, tuple):
                key = (key,)
            seen.add(codec.encode_key(key))
        assert len(seen) == 4  # (1,) appears twice

    def test_int_vs_string_unambiguous(self):
        assert codec.encode_key((1,)) != codec.encode_key(("1",))


class TestVarint:
    @pytest.mark.parametrize("n", [0, 1, 127, 128, 300, 2**21, 2**40])
    def test_roundtrip(self, n):
        out = []
        codec._write_varint(out, n)
        data = b"".join(out)
        value, pos = codec._read_varint(data, 0)
        assert value == n and pos == len(data)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            codec._write_varint([], -1)

    def test_truncated(self):
        with pytest.raises(CodecError):
            codec._read_varint(b"\x80", 0)
