import pytest

from repro.kv import HashRing, KVCluster
from repro.kv.codec import encode_key


class TestHashRing:
    def test_deterministic_placement(self):
        ring1 = HashRing([0, 1, 2])
        ring2 = HashRing([0, 1, 2])
        for i in range(50):
            key = f"key{i}".encode()
            assert ring1.node_for(key) == ring2.node_for(key)

    def test_balance(self):
        ring = HashRing([0, 1, 2, 3])
        counts = {n: 0 for n in range(4)}
        for i in range(2000):
            counts[ring.node_for(f"key{i}".encode())] += 1
        assert min(counts.values()) > 2000 / 4 / 3

    def test_add_node_moves_few_keys(self):
        ring = HashRing([0, 1, 2, 3])
        before = {
            i: ring.node_for(f"key{i}".encode()) for i in range(1000)
        }
        ring.add_node(4)
        moved = sum(
            1
            for i in range(1000)
            if ring.node_for(f"key{i}".encode()) != before[i]
        )
        # consistent hashing: ~1/5 of keys move, never a majority
        assert moved < 500

    def test_remove_node(self):
        ring = HashRing([0, 1])
        ring.remove_node(0)
        assert all(
            ring.node_for(f"key{i}".encode()) == 1 for i in range(20)
        )

    def test_duplicate_node_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.add_node(0)

    def test_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing().node_for(b"x")


class TestKVCluster:
    def test_put_get(self):
        cluster = KVCluster(3)
        cluster.put("ns", b"k", b"v")
        assert cluster.get("ns", b"k") == b"v"

    def test_namespaces_isolated(self):
        cluster = KVCluster(2)
        cluster.put("ns1", b"k", b"v1")
        cluster.put("ns2", b"k", b"v2")
        assert cluster.get("ns1", b"k") == b"v1"
        assert cluster.get("ns2", b"k") == b"v2"

    def test_counters(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"value", n_values=3)
        cluster.get("ns", b"k", n_values=3)
        cluster.get("ns", b"missing")
        total = cluster.total_counters()
        assert total.puts == 1
        assert total.gets == 2
        assert total.hits == 1
        assert total.values_read == 3
        assert total.values_written == 3

    def test_reset_counters(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        cluster.reset_counters()
        assert cluster.total_counters().puts == 0

    def test_scan_counts_gets(self):
        cluster = KVCluster(2)
        for i in range(10):
            cluster.put("ns", encode_key((i,)), b"v")
        cluster.reset_counters()
        pairs = list(cluster.scan("ns"))
        assert len(pairs) == 10
        assert cluster.total_counters().gets == 10

    def test_scan_uncounted(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        cluster.reset_counters()
        list(cluster.scan("ns", count_as_gets=False))
        assert cluster.total_counters().gets == 0

    def test_peek_uncounted(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        cluster.reset_counters()
        assert cluster.peek("ns", b"k") == b"v"
        assert cluster.total_counters().gets == 0

    def test_delete(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        assert cluster.delete("ns", b"k")
        assert cluster.get("ns", b"k") is None

    def test_drop_namespace(self):
        cluster = KVCluster(2)
        for i in range(5):
            cluster.put("ns", encode_key((i,)), b"v")
        cluster.put("other", b"k", b"v")
        assert cluster.drop_namespace("ns") == 5
        assert cluster.get("other", b"k") == b"v"

    def test_add_node_preserves_data(self):
        cluster = KVCluster(3)
        for i in range(200):
            cluster.put("ns", encode_key((i,)), str(i).encode())
        cluster.add_node()
        assert cluster.num_nodes == 4
        for i in range(200):
            value = cluster.peek("ns", encode_key((i,)))
            assert value == str(i).encode()

    def test_data_spread_over_nodes(self):
        cluster = KVCluster(4)
        for i in range(400):
            cluster.put("ns", encode_key((i,)), b"v")
        sizes = [len(n.store) for n in cluster.nodes.values()]
        assert all(s > 0 for s in sizes)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            KVCluster(0)

    def test_scan_counts_values_read(self):
        """Regression: the blind scan used to bump gets but never
        values_read, undercounting #data — every pair is ≥ 1 value."""
        cluster = KVCluster(2)
        for i in range(10):
            cluster.put("ns", encode_key((i,)), b"v")
        cluster.reset_counters()
        list(cluster.scan("ns"))
        assert cluster.total_counters().values_read == 10

    def test_scan_values_of_charges_logical_counts(self):
        """Decode-aware callers pass per-pair value counts (e.g. a TaaV
        pair is ``arity`` values), charged on the owning node."""
        cluster = KVCluster(2)
        for i in range(10):
            cluster.put("ns", encode_key((i,)), b"v")
        cluster.reset_counters()
        list(cluster.scan("ns", values_of=lambda k, v: 3))
        total = cluster.total_counters()
        assert total.values_read == 30
        assert total.gets == 10
        # values land on the node that served the pair, not spread evenly
        for node in cluster.nodes.values():
            assert node.counters.values_read == 3 * node.counters.gets

    def test_scan_uncounted_counts_no_values(self):
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        cluster.reset_counters()
        list(cluster.scan("ns", count_as_gets=False))
        assert cluster.total_counters().values_read == 0

    def test_delete_counts_round_trip(self):
        """Regression: a delete is an RPC whether or not the key existed."""
        cluster = KVCluster(2)
        cluster.put("ns", b"k", b"v")
        cluster.reset_counters()
        assert cluster.delete("ns", b"k")
        assert not cluster.delete("ns", b"missing")
        total = cluster.total_counters()
        assert total.round_trips == 2
        assert total.deletes == 2
