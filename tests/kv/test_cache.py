"""Tests for the client-side read-through block cache (kv/cache.py)."""

import pytest

from repro.baav import BaaVStore
from repro.kv import BlockCache, KVCluster, PartitionedBlockCache, make_cache
from repro.kv.cache import ENTRY_OVERHEAD_BYTES
from repro.kv.taav import TaaVRelation
from repro.relational import AttrType, Relation, RelationSchema


def entry_charge(namespace: str, key: bytes, payload: bytes) -> int:
    return len(namespace) + len(key) + len(payload) + ENTRY_OVERHEAD_BYTES


class TestBlockCache:
    def test_get_put_roundtrip(self):
        cache = BlockCache(1024)
        assert cache.get("ns", b"k") is None
        cache.put("ns", b"k", b"payload")
        assert cache.get("ns", b"k") == b"payload"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_namespaces_isolated(self):
        cache = BlockCache(1024)
        cache.put("ns1", b"k", b"v1")
        cache.put("ns2", b"k", b"v2")
        assert cache.get("ns1", b"k") == b"v1"
        assert cache.get("ns2", b"k") == b"v2"

    def test_lru_eviction_under_capacity_pressure(self):
        charge = entry_charge("ns", b"k0", b"x" * 10)
        cache = BlockCache(charge * 2)  # room for exactly two entries
        cache.put("ns", b"k0", b"x" * 10)
        cache.put("ns", b"k1", b"x" * 10)
        cache.get("ns", b"k0")  # k0 is now most recently used
        cache.put("ns", b"k2", b"x" * 10)  # evicts k1, the LRU entry
        assert cache.peek("ns", b"k0") is not None
        assert cache.peek("ns", b"k1") is None
        assert cache.peek("ns", b"k2") is not None
        assert cache.stats.evictions == 1

    def test_oversized_payload_never_admitted(self):
        cache = BlockCache(128)
        cache.put("ns", b"k", b"x" * 1024)
        assert cache.peek("ns", b"k") is None
        assert len(cache) == 0

    def test_bytes_cached_tracks_residency(self):
        cache = BlockCache(10_000)
        cache.put("ns", b"k", b"x" * 100)
        assert cache.stats.bytes_cached == entry_charge("ns", b"k", b"x" * 100)
        cache.invalidate("ns", b"k")
        assert cache.stats.bytes_cached == 0

    def test_refill_replaces_entry(self):
        cache = BlockCache(10_000)
        cache.put("ns", b"k", b"old")
        cache.put("ns", b"k", b"new-longer-payload")
        assert cache.get("ns", b"k") == b"new-longer-payload"
        assert cache.stats.bytes_cached == entry_charge(
            "ns", b"k", b"new-longer-payload"
        )

    def test_invalidate(self):
        cache = BlockCache(1024)
        cache.put("ns", b"k", b"v")
        assert cache.invalidate("ns", b"k")
        assert not cache.invalidate("ns", b"k")
        assert cache.peek("ns", b"k") is None
        assert cache.stats.invalidations == 1

    def test_invalidate_namespace(self):
        cache = BlockCache(4096)
        for i in range(5):
            cache.put("doomed", f"k{i}".encode(), b"v")
        cache.put("kept", b"k", b"v")
        assert cache.invalidate_namespace("doomed") == 5
        assert cache.peek("kept", b"k") == b"v"
        assert len(cache) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(0)

    def test_hit_rate(self):
        cache = BlockCache(1024)
        cache.put("ns", b"k", b"v")
        cache.get("ns", b"k")
        cache.get("ns", b"k")
        cache.get("ns", b"absent")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestPartitionedBlockCache:
    def test_routing_is_stable(self):
        cache = PartitionedBlockCache(8192, partitions=4)
        for i in range(20):
            cache.put("ns", f"k{i}".encode(), b"v")
        for i in range(20):
            assert cache.get("ns", f"k{i}".encode()) == b"v"

    def test_stats_aggregate_over_partitions(self):
        cache = PartitionedBlockCache(8192, partitions=4)
        for i in range(10):
            cache.put("ns", f"k{i}".encode(), b"v")
            cache.get("ns", f"k{i}".encode())
        assert cache.stats.hits == 10
        assert cache.stats.insertions == 10
        assert len(cache) == 10

    def test_invalidate_namespace_spans_partitions(self):
        cache = PartitionedBlockCache(8192, partitions=3)
        for i in range(9):
            cache.put("ns", f"k{i}".encode(), b"v")
        assert cache.invalidate_namespace("ns") == 9
        assert len(cache) == 0

    def test_capacity_split_evenly(self):
        cache = PartitionedBlockCache(1000, partitions=4)
        assert all(p.capacity_bytes == 250 for p in cache.partitions)

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            PartitionedBlockCache(1024, partitions=0)


class TestMakeCache:
    def test_zero_capacity_is_off(self):
        assert make_cache(0) is None
        assert make_cache(-1, partitions=8) is None

    def test_single_partition_plain_cache(self):
        assert isinstance(make_cache(1024, partitions=1), BlockCache)

    def test_multi_partition(self):
        cache = make_cache(1024, partitions=4)
        assert isinstance(cache, PartitionedBlockCache)
        assert len(cache.partitions) == 4


@pytest.fixture()
def taav_with_cache():
    schema = RelationSchema.of(
        "R", {"k": AttrType.INT, "v": AttrType.STR}, ["k"]
    )
    rel = Relation(schema, [(i, f"row{i}") for i in range(10)])
    cluster = KVCluster(3)
    cache = BlockCache(1 << 20)
    taav = TaaVRelation(schema, cluster, cache=cache)
    taav.load(rel.rows)
    cluster.reset_counters()
    return taav, cluster, cache


class TestReadThroughTaaV:
    def test_hit_serves_without_touching_nodes(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        assert taav.get((3,)) == (3, "row3")  # miss: fills the cache
        assert cluster.total_counters().gets == 1
        assert taav.get((3,)) == (3, "row3")  # hit: zero node traffic
        total = cluster.total_counters()
        assert total.gets == 1
        assert total.round_trips == 1
        assert cache.stats.hits == 1

    def test_multi_get_only_misses_reach_cluster(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        taav.get((1,))
        taav.get((2,))
        cluster.reset_counters()
        rows = taav.multi_get([(1,), (2,), (3,), (4,)])
        assert rows == [(1, "row1"), (2, "row2"), (3, "row3"), (4, "row4")]
        # only the two cache-missing keys were fetched
        assert cluster.total_counters().gets == 2
        assert cache.stats.hits == 2

    def test_write_invalidates_stale_entry(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        taav.get((5,))
        taav.insert((5, "updated"))  # same pk: overwrites the pair
        assert taav.get((5,)) == (5, "updated")

    def test_delete_invalidates(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        taav.get((6,))
        assert taav.delete_by_key((6,))
        assert taav.get((6,)) is None

    def test_drop_namespace_invalidates(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        taav.get((7,))
        cluster.drop_namespace(taav.namespace)
        assert taav.get((7,)) is None

    def test_absent_keys_not_cached(self, taav_with_cache):
        taav, cluster, cache = taav_with_cache
        assert taav.get((99,)) is None
        assert taav.get((99,)) is None
        assert cluster.total_counters().gets == 2
        assert cache.stats.hits == 0


class TestReadThroughBaaV:
    def test_block_hit_skips_cluster(self, paper_db, paper_baav_schema):
        cluster = KVCluster(3)
        cache = BlockCache(1 << 20)
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster, cache=cache
        )
        instance = store.instance("sup_by_nation")
        cluster.reset_counters()
        first = instance.get((10,))
        gets_after_miss = cluster.total_counters().gets
        assert gets_after_miss >= 1
        again = instance.get((10,))
        assert sorted(again.expand()) == sorted(first.expand())
        assert cluster.total_counters().gets == gets_after_miss
        assert cache.stats.hits >= 1

    def test_maintenance_invalidates_block(self, paper_db, paper_baav_schema):
        from repro.baav import Maintainer

        cluster = KVCluster(3)
        cache = BlockCache(1 << 20)
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster, cache=cache
        )
        instance = store.instance("sup_by_nation")
        instance.get((10,))  # cached
        Maintainer(store).insert("SUPPLIER", [(9, 10)])
        block = instance.get((10,))
        assert sorted(block.expand()) == [(1,), (2,), (9,)]

    def test_multi_get_partial_hits(self, paper_db, paper_baav_schema):
        cluster = KVCluster(3)
        cache = BlockCache(1 << 20)
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, cluster, cache=cache
        )
        instance = store.instance("sup_by_nation")
        instance.get((10,))
        cluster.reset_counters()
        blocks = instance.multi_get([(10,), (20,), (30,)])
        assert sorted(blocks[(10,)].expand()) == [(1,), (2,)]
        assert sorted(blocks[(20,)].expand()) == [(3,)]
        # the cached key (10,) was served locally; 2 keys hit the cluster
        assert cluster.total_counters().gets == 2
