from repro.kv.memstore import MemStore


class TestMemStore:
    def test_put_get(self):
        store = MemStore()
        store.put(b"k1", b"v1")
        assert store.get(b"k1") == b"v1"
        assert store.get(b"nope") is None

    def test_overwrite(self):
        store = MemStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self):
        store = MemStore()
        store.put(b"k", b"v")
        assert store.delete(b"k")
        assert not store.delete(b"k")
        assert store.get(b"k") is None

    def test_contains(self):
        store = MemStore()
        store.put(b"k", b"v")
        assert b"k" in store and b"x" not in store

    def test_keys_sorted(self):
        store = MemStore()
        for key in (b"c", b"a", b"b"):
            store.put(key, b"v")
        assert store.keys() == [b"a", b"b", b"c"]

    def test_next_key_iteration(self):
        store = MemStore()
        for key in (b"b", b"a", b"c"):
            store.put(key, b"v")
        seen = []
        cursor = store.next_key(None)
        while cursor is not None:
            seen.append(cursor)
            cursor = store.next_key(cursor)
        assert seen == [b"a", b"b", b"c"]

    def test_next_key_empty(self):
        assert MemStore().next_key() is None

    def test_next_key_after_last(self):
        store = MemStore()
        store.put(b"a", b"v")
        assert store.next_key(b"a") is None

    def test_next_key_sees_new_writes(self):
        store = MemStore()
        store.put(b"a", b"v")
        assert store.next_key(None) == b"a"
        store.put(b"b", b"v")
        assert store.next_key(b"a") == b"b"

    def test_scan_prefix(self):
        store = MemStore()
        store.put(b"ns1:a", b"1")
        store.put(b"ns1:b", b"2")
        store.put(b"ns2:a", b"3")
        assert [k for k, _ in store.scan(b"ns1:")] == [b"ns1:a", b"ns1:b"]

    def test_size_bytes(self):
        store = MemStore()
        store.put(b"ab", b"xyz")
        assert store.size_bytes() == 5

    def test_clear(self):
        store = MemStore()
        store.put(b"a", b"v")
        store.clear()
        assert len(store) == 0
        assert store.keys() == []
