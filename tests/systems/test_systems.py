"""End-to-end system tests: SoX vs SoXZidian on the paper's example."""

import pytest

from repro.errors import ExecutionError
from repro.relational import bag_equal
from repro.sql import execute as ra_execute, plan_sql
from repro.systems import SQLOverNoSQL, ZidianSystem


def reference(db, sql):
    plan, _ = plan_sql(sql, db.schema)
    return ra_execute(plan, db)


class TestSQLOverNoSQL:
    def test_name(self):
        assert SQLOverNoSQL("hbase").name == "SoH"
        assert SQLOverNoSQL("kudu").name == "SoK"
        assert SQLOverNoSQL("cassandra").name == "SoC"

    def test_requires_load(self):
        with pytest.raises(ExecutionError):
            SQLOverNoSQL().execute("select a from R")

    def test_execute(self, paper_db, q1_sql):
        system = SQLOverNoSQL("kudu", workers=4, storage_nodes=2)
        system.load(paper_db)
        result = system.execute(q1_sql)
        assert bag_equal(result.relation, reference(paper_db, q1_sql))
        assert result.metrics.n_get == paper_db.num_tuples()

    def test_counters_reset_between_queries(self, paper_db, q1_sql):
        system = SQLOverNoSQL("kudu", workers=4, storage_nodes=2)
        system.load(paper_db)
        first = system.execute(q1_sql).metrics
        second = system.execute(q1_sql).metrics
        assert first.n_get == second.n_get


class TestZidianSystem:
    def test_name(self):
        assert ZidianSystem("hbase").name == "SoHZidian"

    def test_execute_matches_reference(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        system = ZidianSystem("hbase", workers=4, storage_nodes=2)
        system.load(paper_db, paper_baav_schema)
        result = system.execute(q1_sql)
        assert bag_equal(result.relation, reference(paper_db, q1_sql))
        assert result.decision.is_scan_free

    def test_beats_baseline_on_all_metrics(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        base = SQLOverNoSQL("hbase", workers=4, storage_nodes=2)
        base.load(paper_db)
        zidian = ZidianSystem("hbase", workers=4, storage_nodes=2)
        zidian.load(paper_db, paper_baav_schema)
        m_base = base.execute(q1_sql).metrics
        m_z = zidian.execute(q1_sql).metrics
        assert m_z.n_get < m_base.n_get
        assert m_z.data_values < m_base.data_values
        assert m_z.comm_bytes < m_base.comm_bytes
        assert m_z.sim_time_ms < m_base.sim_time_ms

    def test_t2b_route(self, paper_db, q1_sql):
        system = ZidianSystem("kudu", workers=4, storage_nodes=2)
        system.load(paper_db, workload=[q1_sql])
        result = system.execute(q1_sql)
        assert bag_equal(result.relation, reference(paper_db, q1_sql))
        assert result.decision.is_scan_free

    def test_load_requires_schema_or_workload(self, paper_db):
        system = ZidianSystem("kudu")
        with pytest.raises(ExecutionError):
            system.load(paper_db)

    def test_updates_keep_results_fresh(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        system = ZidianSystem("kudu", workers=4, storage_nodes=2)
        system.load(paper_db.copy(), paper_baav_schema)
        system.apply_updates(
            "PARTSUPP", inserts=[(400, 2, 10.0, 6)],
            deletes=[(100, 1, 5.0, 7)],
        )
        result = system.execute(q1_sql)
        assert bag_equal(
            result.relation, reference(system.database, q1_sql)
        )

    def test_no_taav_keeps_working_for_covered_queries(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        """Users may drop D entirely when R̃ is data preserving (§5.1)."""
        system = ZidianSystem(
            "kudu", workers=4, storage_nodes=2, keep_taav=False
        )
        system.load(paper_db, paper_baav_schema)
        result = system.execute(q1_sql)
        assert bag_equal(result.relation, reference(paper_db, q1_sql))

    def test_compression_off_still_correct(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        system = ZidianSystem(
            "kudu", workers=4, storage_nodes=2, compress=False
        )
        system.load(paper_db, paper_baav_schema)
        assert bag_equal(
            system.execute(q1_sql).relation, reference(paper_db, q1_sql)
        )

    def test_split_threshold_still_correct(
        self, paper_db, paper_baav_schema, q1_sql
    ):
        system = ZidianSystem(
            "kudu", workers=4, storage_nodes=2, split_threshold=1
        )
        system.load(paper_db, paper_baav_schema)
        assert bag_equal(
            system.execute(q1_sql).relation, reference(paper_db, q1_sql)
        )
