"""Unit tests of the query service: sessions, admission, deadlines.

The admission tests drive the service over a stub system whose
execution blocks on an event, so pool occupancy is fully controlled and
deterministic; the integration tests run the real systems underneath.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    QueryDeadlineError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service import QueryService
from repro.systems import SQLOverNoSQL


class StubSystem:
    """A fake system: queries echo their SQL, ``BLOCK`` waits on a gate."""

    workers = 2

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Semaphore(0)
        self.executed = []
        self.updates = []
        self._lock = threading.Lock()

    def execute(self, sql: str):
        self.started.release()
        if sql == "BLOCK":
            assert self.gate.wait(timeout=10.0), "stub gate never opened"
        with self._lock:
            self.executed.append(sql)
        return f"result:{sql}"

    def apply_updates(self, relation, inserts=(), deletes=()):
        with self._lock:
            self.updates.append((relation, list(inserts), list(deletes)))


@pytest.fixture()
def stub_service():
    stub = StubSystem()
    service = QueryService(stub, max_workers=2, max_queued=1)
    yield stub, service
    stub.gate.set()
    service.close(timeout=5.0)


class TestSessions:
    def test_open_execute_close(self, stub_service):
        stub, service = stub_service
        with service.open_session(client="alice") as session:
            assert session.execute("Q1") == "result:Q1"
            assert session.queries == 1
        assert session.closed
        with pytest.raises(ServiceClosedError):
            session.execute("Q2")

    def test_session_ids_are_distinct(self, stub_service):
        _, service = stub_service
        first = service.open_session()
        second = service.open_session()
        assert first.session_id != second.session_id
        assert service.active_sessions == 2
        first.close()
        assert service.active_sessions == 1

    def test_apply_updates_records_session(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        session.apply_updates("REL", inserts=[(1, 2)])
        assert stub.updates == [("REL", [(1, 2)], [])]
        assert session.updates == 1
        assert service.stats().updates_applied == 1


class TestAdmission:
    def test_workers_then_queue_then_shed(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        running = [session.submit("BLOCK"), session.submit("BLOCK")]
        # both admitted straight to the two workers
        assert service.stats().in_flight == 2
        queued = session.submit("Q-queued")
        assert service.stats().queued == 1
        with pytest.raises(ServiceOverloadedError):
            session.submit("Q-shed")
        stats = service.stats()
        assert stats.shed == 1
        assert stats.peak_in_flight == 2
        assert stats.peak_queued == 1
        stub.gate.set()
        assert queued.result(timeout=5.0) == "result:Q-queued"
        for ticket in running:
            assert ticket.result(timeout=5.0) == "result:BLOCK"
        assert service.stats().completed == 3

    def test_slot_reopens_after_completion(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        tickets = [session.submit("BLOCK") for _ in range(2)]
        session.submit("Q3")
        with pytest.raises(ServiceOverloadedError):
            session.submit("Q4")
        stub.gate.set()
        for ticket in tickets:
            ticket.result(timeout=5.0)
        # capacity is back: this admission must succeed
        assert session.submit("Q5").result(timeout=5.0) == "result:Q5"

    def test_sync_execute_counts_in_flight(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        assert session.execute("Q") == "result:Q"
        stats = service.stats()
        assert stats.submitted == 1
        assert stats.completed == 1
        assert stats.in_flight == 0


class TestDeadlinesAndCancel:
    def test_queued_query_expires(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        blockers = [session.submit("BLOCK") for _ in range(2)]
        for _ in range(2):
            assert stub.started.acquire(timeout=5.0)
        late = session.submit("Q-late", deadline_ms=0.0)
        time.sleep(0.01)
        stub.gate.set()
        with pytest.raises(QueryDeadlineError):
            late.result(timeout=5.0)
        assert service.stats().expired == 1
        for ticket in blockers:
            ticket.result(timeout=5.0)

    def test_cancel_queued_ticket(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        blockers = [session.submit("BLOCK") for _ in range(2)]
        for _ in range(2):
            assert stub.started.acquire(timeout=5.0)
        queued = session.submit("Q-cancel")
        assert queued.cancel()
        # the queue slot is reclaimed: a new submission is admitted
        replacement = session.submit("Q-next")
        stub.gate.set()
        assert replacement.result(timeout=5.0) == "result:Q-next"
        for ticket in blockers:
            ticket.result(timeout=5.0)
        stats = service.stats()
        assert stats.cancelled == 1
        assert "Q-cancel" not in stub.executed

    def test_running_query_cannot_be_cancelled(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        ticket = session.submit("BLOCK")
        assert stub.started.acquire(timeout=5.0)
        assert not ticket.cancel()
        stub.gate.set()
        assert ticket.result(timeout=5.0) == "result:BLOCK"


class TestDrainAndClose:
    def test_drain_waits_for_in_flight(self, stub_service):
        stub, service = stub_service
        session = service.open_session()
        ticket = session.submit("BLOCK")
        assert stub.started.acquire(timeout=5.0)
        assert not service.drain(timeout=0.05)
        with pytest.raises(ServiceClosedError):
            session.submit("Q-after-drain")
        stub.gate.set()
        assert service.drain(timeout=5.0)
        ticket.result(timeout=5.0)

    def test_close_refuses_everything(self, stub_service):
        _, service = stub_service
        session = service.open_session()
        service.close(timeout=5.0)
        with pytest.raises(ServiceClosedError):
            session.execute("Q")
        with pytest.raises(ServiceClosedError):
            service.open_session()

    def test_failed_query_counts_and_raises(self, stub_service):
        stub, service = stub_service

        def boom(sql):
            raise RuntimeError("kaput")

        stub.execute = boom
        session = service.open_session()
        with pytest.raises(RuntimeError):
            session.submit("Q").result(timeout=5.0)
        stats = service.stats()
        assert stats.failed == 1
        assert session.errors == 1


class TestRealSystem:
    """The service over a real loaded system: same answers, same Δs."""

    def test_execute_matches_direct_system(self, paper_db):
        system = SQLOverNoSQL(workers=2, storage_nodes=2, batch_size=4)
        system.load(paper_db)
        direct = system.execute(
            "select S.suppkey from SUPPLIER S where S.nationkey = 10"
        )
        with QueryService(system, max_workers=2) as service:
            with service.open_session() as session:
                ticket = session.submit(
                    "select S.suppkey from SUPPLIER S "
                    "where S.nationkey = 10"
                )
                result = ticket.result(timeout=10.0)
        assert sorted(result.rows) == sorted(direct.rows)
        assert result.metrics.n_get == direct.metrics.n_get

    def test_update_visible_to_next_query(self, paper_db):
        system = SQLOverNoSQL(workers=2, storage_nodes=2, batch_size=4)
        system.load(paper_db)
        with QueryService(system, max_workers=2) as service:
            with service.open_session() as session:
                session.apply_updates("SUPPLIER", inserts=[(9, 10)])
                result = session.execute(
                    "select S.suppkey from SUPPLIER S "
                    "where S.nationkey = 10"
                )
        assert (9,) in result.rows
