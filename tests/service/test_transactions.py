"""Service-level transactions: begin/apply/commit/abort, MVCC knobs.

These tests drive the real systems (not the stub): the transaction
surface spans the relational layer, the TaaV/BaaV stores and the
secondary indexes, so a stub would prove nothing about atomicity.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import TransactionError
from repro.service import MVCC_ENV, QueryService
from repro.systems import SQLOverNoSQL, ZidianSystem

COUNT_SQL = "select count(*) as n from PARTSUPP PS"


@pytest.fixture()
def service(paper_db, paper_baav_schema):
    system = ZidianSystem("hbase", workers=2, storage_nodes=2)
    system.load(paper_db.copy(), paper_baav_schema)
    with QueryService(system, max_workers=2) as svc:
        yield svc


class TestKnobs:
    def test_mvcc_defaults_on_for_capable_systems(self, service):
        assert service.mvcc is True
        assert service.system.transactions is not None

    def test_mvcc_off_via_argument(self, paper_db, paper_baav_schema):
        system = ZidianSystem("hbase", workers=2, storage_nodes=2)
        system.load(paper_db.copy(), paper_baav_schema)
        with QueryService(system, mvcc=False) as svc:
            assert svc.mvcc is False
            with svc.open_session() as session:
                with pytest.raises(TransactionError):
                    session.begin()
                # non-transactional updates still work
                session.apply_updates(
                    "PARTSUPP", inserts=[(900, 1, 9.0, 9)]
                )
                count = session.execute(COUNT_SQL).rows[0][0]
            assert count == len(paper_db.relation("PARTSUPP").rows) + 1

    def test_mvcc_off_via_environment(
        self, paper_db, paper_baav_schema, monkeypatch
    ):
        monkeypatch.setenv(MVCC_ENV, "0")
        system = ZidianSystem("hbase", workers=2, storage_nodes=2)
        system.load(paper_db.copy(), paper_baav_schema)
        with QueryService(system) as svc:
            assert svc.mvcc is False

    def test_mvcc_requires_capable_system(self):
        class Bare:
            workers = 1

            def execute(self, sql):
                return sql

            def apply_updates(self, relation, inserts=(), deletes=()):
                pass

        with QueryService(Bare(), max_workers=1, mvcc=True) as svc:
            assert svc.mvcc is False

    def test_gc_interval_forwarded(self, paper_db, paper_baav_schema):
        system = ZidianSystem("hbase", workers=2, storage_nodes=2)
        system.load(paper_db.copy(), paper_baav_schema)
        with QueryService(system, snapshot_gc_interval=7) as svc:
            assert svc.system.transactions.gc_interval == 7


class TestTransactions:
    def test_multi_relation_commit_is_atomic_and_visible(
        self, service, q1_sql
    ):
        with service.open_session() as session:
            before = sorted(session.execute(q1_sql).rows)
            with session.begin() as txn:
                txn.apply_updates("SUPPLIER", inserts=[(5, 10)])
                txn.apply_updates(
                    "PARTSUPP", inserts=[(500, 5, 4.0, 3)]
                )
            assert txn.state == "committed"
            assert txn.epoch == 1
            after = sorted(session.execute(q1_sql).rows)
        assert after != before
        assert (5, 4.0) in after

    def test_commit_epoch_lands_on_metrics(self, service, q1_sql):
        with service.open_session() as session:
            assert session.execute(q1_sql).metrics.snapshot_epoch == 0
            with session.begin() as txn:
                txn.apply_updates(
                    "PARTSUPP", inserts=[(900, 1, 9.0, 9)]
                )
            result = session.execute(q1_sql)
            assert result.metrics.snapshot_epoch == txn.epoch

    def test_abort_installs_nothing(self, service):
        with service.open_session() as session:
            before = session.execute(COUNT_SQL).rows[0][0]
            txn = session.begin()
            txn.apply_updates("PARTSUPP", inserts=[(901, 1, 1.0, 1)])
            txn.abort()
            assert txn.state == "aborted"
            assert session.execute(COUNT_SQL).rows[0][0] == before
        assert service.stats().transactions_aborted == 1
        assert service.stats().transactions_committed == 0

    def test_body_error_aborts(self, service):
        with service.open_session() as session:
            before = session.execute(COUNT_SQL).rows[0][0]
            with pytest.raises(RuntimeError):
                with session.begin() as txn:
                    txn.apply_updates(
                        "PARTSUPP", inserts=[(902, 1, 1.0, 1)]
                    )
                    raise RuntimeError("client bailed")
            assert txn.state == "aborted"
            assert session.execute(COUNT_SQL).rows[0][0] == before

    def test_commit_failure_counts_as_aborted(self, service):
        with service.open_session() as session:
            txn = session.begin()
            txn.apply_updates("NO_SUCH_RELATION", inserts=[(1,)])
            with pytest.raises(Exception):
                txn.commit()
            assert txn.state == "aborted"
        stats = service.stats()
        assert stats.transactions_aborted == 1
        assert stats.transactions_committed == 0
        assert "txn=0c/1a" in str(stats)

    def test_stats_count_commits_and_statements(self, service):
        with service.open_session() as session:
            with session.begin() as txn:
                txn.apply_updates("PARTSUPP", inserts=[(903, 1, 1.0, 1)])
                txn.apply_updates("PARTSUPP", inserts=[(904, 1, 1.0, 1)])
        stats = service.stats()
        assert stats.transactions_committed == 1
        assert stats.updates_applied == 2

    def test_baseline_system_has_transactions_too(
        self, paper_db, q1_sql
    ):
        system = SQLOverNoSQL(workers=2, storage_nodes=2)
        system.load(paper_db.copy())
        with QueryService(system, max_workers=2) as svc:
            with svc.open_session() as session:
                with session.begin() as txn:
                    txn.apply_updates("SUPPLIER", inserts=[(5, 10)])
                    txn.apply_updates(
                        "PARTSUPP", inserts=[(500, 5, 4.0, 3)]
                    )
                assert txn.state == "committed"
                assert (5, 4.0) in session.execute(q1_sql).rows


class TestSnapshotIsolation:
    def test_reader_blocked_mid_query_sees_pre_commit_state(
        self, service
    ):
        """A commit landing while a reader is pinned must be invisible
        to that reader — the overlay serves the superseded values."""
        system = service.system
        manager = system.transactions
        with service.open_session() as session:
            with manager.snapshot() as epoch:
                with session.begin() as txn:
                    txn.apply_updates(
                        "PARTSUPP", inserts=[(905, 1, 1.0, 1)]
                    )
                # the commit published, but this thread is still pinned
                # at the pre-commit epoch
                assert txn.epoch == epoch + 1
                count = system.execute(COUNT_SQL).rows[0][0]
            after = system.execute(COUNT_SQL).rows[0][0]
        assert after == count + 1

    def test_concurrent_reads_during_commit_see_whole_epochs(
        self, service, q1_sql
    ):
        """Readers racing a stream of commits always observe a count
        that equals some prefix of the committed transactions."""
        stop = threading.Event()
        seen = []
        errors = []

        def reader():
            with service.open_session() as session:
                while not stop.is_set():
                    try:
                        result = session.execute(COUNT_SQL)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    seen.append(
                        (result.metrics.snapshot_epoch,
                         result.rows[0][0])
                    )

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        base = None
        try:
            with service.open_session() as session:
                base = session.execute(COUNT_SQL).rows[0][0]
                for i in range(10):
                    with session.begin() as txn:
                        txn.apply_updates(
                            "PARTSUPP",
                            inserts=[(910 + i, 1, 1.0, 1)],
                        )
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not errors
        # count at epoch E == base + E: every snapshot is a whole
        # number of commits, never a torn half-commit
        for epoch, count in seen:
            assert count == base + epoch, (epoch, count)
