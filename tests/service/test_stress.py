"""Thread-safety stress tests (``pytest -m stress``).

Real OS threads hammer the shared stack — mixed reads and writes
through the service at R=2, raw cluster traffic under membership churn
— and every run must end with exact answers and consistent accounting.
CI repeats this module three times under ``PYTHONHASHSEED=0`` to shake
out flaky interleavings.
"""

from __future__ import annotations

import collections
import threading

import pytest

from repro.service import QueryService
from repro.systems import SQLOverNoSQL
from repro.workloads.airca import generate_airca
from repro.workloads.traffic import (
    TrafficDriver,
    airca_delay_writer,
    airca_traffic_mix,
)

pytestmark = pytest.mark.stress


@pytest.fixture(scope="module")
def airca_db():
    return generate_airca(scale=0.2, seed=31)


def build_system(db, replication_factor=2):
    system = SQLOverNoSQL(
        workers=2,
        storage_nodes=3,
        batch_size=16,
        replication_factor=replication_factor,
        indexes=["FLIGHT.tail_id", "FLIGHT.arr_delay:ordered"],
    )
    system.load(db)
    return system


class TestMixedTrafficR2:
    def test_no_lost_or_duplicated_writes(self, airca_db):
        """Concurrent clients + a writer stream at R=2: every inserted
        row survives exactly once, on every read path."""
        system = build_system(airca_db)
        baseline_ids = [row[0] for row in airca_db.relation("DELAY").rows]
        writer, inserted = airca_delay_writer(airca_db, think_ms=0.0)
        with QueryService(system, max_workers=4, max_queued=4) as service:
            driver = TrafficDriver(
                service,
                airca_traffic_mix(airca_db),
                clients=6,
                think_ms=0.0,
                update_stream=writer,
                seed=97,
            )
            report = driver.run_threads(queries_per_client=6, updates=12)
            stats = service.stats()
            assert stats.failed == 0
            assert report.completed == 6 * 6
            assert report.updates_applied == 12
            # relational truth: exactly-once
            ids = [row[0] for row in airca_db.relation("DELAY").rows]
            duplicated = [
                k for k, n in collections.Counter(ids).items() if n > 1
            ]
            assert duplicated == []
            assert set(inserted) <= set(ids)
            assert len(ids) == len(baseline_ids) + 12
            # storage truth: the scan path agrees with the relation
            with service.open_session() as session:
                result = session.execute(
                    "select count(*) as n from DELAY D"
                )
            assert result.rows == [(len(ids),)]

    def test_index_path_agrees_after_concurrent_updates(self, airca_db):
        """The secondary index stays consistent with the scan path under
        a concurrent read/write mix."""
        system = build_system(airca_db)
        writer, _ = airca_delay_writer(airca_db, think_ms=0.0)
        with QueryService(system, max_workers=4, max_queued=4) as service:
            driver = TrafficDriver(
                service,
                airca_traffic_mix(airca_db),
                clients=4,
                think_ms=0.0,
                update_stream=writer,
                seed=11,
            )
            driver.run_threads(queries_per_client=5, updates=8)
            tails = sorted(
                {row[4] for row in airca_db.relation("FLIGHT").rows}
            )[:5]
            with service.open_session() as session:
                for tail in tails:
                    indexed = session.execute(
                        "select F.flight_id from FLIGHT F "
                        f"where F.tail_id = {tail}"
                    )
                    expected = sorted(
                        (row[0],)
                        for row in airca_db.relation("FLIGHT").rows
                        if row[4] == tail
                    )
                    assert sorted(indexed.rows) == expected


class TestConcurrentReadCorrectness:
    def test_every_thread_sees_exact_answers(self, airca_db):
        """N threads fire the same keyed queries; all answers must be
        byte-identical to the single-threaded truth."""
        system = build_system(airca_db)
        flights = airca_db.relation("FLIGHT").rows
        picks = [row[0] for row in flights[:8]]
        truth = {}
        for fid in picks:
            truth[fid] = sorted(
                system.execute(
                    "select F.arr_delay, F.distance from FLIGHT F "
                    f"where F.flight_id = {fid}"
                ).rows
            )
        errors = []
        with QueryService(system, max_workers=4, max_queued=8) as service:

            def reader(worker: int) -> None:
                try:
                    with service.open_session(f"t{worker}") as session:
                        for fid in picks:
                            rows = sorted(
                                session.submit(
                                    "select F.arr_delay, F.distance "
                                    "from FLIGHT F "
                                    f"where F.flight_id = {fid}"
                                ).result(timeout=30.0).rows
                            )
                            if rows != truth[fid]:
                                errors.append((worker, fid, rows))
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append((worker, "exception", repr(exc)))

            threads = [
                threading.Thread(target=reader, args=(i,), daemon=True)
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_per_query_metrics_are_isolated(self, airca_db):
        """Concurrent queries must not bleed into each other's #get
        accounting (the thread-sharded counter guarantee)."""
        system = build_system(airca_db, replication_factor=1)
        fid = airca_db.relation("FLIGHT").rows[0][0]
        sql = (
            "select F.arr_delay from FLIGHT F "
            f"where F.flight_id = {fid}"
        )
        solo = system.execute(sql).metrics.n_get
        observed = []
        lock = threading.Lock()
        with QueryService(system, max_workers=4, max_queued=16) as service:

            def reader() -> None:
                with service.open_session() as session:
                    for _ in range(5):
                        metrics = session.submit(sql).result(
                            timeout=30.0
                        ).metrics
                        with lock:
                            observed.append(metrics.n_get)

            threads = [
                threading.Thread(target=reader, daemon=True)
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert observed and all(n == solo for n in observed)


class TestChurnUnderTraffic:
    def test_failover_during_reads_r2(self):
        """fail/recover churn while readers hammer the cluster: every
        read returns the true value (R=2 tolerates one node down)."""
        from repro.kv.cluster import KVCluster

        cluster = KVCluster(num_nodes=4, replication_factor=2)
        truth = {}
        for i in range(200):
            key = f"k{i}".encode()
            value = f"v{i}".encode()
            truth[key] = value
            cluster.put("ns", key, value)
        stop = threading.Event()
        errors = []

        def reader(worker: int) -> None:
            keys = list(truth)
            while not stop.is_set():
                for key in keys[worker::3]:
                    got = cluster.get("ns", key)
                    if got != truth[key]:
                        errors.append((key, got))
                        return

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(4):
                for node_id in (0, 2):
                    cluster.fail_node(node_id)
                    cluster.recover_node(node_id)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert errors == []
        assert not any(thread.is_alive() for thread in threads)
