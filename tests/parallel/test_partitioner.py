"""Tests for hash partitioning and the skew observability (§7.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kba.blockset import BlockSet
from repro.parallel import (
    blockset_skew,
    partition_blockset,
    partition_keys,
    partition_rows,
    skew_factor,
)


class TestPartitioning:
    def test_counts_cover_all_keys(self):
        keys = [(i,) for i in range(100)]
        counts = partition_keys(keys, 8)
        assert sum(counts) == 100
        assert len(counts) == 8

    def test_deterministic(self):
        keys = [(i, "x") for i in range(50)]
        assert partition_keys(keys, 4) == partition_keys(keys, 4)

    def test_roughly_balanced_on_distinct_keys(self):
        counts = partition_keys([(i,) for i in range(4000)], 8)
        assert skew_factor(counts) < 1.2

    def test_single_worker(self):
        counts = partition_keys([(1,), (2,)], 1)
        assert counts == [2]

    def test_partition_rows_bytes(self):
        rows = [(1, "abc"), (2, "de")]
        sizes = partition_rows(rows, [0], 4)
        assert sum(sizes) == sum(8 + 4 + len(s) for _, s in rows)

    def test_partition_blockset(self):
        blockset = BlockSet.from_rows(
            ("k",), ("v",), [((i, i * 10), 1) for i in range(200)]
        )
        sizes = partition_blockset(blockset, 4)
        assert all(s > 0 for s in sizes)
        assert skew_factor(sizes) < 1.5


class TestSkewFactor:
    def test_even_is_one(self):
        assert skew_factor([10, 10, 10, 10]) == 1.0

    def test_all_on_one_worker(self):
        assert skew_factor([40, 0, 0, 0]) == 4.0

    def test_empty_is_one(self):
        assert skew_factor([]) == 1.0
        assert skew_factor([0, 0]) == 1.0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=16))
    @settings(max_examples=50)
    def test_bounds(self, sizes):
        factor = skew_factor(sizes)
        assert 1.0 <= factor <= len(sizes) + 1e-9


class TestSkewInMetrics:
    def test_skewed_group_key_reported(self, mot_small):
        """Grouping MOT by a Zipf attribute shows real skew in the stage."""
        from repro.baav import BaaVStore
        from repro.core import Zidian
        from repro.kv import KVCluster, TaaVStore, profile
        from repro.parallel import ZidianEngine
        from repro.workloads.mot import mot_baav_schema

        cluster = KVCluster(4)
        taav = TaaVStore.from_database(mot_small, cluster)
        store = BaaVStore.map_database(mot_small, mot_baav_schema(), cluster)
        zidian = Zidian(mot_small.schema, mot_baav_schema(), store)
        plan, _ = zidian.plan(
            "select V.make, count(*) as n from VEHICLE V group by V.make"
        )
        engine = ZidianEngine(store, taav, cluster, profile("kudu"), 8)
        _, metrics = engine.execute(plan)
        group_stages = [s for s in metrics.stages if s.name == "groupk"]
        assert group_stages
        # ~40 Zipf-weighted makes over 8 workers: visibly uneven
        assert group_stages[0].skew > 1.0
