import pytest

from repro.kv.backends import CASSANDRA, HBASE, KUDU, profile
from repro.parallel.costmodel import CostModel
from repro.parallel.metrics import ExecutionMetrics, StageCost, mean_metrics


class TestBackendProfiles:
    def test_lookup(self):
        assert profile("hbase") is HBASE
        assert profile("KUDU") is KUDU
        with pytest.raises(ValueError):
            profile("mysql")

    def test_scan_cost_ordering(self):
        """Kudu scans fastest, HBase slowest — the Table 3 ordering."""
        gets, values = 100_000, 1_000_000
        times = {
            p.name: p.get_cost_ms(gets, values)
            for p in (HBASE, KUDU, CASSANDRA)
        }
        assert times["kudu"] < times["cassandra"] < times["hbase"]

    def test_transfer_scales_with_links(self):
        assert HBASE.transfer_ms(1_000_000, links=4) == pytest.approx(
            HBASE.transfer_ms(1_000_000, links=1) / 4
        )

    def test_zero_bytes_free(self):
        assert HBASE.transfer_ms(0) == 0.0


class TestCostModel:
    def model(self, workers=8, nodes=4):
        return CostModel(KUDU, workers, nodes)

    def test_fetch_stage_counts(self):
        stage = self.model().fetch_stage("scan", 100, 1000, 50_000)
        assert stage.gets == 100
        assert stage.values == 1000
        assert stage.comm_bytes == 50_000
        assert stage.time_ms > 0

    def test_fetch_with_repartition_adds_comm(self):
        without = self.model().fetch_stage("x", 10, 10, 1000)
        with_rep = self.model().fetch_stage(
            "x", 10, 10, 1000, repartition_bytes=5000
        )
        assert with_rep.comm_bytes == without.comm_bytes + 5000
        assert with_rep.time_ms > without.time_ms

    def test_parallel_scalability_of_shuffle(self):
        """More workers -> shorter shuffle (Theorem 8's speedup)."""
        few = CostModel(KUDU, 2, 4).shuffle_stage("j", 10_000_000, 1_000_000)
        many = CostModel(KUDU, 8, 4).shuffle_stage("j", 10_000_000, 1_000_000)
        assert many.time_ms < few.time_ms

    def test_storage_scalability_of_fetch(self):
        """More storage nodes -> faster scans (horizontal scalability)."""
        few = CostModel(KUDU, 8, 2).fetch_stage("s", 100_000, 100_000, 10**7)
        many = CostModel(KUDU, 8, 8).fetch_stage("s", 100_000, 100_000, 10**7)
        assert many.time_ms < few.time_ms

    def test_write_stage(self):
        stage = self.model().write_stage("w", 100, 1000, 10_000)
        assert stage.time_ms > 0
        assert stage.comm_bytes == 10_000


class TestMetrics:
    def test_add_stage_accumulates(self):
        metrics = ExecutionMetrics()
        metrics.add_stage(StageCost("a", time_ms=5, comm_bytes=10, gets=1,
                                    values=2))
        metrics.add_stage(StageCost("b", time_ms=7, comm_bytes=20, gets=3,
                                    values=4))
        assert metrics.sim_time_ms == 12
        assert metrics.comm_bytes == 30
        assert metrics.n_get == 4
        assert metrics.data_values == 6
        assert len(metrics.stages) == 2

    def test_sim_time_s(self):
        metrics = ExecutionMetrics(sim_time_ms=1500.0)
        assert metrics.sim_time_s == 1.5

    def test_summary_and_breakdown(self):
        metrics = ExecutionMetrics()
        metrics.add_stage(StageCost("scan", time_ms=3))
        assert "scan" in metrics.breakdown()
        assert "time=" in metrics.summary()

    def test_mean_metrics(self):
        a = ExecutionMetrics(sim_time_ms=10, n_get=4, comm_bytes=100)
        b = ExecutionMetrics(sim_time_ms=20, n_get=8, comm_bytes=300)
        mean = mean_metrics([a, b])
        assert mean.sim_time_ms == 15
        assert mean.n_get == 6
        assert mean.comm_bytes == 200

    def test_mean_of_empty(self):
        assert mean_metrics([]).sim_time_ms == 0
