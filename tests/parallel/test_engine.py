"""Tests for the baseline and interleaved parallel engines (§7)."""

import pytest

from repro.baav import BaaVStore
from repro.core import Zidian
from repro.kv import KVCluster, TaaVStore, profile
from repro.parallel import BaselineEngine, ZidianEngine
from repro.relational.compare import rows_bag_equal
from repro.sql import execute as ra_execute, plan_sql
from repro.sql.planner import bind, build_plan
from repro.sql.parser import parse


@pytest.fixture()
def setup(paper_db, paper_baav_schema):
    cluster = KVCluster(4)
    taav = TaaVStore.from_database(paper_db, cluster)
    store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
    zidian = Zidian(paper_db.schema, paper_baav_schema, store)
    return paper_db, cluster, taav, store, zidian


def reference_rows(db, sql):
    plan, _ = plan_sql(sql, db.schema)
    return ra_execute(plan, db).rows


class TestBaselineEngine:
    def test_correctness(self, setup, q1_sql):
        db, cluster, taav, _, _ = setup
        plan = build_plan(bind(parse(q1_sql), db.schema))
        engine = BaselineEngine(taav, cluster, profile("hbase"), 4)
        table, metrics = engine.execute(plan)
        assert rows_bag_equal(table.rows, reference_rows(db, q1_sql))

    def test_fetches_entire_relations(self, setup, q1_sql):
        """§7.1: the baseline retrieves all relations involved in Q."""
        db, cluster, taav, _, _ = setup
        plan = build_plan(bind(parse(q1_sql), db.schema))
        cluster.reset_counters()
        engine = BaselineEngine(taav, cluster, profile("hbase"), 4)
        _, metrics = engine.execute(plan)
        assert metrics.n_get == db.num_tuples()
        assert metrics.data_values == db.num_values()

    def test_job_overhead_included(self, setup, q1_sql):
        db, cluster, taav, _, _ = setup
        plan = build_plan(bind(parse(q1_sql), db.schema))
        engine = BaselineEngine(taav, cluster, profile("hbase"), 4)
        _, metrics = engine.execute(plan)
        assert metrics.stages[0].name == "job-overhead"
        assert metrics.sim_time_ms >= profile("hbase").job_overhead_ms

    def test_more_workers_faster(self, setup, q1_sql):
        db, cluster, taav, _, _ = setup
        plan = build_plan(bind(parse(q1_sql), db.schema))
        slow = BaselineEngine(taav, cluster, profile("hbase"), 1)
        _, m1 = slow.execute(plan)
        fast = BaselineEngine(taav, cluster, profile("hbase"), 16)
        _, m2 = fast.execute(plan)
        assert m2.sim_time_ms <= m1.sim_time_ms


class TestZidianEngine:
    def test_correctness(self, setup, q1_sql):
        db, cluster, taav, store, zidian = setup
        plan, _ = zidian.plan(q1_sql)
        engine = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        table, _ = engine.execute(plan)
        assert rows_bag_equal(table.rows, reference_rows(db, q1_sql))

    def test_scan_free_no_scans(self, setup, q1_sql):
        """Proposition 7(a): scan-free plans never scan a KV instance."""
        db, cluster, taav, store, zidian = setup
        plan, decision = zidian.plan(q1_sql)
        assert decision.is_scan_free
        cluster.reset_counters()
        engine = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        _, metrics = engine.execute(plan)
        # probes only: fewer gets than tuples, and no scan stages at all
        assert metrics.n_get < db.num_tuples()
        assert not any(s.name.startswith("scan") for s in metrics.stages)
        assert not any(s.name.startswith("taav") for s in metrics.stages)

    def test_communication_below_baseline(self, setup, q1_sql):
        db, cluster, taav, store, zidian = setup
        ra_plan = build_plan(bind(parse(q1_sql), db.schema))
        base = BaselineEngine(taav, cluster, profile("hbase"), 4)
        _, m_base = base.execute(ra_plan)
        plan, _ = zidian.plan(q1_sql)
        zeng = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        _, m_z = zeng.execute(plan)
        assert m_z.comm_bytes < m_base.comm_bytes

    def test_extend_stage_records_repartition(self, setup, q1_sql):
        db, cluster, taav, store, zidian = setup
        plan, _ = zidian.plan(q1_sql)
        engine = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        _, metrics = engine.execute(plan)
        extend_stages = [
            s for s in metrics.stages if s.name.startswith("extend")
        ]
        assert len(extend_stages) == 3  # N, S, PS

    def test_non_scan_free_still_correct(self, setup):
        db, cluster, taav, store, zidian = setup
        sql = "select S.nationkey, count(*) as n from SUPPLIER S group by S.nationkey"
        plan, decision = zidian.plan(sql)
        assert not decision.is_scan_free
        engine = ZidianEngine(store, taav, cluster, profile("kudu"), 4)
        table, _ = engine.execute(plan)
        assert rows_bag_equal(table.rows, reference_rows(db, sql))

    def test_parallel_scalability(self, setup, q1_sql):
        """Theorem 8: adding workers does not slow Zidian down."""
        db, cluster, taav, store, zidian = setup
        plan, _ = zidian.plan(q1_sql)
        times = []
        for p in (1, 4, 16):
            engine = ZidianEngine(store, taav, cluster, profile("kudu"), p)
            _, metrics = engine.execute(plan)
            times.append(metrics.sim_time_ms)
        assert times[2] <= times[1] <= times[0]
