"""Parallel-engine coverage for scan fallbacks and compound plans."""

import pytest

from repro.baav import BaaVSchema, BaaVStore, KVSchema
from repro.core import Zidian
from repro.kv import KVCluster, TaaVStore, profile
from repro.parallel import BaselineEngine, ZidianEngine
from repro.relational.compare import rows_bag_equal
from repro.sql import execute as ra_execute, plan_sql


class TestZidianScanFallbackMetrics:
    @pytest.fixture()
    def partial_setup(self, paper_schemas, paper_db):
        supplier, partsupp, nation = paper_schemas
        partial = BaaVSchema(
            [
                KVSchema("ps_partial", partsupp, ["suppkey"],
                         ["partkey", "supplycost"]),
            ]
        )
        cluster = KVCluster(3)
        taav = TaaVStore.from_database(paper_db, cluster)
        store = BaaVStore.map_database(paper_db, partial, cluster)
        zidian = Zidian(paper_db.schema, partial, store)
        return paper_db, cluster, taav, store, zidian

    def test_taav_fallback_counts_scan_stage(self, partial_setup):
        db, cluster, taav, store, zidian = partial_setup
        sql = "select S.suppkey, S.nationkey from SUPPLIER S"
        plan, decision = zidian.plan(sql)
        assert plan.access["S"] == "taav"
        engine = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        table, metrics = engine.execute(plan)
        ref_plan, _ = plan_sql(sql, db.schema)
        assert rows_bag_equal(table.rows, ra_execute(ref_plan, db).rows)
        assert any(s.name.startswith("taav-scan") for s in metrics.stages)
        assert metrics.n_get == len(db["SUPPLIER"])

    def test_kv_scan_fewer_gets_than_taav(self, paper_db, paper_baav_schema):
        """BaaV scans pay one get per block, not per tuple (§2)."""
        cluster = KVCluster(3)
        taav = TaaVStore.from_database(paper_db, cluster)
        store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
        zidian = Zidian(paper_db.schema, paper_baav_schema, store)
        sql = "select PS.partkey, PS.suppkey from PARTSUPP PS"
        plan, _ = zidian.plan(sql)
        assert plan.access["PS"] == "scan_kv"
        engine = ZidianEngine(store, taav, cluster, profile("hbase"), 4)
        _, metrics = engine.execute(plan)
        instance = store.instance("ps_by_sup")
        assert metrics.n_get == instance.num_blocks
        assert metrics.n_get < len(paper_db["PARTSUPP"])


class TestBaselineCompound:
    def test_union_and_difference_nodes(self, paper_db):
        cluster = KVCluster(2)
        taav = TaaVStore.from_database(paper_db, cluster)
        sql = (
            "select S.suppkey from SUPPLIER S where S.nationkey = 10 "
            "union all "
            "select S.suppkey from SUPPLIER S where S.nationkey = 20 "
            "except all "
            "select S.suppkey from SUPPLIER S where S.suppkey = 3"
        )
        ra_plan, _ = plan_sql(sql, paper_db.schema)
        engine = BaselineEngine(taav, cluster, profile("kudu"), 2)
        table, metrics = engine.execute(ra_plan)
        reference = ra_execute(ra_plan, paper_db)
        assert rows_bag_equal(table.rows, reference.rows)
        assert any(s.name == "union" for s in metrics.stages)
        assert any(s.name == "difference" for s in metrics.stages)


class TestWorkerScaling:
    def test_single_worker_allowed(self, paper_db, paper_baav_schema, q1_sql):
        cluster = KVCluster(1)
        taav = TaaVStore.from_database(paper_db, cluster)
        store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
        zidian = Zidian(paper_db.schema, paper_baav_schema, store)
        plan, _ = zidian.plan(q1_sql)
        engine = ZidianEngine(store, taav, cluster, profile("cassandra"), 1)
        table, metrics = engine.execute(plan)
        ref_plan, _ = plan_sql(q1_sql, paper_db.schema)
        assert rows_bag_equal(table.rows, ra_execute(ref_plan, paper_db).rows)
        assert metrics.workers == 1
