"""Frame codec edge cases + to_frame()/from_frame() round trips (PR 10)."""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baav import ColumnFrame, select_mask
from repro.baav.block import Block
from repro.baav.frame import _pack_column, _unpack_column
from repro.errors import ExecutionError


class TestPackColumn:
    def test_pure_ints_pack_as_int64_array(self):
        column, mask = _pack_column([1, 2, 3])
        assert isinstance(column, array) and column.typecode == "q"
        assert mask is None

    def test_pure_floats_pack_as_double_array(self):
        column, mask = _pack_column([1.5, -2.0])
        assert isinstance(column, array) and column.typecode == "d"
        assert mask is None

    def test_mixed_numeric_stays_list(self):
        """int+float would coerce in an array and break the round trip."""
        column, mask = _pack_column([1, 2.5])
        assert isinstance(column, list)
        assert _unpack_column(column, mask) == [1, 2.5]
        assert type(_unpack_column(column, mask)[0]) is int

    def test_bool_is_not_an_int(self):
        """bools stay bools: no array('q') coercion to 0/1 ints."""
        column, _ = _pack_column([True, False])
        assert isinstance(column, list)
        assert _unpack_column(column, None) == [True, False]

    def test_nulls_hide_behind_validity_mask(self):
        column, mask = _pack_column([7, None, 9])
        assert isinstance(column, array) and column.typecode == "q"
        assert mask == [True, False, True]
        assert _unpack_column(column, mask) == [7, None, 9]

    def test_all_null_column_stays_raw_list(self):
        column, mask = _pack_column([None, None])
        assert isinstance(column, list)
        assert mask == [False, False]
        assert _unpack_column(column, mask) == [None, None]

    def test_int64_overflow_falls_back_to_list(self):
        big = 2**63
        column, _ = _pack_column([1, big])
        assert isinstance(column, list)
        assert _unpack_column(column, None) == [1, big]

    def test_strings_stay_list(self):
        column, mask = _pack_column(["a", None])
        assert isinstance(column, list)
        assert _unpack_column(column, mask) == ["a", None]


class TestColumnFrame:
    def test_round_trip_preserves_entries(self):
        entries = [((1, "a", 2.5), 1), ((2, None, 0.5), 3)]
        frame = ColumnFrame.from_entries(("x", "y", "z"), entries)
        assert frame.to_entries() == entries

    def test_empty_frame(self):
        frame = ColumnFrame.from_entries(("x",), [])
        assert frame.n == 0
        assert frame.num_tuples == 0
        assert frame.num_values() == 0
        assert frame.to_entries() == []

    def test_zero_width_frame_keeps_counts(self):
        frame = ColumnFrame.from_entries((), [((), 2), ((), 1)])
        assert frame.num_tuples == 3
        assert frame.to_entries() == [((), 2), ((), 1)]

    def test_single_tuple_frame(self):
        frame = ColumnFrame.from_entries(("x",), [((42,), 1)])
        assert frame.n == 1 and frame.num_tuples == 1
        assert list(frame.values(0)) == [42]

    def test_counts_carry_multiplicities(self):
        frame = ColumnFrame.from_entries(("x",), [((1,), 4), ((2,), 2)])
        assert frame.n == 2
        assert frame.num_tuples == 6

    def test_width_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            ColumnFrame.from_entries(("x", "y"), [((1,), 1)])

    def test_column_length_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            ColumnFrame(("x",), [[1, 2]], [None], [1])

    def test_values_decodes_masked_slots(self):
        frame = ColumnFrame.from_entries(("x",), [((5,), 1), ((None,), 1)])
        column, mask = frame.dense(0)
        assert isinstance(column, array)
        assert mask == [True, False]
        assert frame.values(0) == [5, None]


class TestBlockFrameBridge:
    def test_block_to_frame_round_trip(self):
        block = Block.from_rows([(1, "a"), (1, "a"), (2, None)])
        frame = block.to_frame(("x", "y"))
        back = Block.from_frame(frame)
        assert back.entries == block.entries

    def test_to_frame_generates_names_when_omitted(self):
        block = Block.from_rows([(1, "a")])
        frame = block.to_frame()
        assert frame.attrs == ("c0", "c1")

    def test_empty_block_round_trip(self):
        block = Block()
        assert Block.from_frame(block.to_frame()).entries == []

    def test_select_mask_kernel_respects_counts(self):
        block = Block.from_rows([(1,), (1,), (2,), (3,)])
        frame = block.to_frame(("x",))
        kept = select_mask(frame, [True, False, True][: frame.n])
        assert list(Block.from_frame(kept).expand()) == [(1,), (1,), (3,)]


values_strategy = st.one_of(
    st.none(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.floats(allow_nan=False),
    st.booleans(),
    st.text(max_size=4),
)


@given(
    st.lists(
        st.tuples(
            st.tuples(values_strategy, values_strategy),
            st.integers(min_value=1, max_value=4),
        ),
        max_size=12,
    )
)
def test_round_trip_property(entries):
    """from_entries → to_entries is the identity, types included."""
    frame = ColumnFrame.from_entries(("x", "y"), entries)
    back = frame.to_entries()
    assert back == entries
    assert [
        [type(v) for v in row] for row, _ in back
    ] == [[type(v) for v in row] for row, _ in entries]
