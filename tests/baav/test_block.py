import pytest

from repro.baav.block import Block, split_block


class TestBlockConstruction:
    def test_from_rows_compressed(self):
        block = Block.from_rows([(1, "a"), (1, "a"), (2, "b")])
        assert block.num_entries == 2
        assert block.num_tuples == 3

    def test_from_rows_uncompressed(self):
        block = Block.from_rows([(1, "a"), (1, "a")], compress=False)
        assert block.num_entries == 2
        assert block.num_tuples == 2

    def test_expand_restores_bag(self):
        rows = [(1,), (1,), (2,), (1,)]
        block = Block.from_rows(rows)
        assert sorted(block.expand()) == sorted(rows)

    def test_num_values(self):
        block = Block.from_rows([(1, "a"), (2, "b")])
        assert block.num_values() == 4

    def test_empty(self):
        block = Block()
        assert block.num_values() == 0
        assert block.num_tuples == 0


class TestBlockMutation:
    def test_add_compressed_increments_count(self):
        block = Block.from_rows([(1,)])
        block.add((1,))
        assert block.num_entries == 1
        assert block.num_tuples == 2

    def test_add_uncompressed_appends(self):
        block = Block.from_rows([(1,)], compress=False)
        block.add((1,), compress=False)
        assert block.num_entries == 2

    def test_remove(self):
        block = Block.from_rows([(1,), (1,), (2,)])
        assert block.remove((1,)) == 1
        assert block.num_tuples == 2
        assert block.remove((1,)) == 1
        assert block.remove((1,)) == 0
        assert sorted(block.expand()) == [(2,)]


class TestBlockStats:
    def test_numeric_stats(self):
        block = Block.from_rows([(1, 10.0), (2, 20.0), (2, 20.0)])
        stats = block.stats(["a", "b"])
        assert stats["a"].minimum == 1 and stats["a"].maximum == 2
        assert stats["b"].total == 50.0
        assert stats["b"].count == 3
        assert stats["b"].average == pytest.approx(50.0 / 3)

    def test_multiplicity_counts(self):
        block = Block([((5,), 3)])
        stats = block.stats(["a"])
        assert stats["a"].total == 15
        assert stats["a"].count == 3

    def test_non_numeric_skipped(self):
        block = Block.from_rows([("x", 1)])
        stats = block.stats(["s", "n"])
        assert "s" not in stats and "n" in stats

    def test_nulls_skipped(self):
        block = Block.from_rows([(None,), (3,)])
        stats = block.stats(["a"])
        assert stats["a"].count == 1 and stats["a"].total == 3


class TestBlockCodec:
    def test_roundtrip(self):
        block = Block.from_rows([(1, "a"), (1, "a"), (None, "b")])
        assert Block.decode(block.encode()) == block


class TestSplitBlock:
    def test_no_split_needed(self):
        block = Block.from_rows([(1,), (2,)])
        assert split_block(block, 10) == [block]

    def test_split_bounds_segments(self):
        block = Block.from_rows([(i,) for i in range(25)])
        segments = split_block(block, 10)
        assert len(segments) == 3
        assert all(s.num_tuples <= 10 for s in segments)

    def test_split_preserves_bag(self):
        rows = [(i % 4,) for i in range(23)]
        block = Block.from_rows(rows)
        segments = split_block(block, 5)
        merged = [r for s in segments for r in s.expand()]
        assert sorted(merged) == sorted(rows)

    def test_split_breaks_large_multiplicity(self):
        block = Block([((7,), 12)])
        segments = split_block(block, 5)
        assert len(segments) == 3
        assert sum(s.num_tuples for s in segments) == 12

    def test_zero_threshold_means_no_split(self):
        block = Block.from_rows([(i,) for i in range(100)])
        assert split_block(block, 0) == [block]
