import pytest

from repro.baav import BaaVSchema, KVSchema, kv_schema, taav_equivalent_schema
from repro.errors import SchemaError
from repro.relational import AttrType, RelationSchema


@pytest.fixture()
def rel():
    return RelationSchema.of(
        "R",
        {"a": AttrType.INT, "b": AttrType.STR, "c": AttrType.FLOAT},
        ["a"],
    )


class TestKVSchema:
    def test_basic(self, rel):
        s = KVSchema("r_by_b", rel, ["b"], ["a", "c"])
        assert s.key == ("b",)
        assert s.value == ("a", "c")
        assert s.attributes == ("b", "a", "c")
        assert s.width == 3

    def test_arbitrary_attr_as_key(self, rel):
        """The defining BaaV liberty: non-pk attributes can be keys."""
        s = KVSchema("x", rel, ["c"], ["a"])
        assert s.key == ("c",)

    def test_pk_inherited_when_contained(self, rel):
        s = KVSchema("x", rel, ["b"], ["a", "c"])
        assert s.primary_key == ("a",)

    def test_pk_defaults_to_xy(self, rel):
        s = KVSchema("x", rel, ["b"], ["c"])
        assert set(s.primary_key) == {"b", "c"}

    def test_explicit_pk(self, rel):
        s = KVSchema("x", rel, ["b"], ["a", "c"], primary_key=["a"])
        assert s.primary_key == ("a",)

    def test_explicit_pk_outside_xy_rejected(self, rel):
        with pytest.raises(SchemaError):
            KVSchema("x", rel, ["b"], ["c"], primary_key=["a"])

    def test_unknown_attr_rejected(self, rel):
        with pytest.raises(SchemaError):
            KVSchema("x", rel, ["nope"], ["a"])

    def test_key_value_overlap_rejected(self, rel):
        with pytest.raises(SchemaError):
            KVSchema("x", rel, ["a"], ["a", "b"])

    def test_empty_key_rejected(self, rel):
        with pytest.raises(SchemaError):
            KVSchema("x", rel, [], ["a"])

    def test_covers(self, rel):
        s = KVSchema("x", rel, ["b"], ["a"])
        assert s.covers({"a", "b"})
        assert not s.covers({"c"})

    def test_kv_schema_helper_defaults_value(self, rel):
        s = kv_schema("x", rel, ["b"])
        assert set(s.value) == {"a", "c"}

    def test_taav_equivalent(self, rel):
        s = taav_equivalent_schema(rel)
        assert s.key == ("a",)
        assert set(s.value) == {"b", "c"}


class TestBaaVSchema:
    def test_add_iter(self, rel):
        schema = BaaVSchema([kv_schema("x", rel, ["b"])])
        assert len(schema) == 1
        assert "x" in schema
        assert schema.get("x").key == ("b",)

    def test_duplicate_name_rejected(self, rel):
        schema = BaaVSchema([kv_schema("x", rel, ["b"])])
        with pytest.raises(SchemaError):
            schema.add(kv_schema("x", rel, ["c"]))

    def test_over_relation(self, rel):
        other = RelationSchema.of("S", {"z": AttrType.INT}, ["z"])
        schema = BaaVSchema(
            [
                kv_schema("x", rel, ["b"]),
                kv_schema("y", rel, ["c"]),
            ]
        )
        assert len(schema.over_relation("R")) == 2
        assert schema.over_relation("S") == []

    def test_total_attributes(self, rel):
        schema = BaaVSchema([kv_schema("x", rel, ["b"])])
        assert schema.total_attributes() == 3

    def test_unknown_get(self, rel):
        with pytest.raises(SchemaError):
            BaaVSchema().get("nope")
