import pytest

from repro.baav import BaaVSchema, BaaVStore, kv_schema
from repro.kv import KVCluster
from repro.relational import AttrType, Database, RelationSchema


class TestKVInstance:
    def test_mapping_groups_by_key(self, paper_store):
        inst = paper_store.instance("sup_by_nation")
        block = inst.get((10,))
        assert sorted(block.expand()) == [(1,), (2,)]

    def test_get_missing_key(self, paper_store):
        assert paper_store.instance("sup_by_nation").get((99,)) is None

    def test_get_counts_one_get_per_block(self, paper_store, cluster):
        cluster.reset_counters()
        paper_store.instance("sup_by_nation").get((10,))
        assert cluster.total_counters().gets == 1

    def test_degree(self, paper_store):
        # nationkey 10 has suppliers {1, 2} -> degree 2
        assert paper_store.instance("sup_by_nation").degree == 2
        # suppkey 1 supplies partkeys {100, 200} -> degree 2
        assert paper_store.instance("ps_by_sup").degree == 2

    def test_store_degree_is_max(self, paper_store):
        assert paper_store.degree() == 2

    def test_relational_version_roundtrip(self, paper_store, paper_db):
        """D̃'s relational version equals the projection of D (§4.1)."""
        inst = paper_store.instance("ps_by_sup")
        version = inst.relational_version()
        expected = paper_db["PARTSUPP"].project(
            ["suppkey", "partkey", "supplycost", "availqty"]
        )
        assert sorted(version.rows) == sorted(expected)

    def test_scan_counts_gets_per_block(self, paper_store, cluster):
        inst = paper_store.instance("sup_by_nation")
        cluster.reset_counters()
        blocks = list(inst.scan())
        assert len(blocks) == inst.num_blocks
        assert cluster.total_counters().gets == inst.num_blocks

    def test_keys(self, paper_store):
        keys = paper_store.instance("nation_by_name").keys()
        assert sorted(keys) == [("FRANCE",), ("GERMANY",)]

    def test_stats_sidecar(self, paper_store, cluster):
        inst = paper_store.instance("ps_by_sup")
        stats = inst.get_stats((1,))
        assert stats["supplycost"].total == pytest.approx(7.0)
        assert stats["availqty"].count == 2

    def test_blocks_merge_duplicate_nation_names(self, paper_store):
        # GERMANY appears for nationkeys 10 and 30
        block = paper_store.instance("nation_by_name").get(("GERMANY",))
        assert sorted(block.expand()) == [(10,), (30,)]


class TestSplitting:
    def make_store(self, split_threshold):
        schema = RelationSchema.of(
            "R", {"g": AttrType.INT, "v": AttrType.INT}, []
        )
        rows = [(1, i) for i in range(25)] + [(2, 99)]
        db = Database.from_dict([schema], {"R": rows})
        baav = BaaVSchema([kv_schema("r_by_g", schema, ["g"])])
        return db, BaaVStore.map_database(
            db, baav, KVCluster(3), split_threshold=split_threshold
        )

    def test_oversized_block_splits(self):
        db, store = self.make_store(split_threshold=10)
        inst = store.instance("r_by_g")
        block = inst.get((1,))
        assert block.num_tuples == 25

    def test_split_get_counts_per_segment(self):
        db, store = self.make_store(split_threshold=10)
        inst = store.instance("r_by_g")
        store.cluster.reset_counters()
        inst.get((1,))
        assert store.cluster.total_counters().gets == 3  # ceil(25/10)

    def test_split_preserves_relational_version(self):
        db, store = self.make_store(split_threshold=7)
        version = store.instance("r_by_g").relational_version()
        assert sorted(version.rows) == sorted(db["R"].rows)

    def test_recompute_degree(self):
        db, store = self.make_store(split_threshold=10)
        inst = store.instance("r_by_g")
        assert inst.recompute_degree() == 25


class TestCompression:
    def test_compression_dedupes(self):
        schema = RelationSchema.of(
            "R", {"g": AttrType.INT, "v": AttrType.STR}, []
        )
        rows = [(1, "x")] * 50 + [(1, "y")]
        db = Database.from_dict([schema], {"R": rows})
        baav = BaaVSchema([kv_schema("r", schema, ["g"])])
        compressed = BaaVStore.map_database(db, baav, KVCluster(2))
        raw = BaaVStore.map_database(
            db, baav, KVCluster(2), compress=False
        )
        inst_c = compressed.instance("r")
        inst_r = raw.instance("r")
        assert inst_c.get((1,)).num_entries == 2
        assert inst_r.get((1,)).num_entries == 51
        # bag semantics preserved either way
        assert sorted(inst_c.get((1,)).expand()) == sorted(
            inst_r.get((1,)).expand()
        )

    def test_compression_shrinks_storage(self):
        schema = RelationSchema.of(
            "R", {"g": AttrType.INT, "v": AttrType.STR}, []
        )
        rows = [(1, "xyz")] * 200
        db = Database.from_dict([schema], {"R": rows})
        baav = BaaVSchema([kv_schema("r", schema, ["g"])])
        compressed = BaaVStore.map_database(db, baav, KVCluster(2))
        raw = BaaVStore.map_database(db, baav, KVCluster(2), compress=False)
        assert compressed.instance("r").size_bytes() < raw.instance(
            "r"
        ).size_bytes() / 10
