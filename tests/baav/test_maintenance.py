import pytest

from repro.baav import BaaVSchema, BaaVStore, Maintainer, kv_schema
from repro.kv import KVCluster
from repro.relational import AttrType, Database, RelationSchema


@pytest.fixture()
def setup(paper_db, paper_baav_schema):
    cluster = KVCluster(3)
    store = BaaVStore.map_database(paper_db, paper_baav_schema, cluster)
    return store, Maintainer(store), cluster


class TestInsert:
    def test_insert_new_key(self, setup):
        store, maintainer, _ = setup
        maintainer.insert("SUPPLIER", [(9, 40)])
        block = store.instance("sup_by_nation").get((40,))
        assert sorted(block.expand()) == [(9,)]

    def test_insert_existing_key(self, setup):
        store, maintainer, _ = setup
        maintainer.insert("SUPPLIER", [(9, 10)])
        block = store.instance("sup_by_nation").get((10,))
        assert sorted(block.expand()) == [(1,), (2,), (9,)]

    def test_insert_updates_degree(self, setup):
        store, maintainer, _ = setup
        maintainer.insert("SUPPLIER", [(9, 10), (11, 10)])
        assert store.instance("sup_by_nation").degree == 4

    def test_insert_only_touches_affected_relation(self, setup):
        store, maintainer, _ = setup
        before = store.instance("ps_by_sup").num_tuples
        maintainer.insert("SUPPLIER", [(9, 10)])
        assert store.instance("ps_by_sup").num_tuples == before

    def test_insert_work_independent_of_db_size(self, setup):
        """O(|Δ|·deg) maintenance: cost doesn't scan the store."""
        store, maintainer, cluster = setup
        cluster.reset_counters()
        maintainer.insert("SUPPLIER", [(9, 10)])
        counters = cluster.total_counters()
        # a handful of reads and writes, nowhere near a table scan
        assert counters.gets + counters.puts < 10

    def test_insert_refreshes_stats(self, setup):
        store, maintainer, _ = setup
        maintainer.insert("PARTSUPP", [(400, 1, 100.0, 50)])
        stats = store.instance("ps_by_sup").get_stats((1,))
        assert stats["supplycost"].maximum == 100.0


class TestDelete:
    def test_delete_row(self, setup):
        store, maintainer, _ = setup
        maintainer.delete("SUPPLIER", [(1, 10)])
        block = store.instance("sup_by_nation").get((10,))
        assert sorted(block.expand()) == [(2,)]

    def test_delete_last_row_removes_block(self, setup):
        store, maintainer, _ = setup
        maintainer.delete("SUPPLIER", [(3, 20)])
        assert store.instance("sup_by_nation").get((20,)) is None

    def test_delete_missing_row_noop(self, setup):
        store, maintainer, _ = setup
        before = store.instance("sup_by_nation").num_tuples
        maintainer.delete("SUPPLIER", [(99, 10)])
        assert store.instance("sup_by_nation").num_tuples == before

    def test_insert_then_delete_roundtrip(self, setup, paper_db):
        store, maintainer, _ = setup
        maintainer.insert("SUPPLIER", [(9, 10)])
        maintainer.delete("SUPPLIER", [(9, 10)])
        version = store.instance("sup_by_nation").relational_version()
        expected = paper_db["SUPPLIER"].project(["nationkey", "suppkey"])
        assert sorted(version.rows) == sorted(expected)


class TestTouchedBlockCount:
    """Regression: insert/delete promised "touched block count" but
    returned rows × instances; they now return *distinct* touched blocks."""

    def test_insert_same_block_counted_once(self, setup):
        store, maintainer, _ = setup
        # both rows land in sup_by_nation block (10,): one touched block
        assert maintainer.insert("SUPPLIER", [(9, 10), (11, 10)]) == 1

    def test_insert_distinct_blocks(self, setup):
        store, maintainer, _ = setup
        assert maintainer.insert("SUPPLIER", [(9, 10), (11, 40)]) == 2

    def test_insert_counts_blocks_across_instances(
        self, paper_db, paper_schemas
    ):
        supplier, _, _ = paper_schemas
        baav = BaaVSchema(
            [
                kv_schema("sup_by_nation", supplier, ["nationkey"]),
                kv_schema("sup_by_key", supplier, ["suppkey"]),
            ]
        )
        store = BaaVStore.map_database(paper_db, baav, KVCluster(2))
        maintainer = Maintainer(store)
        # one row touches one block in each of the two SUPPLIER instances
        assert maintainer.insert("SUPPLIER", [(9, 10)]) == 2

    def test_delete_counts_only_modified_blocks(self, setup):
        store, maintainer, _ = setup
        # (1,10) and (2,10) share block (10,): one distinct touched block
        assert maintainer.delete("SUPPLIER", [(1, 10), (2, 10)]) == 1

    def test_delete_missing_row_touches_nothing(self, setup):
        store, maintainer, _ = setup
        assert maintainer.delete("SUPPLIER", [(99, 10)]) == 0


class TestSegmentedMaintenance:
    def test_insert_splits_when_over_threshold(self):
        schema = RelationSchema.of(
            "R", {"g": AttrType.INT, "v": AttrType.INT}, ["v"]
        )
        db = Database.from_dict(
            [schema], {"R": [(1, i) for i in range(9)]}
        )
        baav = BaaVSchema([kv_schema("r", schema, ["g"])])
        store = BaaVStore.map_database(
            db, baav, KVCluster(2), split_threshold=5
        )
        maintainer = Maintainer(store)
        for v in range(9, 14):
            maintainer.insert("R", [(1, v)])
        block = store.instance("r").get((1,))
        assert sorted(block.expand()) == [(v,) for v in range(14)]

    def test_maintained_equals_rebuilt(self, paper_db, paper_baav_schema):
        """Incremental maintenance == rebuild from the updated database."""
        store = BaaVStore.map_database(
            paper_db, paper_baav_schema, KVCluster(2)
        )
        maintainer = Maintainer(store)
        maintainer.insert("PARTSUPP", [(500, 2, 9.0, 3)])
        maintainer.delete("PARTSUPP", [(100, 1, 5.0, 7)])

        updated = paper_db.copy()
        updated.relation("PARTSUPP").rows.remove((100, 1, 5.0, 7))
        updated.insert("PARTSUPP", (500, 2, 9.0, 3))
        rebuilt = BaaVStore.map_database(
            updated, paper_baav_schema, KVCluster(2)
        )
        got = store.instance("ps_by_sup").relational_version()
        want = rebuilt.instance("ps_by_sup").relational_version()
        assert sorted(got.rows) == sorted(want.rows)
