"""Compiled kernels ≡ ``Expr.eval`` + fusion + knob plumbing (PR 10)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CompileError, ExecutionError
from repro.kba import (
    BlockSet,
    Constant,
    ExecContext,
    ProjectK,
    SelectK,
    execute,
    resolve_vectorized,
)
from repro.kba.compile import compile_mask, compile_plan, compile_row
from repro.kba.executor import VECTORIZED_ENV
from repro.sql import ast


def col(name):
    return ast.Column(name)


def lit(value):
    return ast.Lit(value)


ATTRS = ("a", "b", "s")
ROWS = [
    (1, 10, "apple"),
    (2, None, "banana"),
    (None, 30, None),
    (4, 4, "avocado"),
]

EXPRS = [
    ast.Cmp(">", col("a"), lit(1)),
    ast.Cmp("=", lit(2), col("a")),
    ast.Cmp("<=", col("a"), col("b")),
    ast.Cmp(">", col("a"), lit(None)),
    ast.And([ast.Cmp(">", col("a"), lit(0)), ast.Cmp("<", col("b"), lit(20))]),
    ast.Or([ast.Cmp("=", col("a"), lit(4)), ast.Cmp("=", col("b"), lit(30))]),
    ast.Not(ast.Cmp(">", col("a"), lit(2))),
    ast.Arith("+", col("a"), col("b")),
    ast.Arith("/", col("a"), lit(0)),
    ast.Arith("*", col("a"), lit(3)),
    ast.Neg(col("a")),
    ast.InList(col("a"), [1, 4]),
    ast.InList(col("s"), ["apple", "pear"]),
    ast.Between(col("a"), lit(1), lit(3)),
    ast.Like(col("s"), "a%"),
    ast.Like(col("s"), "_anana"),
    ast.And([lit(True), ast.Cmp(">", col("a"), lit(1))]),
    ast.Or([lit(False), ast.Cmp(">", col("a"), lit(1))]),
    lit(7),
]


def frame_of(rows):
    bs = BlockSet.constant(ATTRS, rows)
    from repro.baav.frame import BlockSetFrame

    return BlockSetFrame(bs)


class TestCompiledEqualsEval:
    """NULL semantics included: compiled output == eval output, exactly."""

    @pytest.mark.parametrize("expr", EXPRS, ids=str)
    def test_row_closure_matches_eval(self, expr):
        fn = compile_row(expr, ATTRS)
        for row in ROWS:
            expected = expr.eval(dict(zip(ATTRS, row)))
            assert fn(row) == expected, f"{expr} on {row}"

    @pytest.mark.parametrize("expr", EXPRS, ids=str)
    def test_mask_kernel_matches_eval(self, expr):
        fn = compile_mask(expr, ATTRS)
        out = list(fn(frame_of(ROWS)))
        expected = [expr.eval(dict(zip(ATTRS, row))) for row in ROWS]
        assert out == expected, str(expr)

    def test_unbound_column_raises_compile_error(self):
        with pytest.raises(CompileError):
            compile_row(col("missing"), ATTRS)
        with pytest.raises(CompileError):
            compile_mask(col("missing"), ATTRS)

    def test_aggregate_call_raises_compile_error(self):
        agg = ast.AggCall("SUM", col("a"))
        with pytest.raises(CompileError):
            compile_row(agg, ATTRS)


@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-5, 5)),
            st.one_of(st.none(), st.integers(-5, 5)),
            st.one_of(st.none(), st.sampled_from(["ab", "ba", ""])),
        ),
        max_size=8,
        unique=True,
    ),
    st.sampled_from(EXPRS),
)
def test_compiled_matches_eval_property(rows, expr):
    fn = compile_row(expr, ATTRS)
    mask_fn = compile_mask(expr, ATTRS)
    expected = [expr.eval(dict(zip(ATTRS, row))) for row in rows]
    assert [fn(row) for row in rows] == expected
    assert list(mask_fn(frame_of(rows))) == expected


class TestPlanCompilation:
    def plan(self):
        leaf = Constant(ATTRS, tuple(ROWS))
        return ProjectK(
            SelectK(leaf, ast.Cmp(">", col("a"), lit(1))), ("a", "s")
        )

    def test_fused_select_project_matches_row_path(self):
        plan = self.plan()
        row_out = execute(plan, ExecContext(None, vectorized=False))
        vec_out = execute(plan, ExecContext(None, vectorized=True))
        assert row_out.attrs == vec_out.attrs
        assert row_out.data == vec_out.data

    def test_fusion_survives_uncompilable_predicate(self):
        """CompileError inside the fused pair falls back per-operator."""
        leaf = Constant(ATTRS, tuple(ROWS))
        plan = ProjectK(
            SelectK(leaf, ast.Cmp(">", col("zzz.not_here"), lit(1))),
            ("a",),
        )
        row_ctx = ExecContext(None, vectorized=False)
        vec_ctx = ExecContext(None, vectorized=True)
        with pytest.raises(ExecutionError):
            execute(plan, row_ctx)
        with pytest.raises(ExecutionError):
            execute(plan, vec_ctx)

    def test_compile_plan_is_reusable(self):
        fn = compile_plan(self.plan())
        ctx = ExecContext(None, vectorized=True)
        assert fn(ctx).data == fn(ctx).data


class TestKnobs:
    def test_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(VECTORIZED_ENV, "1")
        assert resolve_vectorized(False) is False
        monkeypatch.setenv(VECTORIZED_ENV, "0")
        assert resolve_vectorized(True) is True

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(VECTORIZED_ENV, "1")
        assert resolve_vectorized(None) is True
        monkeypatch.setenv(VECTORIZED_ENV, "0")
        assert resolve_vectorized(None) is False
        monkeypatch.setenv(VECTORIZED_ENV, "")
        assert resolve_vectorized(None) is False

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(VECTORIZED_ENV, raising=False)
        assert resolve_vectorized(None) is False
        assert ExecContext(None).vectorized is False

    def test_context_resolves_flag(self, monkeypatch):
        monkeypatch.setenv(VECTORIZED_ENV, "1")
        assert ExecContext(None).vectorized is True
        assert ExecContext(None, vectorized=False).vectorized is False

    def test_batch_partitions_below_one_rejected(self):
        with pytest.raises(ExecutionError):
            ExecContext(None, batch_partitions=0)
        with pytest.raises(ExecutionError):
            ExecContext(None, batch_partitions=-2)

    def test_batch_size_below_one_rejected(self):
        with pytest.raises(ExecutionError):
            ExecContext(None, batch_size=0)
