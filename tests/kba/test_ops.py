"""KBA operator tests, including the paper's Example 2."""

import pytest

from repro.baav import BaaVSchema, BaaVStore, kv_schema
from repro.kba import (
    Constant,
    CopyK,
    DifferenceK,
    ExecContext,
    Extend,
    GroupK,
    JoinK,
    ProjectK,
    ScanKV,
    SelectK,
    Shift,
    TaaVScan,
    UnionK,
    execute,
)
from repro.kv import KVCluster
from repro.relational import AttrType, Database, RelationSchema
from repro.sql import ast
from repro.sql.algebra import AggSpec


@pytest.fixture()
def example2():
    """Example 2: R1<A,B>, R2<B,C>, R3<A,C>."""
    r1 = RelationSchema.of("T1", {"A": AttrType.INT, "B": AttrType.INT})
    r2 = RelationSchema.of("T2", {"B": AttrType.INT, "C": AttrType.INT})
    r3 = RelationSchema.of("T3", {"A": AttrType.INT, "C": AttrType.INT})
    db = Database.from_dict(
        [r1, r2, r3],
        {
            "T1": [(1, 2), (2, 1)],
            "T2": [(2, 1), (2, 3), (1, 3)],
            "T3": [(1, 1), (2, 3), (3, 2)],
        },
    )
    baav = BaaVSchema(
        [
            kv_schema("R1", r1, ["A"]),
            kv_schema("R2", r2, ["B"]),
            kv_schema("R3", r3, ["A"]),
        ]
    )
    cluster = KVCluster(2)
    store = BaaVStore.map_database(db, baav, cluster)
    return ExecContext(store), cluster


class TestExtend:
    def test_example2_extension(self, example2):
        """R1 ∝ R2 = mapping of R1 ⋈_B R2 on <AB, C>."""
        ctx, _ = example2
        plan = Extend(
            ScanKV("R1", "r1"), "R2", "r2", (("r1.B", "B"),)
        )
        out = execute(plan, ctx)
        assert out.key_attrs == ("r1.A", "r1.B")
        assert out.value_attrs == ("r2.C",)
        got = sorted(out.iter_full())
        assert got == [
            ((1, 2, 1), 1),
            ((1, 2, 3), 1),
            ((2, 1, 3), 1),
        ]

    def test_extend_never_scans_right_operand(self, example2):
        """∝ fetches only probed blocks of its parameter."""
        ctx, cluster = example2
        base = Constant(("r1.B",), ((2,),))
        cluster.reset_counters()
        execute(Extend(base, "R2", "r2", (("r1.B", "B"),)), ctx)
        # exactly one probe for key 2; key 1 of R2 untouched
        assert cluster.total_counters().gets == 1

    def test_extend_missing_key_drops_row(self, example2):
        ctx, _ = example2
        base = Constant(("r1.B",), ((99,),))
        out = execute(Extend(base, "R2", "r2", (("r1.B", "B"),)), ctx)
        assert out.num_tuples() == 0

    def test_extend_dedupes_probes(self, example2):
        ctx, cluster = example2
        base = Constant(("x",), ((2,),))
        doubled = UnionK(base, Constant(("x",), ((2,),)))
        cluster.reset_counters()
        execute(Extend(doubled, "R2", "r2", (("x", "B"),)), ctx)
        assert cluster.total_counters().gets == 1

    def test_extend_multiplicities(self, example2):
        ctx, _ = example2
        base = Constant(("x",), ((2,),))
        chained = Extend(base, "R2", "r2", (("x", "B"),))
        out = execute(chained, ctx)
        # key 2 has two C values
        assert out.num_tuples() == 2

    def test_expose_key(self, example2):
        ctx, _ = example2
        base = Constant(("x",), ((2,),))
        plan = Extend(
            base, "R2", "r2", (("x", "B"),), expose_key=(("B", "r2.B"),)
        )
        out = execute(plan, ctx)
        assert "r2.B" in out.attrs
        assert all(row[out.position("r2.B")] == 2 for row in out.expand())

    def test_value_rename(self, example2):
        ctx, _ = example2
        base = Constant(("x",), ((2,),))
        plan = Extend(
            base, "R2", "r2", (("x", "B"),), value_rename=(("C", "tmp"),)
        )
        out = execute(plan, ctx)
        assert "tmp" in out.attrs


class TestJoinShift:
    def test_example2_shift_then_join(self, example2):
        """(R1 ∝ R2) ↑ A ⋈_{A,C} R3 = {(1,{(1,1)}), (2,{(3,3)})} keys."""
        ctx, _ = example2
        r4 = Extend(ScanKV("R1", "r1"), "R2", "r2", (("r1.B", "B"),))
        r5 = Shift(r4, ("r1.A",))
        joined = JoinK(
            r5,
            ScanKV("R3", "r3"),
            (("r1.A", "r3.A"), ("r2.C", "r3.C")),
        )
        out = execute(joined, ctx)
        rows = sorted(out.expand())
        # key (A from r5, A from r3): tuples (1,...,1) and (2,...,3)
        assert len(rows) == 2
        a_pos = out.position("r1.A")
        c_pos = out.position("r2.C")
        assert sorted((r[a_pos], r[c_pos]) for r in rows) == [(1, 1), (2, 3)]

    def test_join_multiplicities_multiply(self):
        left = Constant(("x",), ((1,),))
        from repro.kba.blockset import BlockSet

        # join two block sets with counts 2 and 3 -> 6
        from repro.kba.executor import join_blocksets

        l = BlockSet.from_rows((), ("a",), [((1,), 2)])
        r = BlockSet.from_rows((), ("b",), [((1,), 3)])
        out = join_blocksets(l, r, (("a", "b"),))
        assert out.num_tuples() == 6

    def test_join_residual(self):
        from repro.kba.blockset import BlockSet
        from repro.kba.executor import join_blocksets

        l = BlockSet.from_rows((), ("a",), [((1,), 1), ((2,), 1)])
        r = BlockSet.from_rows((), ("b", "c"), [((1, 5), 1), ((1, 9), 1)])
        residual = ast.Cmp(">", ast.Column("c"), ast.Lit(6))
        out = join_blocksets(l, r, (("a", "b"),), residual)
        assert sorted(out.expand()) == [(1, 1, 9)]


class TestSelectProjectCopy:
    def test_select(self, example2):
        ctx, _ = example2
        pred = ast.Cmp(">", ast.Column("r1.B"), ast.Lit(1))
        out = execute(SelectK(ScanKV("R1", "r1"), pred), ctx)
        assert sorted(out.expand()) == [(1, 2)]

    def test_select_drops_empty_blocks(self, example2):
        ctx, _ = example2
        pred = ast.Cmp("=", ast.Column("r1.B"), ast.Lit(99))
        out = execute(SelectK(ScanKV("R1", "r1"), pred), ctx)
        assert out.num_blocks == 0

    def test_project_merges_counts(self, example2):
        ctx, _ = example2
        out = execute(
            ProjectK(ScanKV("R2", "r2"), ("r2.B",)), ctx
        )
        rows = dict(out.iter_full())
        assert rows[(2,)] == 2 and rows[(1,)] == 1

    def test_copy(self, example2):
        ctx, _ = example2
        out = execute(
            CopyK(ScanKV("R1", "r1"), (("r1.B", "alias.B"),)), ctx
        )
        assert "alias.B" in out.attrs
        b = out.position("r1.B")
        b2 = out.position("alias.B")
        assert all(r[b] == r[b2] for r in out.expand())


class TestGroupUnionDifference:
    def test_group(self, example2):
        ctx, _ = example2
        plan = GroupK(
            ScanKV("R2", "r2"),
            ("r2.B",),
            (AggSpec("n", "COUNT", None),),
        )
        out = execute(plan, ctx)
        assert sorted(out.expand()) == [(1, 1), (2, 2)]

    def test_union_bag(self, example2):
        ctx, _ = example2
        out = execute(
            UnionK(ScanKV("R1", "r1"), ScanKV("R1", "r1")), ctx
        )
        assert out.num_tuples() == 4

    def test_difference_bag(self, example2):
        ctx, _ = example2
        doubled = UnionK(ScanKV("R1", "r1"), ScanKV("R1", "r1"))
        out = execute(DifferenceK(doubled, ScanKV("R1", "r1")), ctx)
        assert out.num_tuples() == 2

    def test_difference_realigns_keys(self, example2):
        ctx, _ = example2
        shifted = Shift(ScanKV("R1", "r1"), ("r1.B",))
        out = execute(DifferenceK(ScanKV("R1", "r1"), shifted), ctx)
        assert out.num_tuples() == 0


class TestTaaVScanLeaf:
    def test_taav_scan(self, paper_db, paper_taav, paper_store, cluster):
        ctx = ExecContext(paper_store, paper_taav)
        out = execute(TaaVScan("NATION", "N"), ctx)
        assert out.num_tuples() == 3
        assert "N.name" in out.attrs
