import pytest

from repro.errors import ExecutionError
from repro.kba.blockset import BlockSet


def make_blockset():
    return BlockSet.from_rows(
        ("k",),
        ("a", "b"),
        [
            ((1, "x", 10), 1),
            ((1, "y", 20), 2),
            ((2, "x", 30), 1),
        ],
    )


class TestBlockSet:
    def test_from_rows_groups(self):
        bs = make_blockset()
        assert bs.num_blocks == 2
        assert bs.num_entries() == 3
        assert bs.num_tuples() == 4

    def test_attrs(self):
        assert make_blockset().attrs == ("k", "a", "b")

    def test_iter_full(self):
        rows = dict(make_blockset().iter_full())
        assert rows[(1, "y", 20)] == 2

    def test_expand_bag(self):
        expanded = sorted(make_blockset().expand(), key=str)
        assert len(expanded) == 4

    def test_constant(self):
        bs = BlockSet.constant(("N.name",), [("GERMANY",)])
        assert bs.num_blocks == 1
        assert list(bs.iter_full()) == [(("GERMANY",), 1)]

    def test_position(self):
        bs = make_blockset()
        assert bs.position("b") == 2
        with pytest.raises(ExecutionError):
            bs.position("zz")

    def test_degree(self):
        assert make_blockset().degree() == 3

    def test_num_values(self):
        assert make_blockset().num_values() == 9

    def test_size_bytes_positive(self):
        assert make_blockset().size_bytes() > 0


class TestShift:
    def test_shift_rekeys(self):
        """↑ preserves the relational version (§4.2)."""
        bs = make_blockset()
        shifted = bs.shift(("a",))
        assert shifted.key_attrs == ("a",)
        assert set(shifted.value_attrs) == {"k", "b"}
        # same bag of full rows, possibly reordered columns
        def normalize(blockset):
            order = sorted(blockset.attrs)
            positions = [blockset.attrs.index(a) for a in order]
            bag = {}
            for row, count in blockset.iter_full():
                key = tuple(row[p] for p in positions)
                bag[key] = bag.get(key, 0) + count
            return bag

        assert normalize(bs) == normalize(shifted)

    def test_shift_merges_counts(self):
        bs = BlockSet.from_rows(
            ("k",), ("a",), [((1, "x"), 1), ((2, "x"), 1)]
        )
        shifted = bs.shift(("a",))
        assert shifted.num_blocks == 1
        assert shifted.num_tuples() == 2

    def test_shift_to_value_attr_of_paper_example(self):
        """Example 2: R4<AB, C> shifted on A gives R5<A, BC>."""
        r4 = BlockSet.from_rows(
            ("A", "B"),
            ("C",),
            [((1, 2, 1), 1), ((1, 2, 3), 1), ((2, 1, 3), 1)],
        )
        r5 = r4.shift(("A",))
        assert r5.key_attrs == ("A",)
        assert sorted(r5.data[(1,)]) == [((2, 1), 1), ((2, 3), 1)]

    def test_shift_missing_attr(self):
        with pytest.raises(ExecutionError):
            make_blockset().shift(("zz",))
