"""Per-rule fixtures: each repro-lint rule has at least one snippet
that MUST trigger it and one that MUST NOT.

Fixture files are written under ``tmp_path`` with the module suffixes
the config registry keys on (``repro/kv/cluster.py`` ...), so the
checkers resolve the same guard specs they apply to the real tree.
"""

from __future__ import annotations

import textwrap
from typing import Dict, List, Optional, Set

from repro.analysis.cli import all_checkers
from repro.analysis.core import Finding, run_analysis


def lint(
    tmp_path, files: Dict[str, str], rules: Optional[Set[str]] = None
) -> List[Finding]:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_analysis(
        [str(tmp_path)], all_checkers(), rules=rules, root=tmp_path
    )


def rules_of(findings: List[Finding]) -> List[str]:
    return [finding.rule for finding in findings]


# -- guarded-field -----------------------------------------------------------


def test_guarded_field_triggers_on_unlocked_mutation(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def bad(self):
                    self.nodes.append(1)
        """,
    }, rules={"guarded-field"})
    assert rules_of(findings) == ["guarded-field"]
    assert "nodes" in findings[0].message


def test_guarded_field_read_side_is_not_enough_for_rwlock(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def bad(self):
                    with self._lock.read():
                        self.nodes = []
        """,
    }, rules={"guarded-field"})
    assert rules_of(findings) == ["guarded-field"]
    assert "write()" in findings[0].message


def test_guarded_field_silent_under_write_lock_and_mutex(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def good(self):
                    with self._lock.write():
                        self.nodes.append(1)

                def also_good(self):
                    with self._meta_lock:
                        self._namespaces.add("x")
        """,
    }, rules={"guarded-field"})
    assert findings == []


def test_guarded_field_init_is_exempt(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def __init__(self):
                    self.nodes = []
                    self._namespaces = set()
        """,
    }, rules={"guarded-field"})
    assert findings == []


def test_guarded_field_holds_directive_marks_helper(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def _locked_helper(self):
                    # repro-lint: holds=_lock -- caller takes the write lock
                    self.nodes.append(1)
        """,
    }, rules={"guarded-field"})
    assert findings == []


def test_guarded_field_alias_mutation_is_tracked(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/cluster.py": """
            class KVCluster:
                def bad(self):
                    live = self.nodes
                    live.append(1)
        """,
    }, rules={"guarded-field"})
    assert rules_of(findings) == ["guarded-field"]


# -- raw-acquire -------------------------------------------------------------


def test_raw_acquire_triggers_without_try_finally(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            class Worker:
                def bad(self):
                    self._lock.acquire()
                    self.count = 1
                    self._lock.release()
        """,
    }, rules={"raw-acquire"})
    assert rules_of(findings) == ["raw-acquire", "raw-acquire"]


def test_raw_acquire_silent_for_with_and_try_finally(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            class Worker:
                def good_with(self):
                    with self._lock:
                        self.count = 1

                def good_try(self):
                    self._lock.acquire()
                    try:
                        self.count = 1
                    finally:
                        self._lock.release()
        """,
    }, rules={"raw-acquire"})
    assert findings == []


# -- lock-blocking-call ------------------------------------------------------


def test_blocking_call_under_lock_triggers(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            import time

            class Worker:
                def bad(self):
                    with self._lock:
                        time.sleep(0.1)
        """,
    }, rules={"lock-blocking-call"})
    assert rules_of(findings) == ["lock-blocking-call"]
    assert "time.sleep" in findings[0].message


def test_blocking_call_outside_lock_is_fine(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            import time

            class Worker:
                def good(self):
                    with self._lock:
                        payload = self.queue.pop()
                    time.sleep(0.1)
        """,
    }, rules={"lock-blocking-call"})
    assert findings == []


def test_socket_io_under_lock_triggers(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            class Worker:
                def bad(self, conn, data):
                    with self._lock:
                        conn.sendall(data)
        """,
    }, rules={"lock-blocking-call"})
    assert rules_of(findings) == ["lock-blocking-call"]


# -- counter-accounting ------------------------------------------------------

_STATS = """
    from dataclasses import dataclass

    @dataclass
    class NodeCounters:
        gets: int = 0

        def add(self, other):
            self.gets += other.gets
"""


def test_counter_increment_on_shared_instance_triggers(tmp_path):
    findings = lint(tmp_path, {
        "stats.py": _STATS,
        "mod.py": """
            class Node:
                def bad(self):
                    self.stats.gets += 1
        """,
    }, rules={"counter-accounting"})
    assert rules_of(findings) == ["counter-accounting"]
    assert "gets" in findings[0].message


def test_counter_increment_through_shard_is_fine(tmp_path):
    findings = lint(tmp_path, {
        "stats.py": _STATS,
        "mod.py": """
            class Node:
                def good_accessor(self):
                    self.counters.gets += 1

                def good_call(self):
                    self._shards.local().gets += 1

                def good_alias(self):
                    shard = self._shards.local()
                    shard.gets += 1
        """,
    }, rules={"counter-accounting"})
    assert findings == []


def test_counter_fresh_private_instance_is_fine(tmp_path):
    findings = lint(tmp_path, {
        "stats.py": _STATS,
        "mod.py": """
            from stats import NodeCounters

            def fold(shards):
                total = NodeCounters()
                for shard in shards:
                    total.gets += shard.gets
                return total
        """,
    }, rules={"counter-accounting"})
    assert findings == []


def test_counter_mutating_other_threads_shards_triggers(tmp_path):
    findings = lint(tmp_path, {
        "stats.py": _STATS,
        "mod.py": """
            class Node:
                def bad_fold(self):
                    for shard in self._shards.all():
                        shard.gets += 1
        """,
    }, rules={"counter-accounting"})
    assert rules_of(findings) == ["counter-accounting"]


# -- error taxonomy ----------------------------------------------------------


def test_bare_except_triggers(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def risky():
                try:
                    work()
                except:
                    pass
        """,
    }, rules={"bare-except"})
    assert rules_of(findings) == ["bare-except"]


def test_broad_except_triggers_and_narrow_does_not(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def risky():
                try:
                    work()
                except Exception:
                    pass

            def narrow():
                try:
                    work()
                except ValueError:
                    pass
        """,
    }, rules={"broad-except"})
    assert rules_of(findings) == ["broad-except"]
    assert findings[0].line == 5


def test_foreign_raise_triggers_and_taxonomy_raise_does_not(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            from repro.errors import ExecutionError

            def bad():
                raise RuntimeError("boom")

            def local_validation():
                raise ValueError("bad argument")

            def taxonomy():
                raise ExecutionError("boom")
        """,
    }, rules={"foreign-raise"})
    assert rules_of(findings) == ["foreign-raise"]
    assert "RuntimeError" in findings[0].message


# -- wire-protocol (cross-file) ----------------------------------------------

_WIRE_OK = """
    OP_GET = 0x01
    OP_PUT = 0x02

    OP_NAMES = {OP_GET: "GET", OP_PUT: "PUT"}

    def encode_request(op, args):
        assert op in (OP_GET, OP_PUT)
        return b""

    def decode_request(payload):
        op = payload[0]
        assert op in (OP_GET, OP_PUT)
        return op, ()
"""

_SERVER_OK = """
    from repro.kv import wire

    class Server:
        def _run_op(self, op, args):
            if op == wire.OP_GET:
                return b"get"
            if op == wire.OP_PUT:
                return b"put"
"""

_REMOTE_OK = """
    from repro.kv import wire

    class Client:
        def get(self):
            return self.request(wire.OP_GET)

        def put(self):
            return self.request(wire.OP_PUT)
"""


def test_wire_complete_contract_is_clean(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/wire.py": _WIRE_OK,
        "repro/kv/server.py": _SERVER_OK,
        "repro/kv/remote.py": _REMOTE_OK,
    }, rules={"wire-protocol"})
    assert findings == []


def test_wire_missing_server_handler_triggers(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/wire.py": _WIRE_OK,
        "repro/kv/server.py": """
            from repro.kv import wire

            class Server:
                def _run_op(self, op, args):
                    if op == wire.OP_GET:
                        return b"get"
        """,
        "repro/kv/remote.py": _REMOTE_OK,
    }, rules={"wire-protocol"})
    assert rules_of(findings) == ["wire-protocol"]
    assert "OP_PUT" in findings[0].message
    assert "handler" in findings[0].message


def test_wire_opcode_outside_op_names_and_codec_triggers(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/wire.py": """
            OP_GET = 0x01
            OP_EXTRA = 0x7F

            OP_NAMES = {OP_GET: "GET"}

            def encode_request(op, args):
                assert op == OP_GET
                return b""

            def decode_request(payload):
                return OP_GET, ()
        """,
    }, rules={"wire-protocol"})
    messages = " | ".join(finding.message for finding in findings)
    assert "OP_EXTRA is missing from OP_NAMES" in messages
    assert "not handled by encode_request" in messages
    assert "not handled by decode_request" in messages


def test_wire_double_dispatch_in_one_function_triggers(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/wire.py": _WIRE_OK,
        "repro/kv/server.py": """
            from repro.kv import wire

            class Server:
                def _run_op(self, op, args):
                    if op == wire.OP_GET:
                        return b"one"
                    if op == wire.OP_GET:
                        return b"two"
                    if op == wire.OP_PUT:
                        return b"put"
        """,
        "repro/kv/remote.py": _REMOTE_OK,
    }, rules={"wire-protocol"})
    assert rules_of(findings) == ["wire-protocol"]
    assert "dispatched 2 times" in findings[0].message


def test_wire_unpaired_codec_helper_triggers(tmp_path):
    findings = lint(tmp_path, {
        "repro/kv/wire.py": (
            _WIRE_OK + '\n    def encode_widget(value):\n        return b""\n'
        ),
    }, rules={"wire-protocol"})
    assert rules_of(findings) == ["wire-protocol"]
    assert "decode_widget" in findings[0].message


def test_wire_checker_is_silent_without_wire_module(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def anything():
                return 1
        """,
    }, rules={"wire-protocol"})
    assert findings == []


# -- suppression mechanics ---------------------------------------------------


def test_trailing_suppression_silences_one_rule(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            class Worker:
                def shim(self):
                    self._lock.acquire()  # repro-lint: disable=raw-acquire -- shim
                    try:
                        pass
                    finally:
                        self._lock.release()
        """,
    }, rules={"raw-acquire"})
    assert findings == []


def test_standalone_suppression_covers_next_code_line(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def risky():
                try:
                    work()
                # repro-lint: disable=broad-except -- fixture boundary,
                # spanning a second comment line before the handler
                except Exception:
                    pass
        """,
    }, rules={"broad-except"})
    assert findings == []


def test_disable_all_silences_every_rule_on_the_line(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def risky():
                try:
                    work()
                except Exception:  # repro-lint: disable=all -- fixture
                    pass
        """,
    })
    assert findings == []


def test_suppression_of_other_rule_does_not_silence(tmp_path):
    findings = lint(tmp_path, {
        "mod.py": """
            def risky():
                try:
                    work()
                except Exception:  # repro-lint: disable=bare-except -- wrong rule
                    pass
        """,
    }, rules={"broad-except"})
    assert rules_of(findings) == ["broad-except"]
