"""The runtime lock-order sanitizer: cycle detection with witnesses.

These tests drive :mod:`repro.lockdep` through private registries, so
they are independent of the ``REPRO_LOCKDEP`` environment flag (the CI
job that exports it exercises the factory wiring end-to-end by running
the whole suite).
"""

from __future__ import annotations

import subprocess
import sys
import threading

import pytest

from repro import lockdep
from repro.errors import LockError, LockOrderError, ReproError


def _pair(reg):
    lock_a = lockdep.instrument(threading.Lock(), "A", reg)
    lock_b = lockdep.instrument(threading.Lock(), "B", reg)
    return lock_a, lock_b


def test_abba_ordering_raises_lock_order_error():
    reg = lockdep.LockdepRegistry()
    lock_a, lock_b = _pair(reg)
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with pytest.raises(LockOrderError):
            lock_a.acquire()


def test_cycle_report_carries_both_witness_stacks():
    reg = lockdep.LockdepRegistry()
    lock_a, lock_b = _pair(reg)
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with pytest.raises(LockOrderError) as excinfo:
            lock_a.acquire()
    message = str(excinfo.value)
    assert "lock-order inversion" in message
    assert "A#0" in message and "B#0" in message
    # the edge that established the opposite ordering, with its stack
    assert "A#0 -> B#0, first seen at:" in message
    assert "acquisition of A#0 under B#0 at:" in message
    assert "test_lockdep.py" in message  # stacks point at real frames


def test_cycle_detection_is_transitive():
    reg = lockdep.LockdepRegistry()
    names = ("A", "B", "C")
    locks = [lockdep.instrument(threading.Lock(), n, reg) for n in names]
    for first, second in zip(locks, locks[1:]):  # A→B, B→C
        with first:
            with second:
                pass
    with locks[2]:
        with pytest.raises(LockOrderError):  # C→A closes the cycle
            locks[0].acquire()


def test_consistent_ordering_never_raises():
    reg = lockdep.LockdepRegistry()
    lock_a, lock_b = _pair(reg)
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert ("A#0", "B#0") in reg.edges()
    assert ("B#0", "A#0") not in reg.edges()


def test_rlock_reentrancy_adds_no_edge():
    reg = lockdep.LockdepRegistry()
    rlock = lockdep.instrument(threading.RLock(), "R", reg)
    with rlock:
        with rlock:
            pass
    assert reg.edges() == {}


def test_hand_over_hand_release_order_is_legal():
    reg = lockdep.LockdepRegistry()
    reg.note_acquire("A#0")
    reg.note_acquire("B#0")
    reg.note_release("A#0")  # released before B: hand-over-hand
    reg.note_acquire("C#0")  # edge B→C only
    reg.note_release("C#0")
    reg.note_release("B#0")
    assert set(reg.edges()) == {("A#0", "B#0"), ("B#0", "C#0")}


def test_orderings_merge_across_threads():
    """The graph is global: thread 1 doing A→B and thread 2 doing B→A
    is the classic latent deadlock, caught without any interleaving."""
    reg = lockdep.LockdepRegistry()
    lock_a, lock_b = _pair(reg)

    def use_ab():
        with lock_a:
            with lock_b:
                pass

    worker = threading.Thread(target=use_ab)
    worker.start()
    worker.join()
    with lock_b:
        with pytest.raises(LockOrderError):
            lock_a.acquire()


def test_instrumented_condition_participates():
    reg = lockdep.LockdepRegistry()
    cond_a = lockdep.instrument_condition("CA", reg)
    cond_b = lockdep.instrument_condition("CB", reg)
    with cond_a:
        with cond_b:
            pass
    with cond_b:
        with pytest.raises(LockOrderError):
            with cond_a:
                pass


def test_condition_wait_reacquire_is_tracked():
    reg = lockdep.LockdepRegistry()
    cond = lockdep.instrument_condition("C", reg)
    other = lockdep.instrument(threading.Lock(), "L", reg)

    def notifier():
        with cond:
            cond.notify_all()

    with cond:
        worker = threading.Thread(target=notifier)
        worker.start()
        cond.wait(timeout=5.0)
        worker.join()
        # wait released C fully, then re-acquired it; the held stack
        # must reflect C being held again
        assert reg.held_names() == ["C#0"]
    with other:
        pass
    assert reg.held_names() == []


def test_lock_order_error_is_in_the_taxonomy():
    assert issubclass(LockOrderError, LockError)
    assert issubclass(LockOrderError, ReproError)


def test_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_LOCKDEP", raising=False)
    assert not lockdep.enabled()
    monkeypatch.setenv("REPRO_LOCKDEP", "0")
    assert not lockdep.enabled()
    monkeypatch.setenv("REPRO_LOCKDEP", "1")
    assert lockdep.enabled()


def test_factories_instrument_only_under_env_flag():
    """End-to-end: with REPRO_LOCKDEP=1 the ``repro.locks`` factories
    return checked primitives and an ABBA ordering dies loudly; without
    it they return raw threading objects (fresh interpreter per case —
    the flag is latched at import)."""
    program = """
import threading
from repro.locks import make_lock
a = make_lock("fixture.A")
b = make_lock("fixture.B")
assert {flag} == (not isinstance(a, type(threading.Lock()))), type(a)
with a:
    with b:
        pass
with b:
    with a:
        pass
print("no-cycle-error")
"""
    for flag, expect_failure in ((True, True), (False, False)):
        proc = subprocess.run(
            [sys.executable, "-c", program.format(flag=flag)],
            capture_output=True,
            text=True,
            env={"REPRO_LOCKDEP": "1" if flag else "", "PYTHONPATH": "src"},
            cwd=str(__import__("pathlib").Path(__file__).parents[2]),
            timeout=60,
        )
        if expect_failure:
            assert proc.returncode != 0
            assert "LockOrderError" in proc.stderr
        else:
            assert proc.returncode == 0, proc.stderr
            assert "no-cycle-error" in proc.stdout
