"""Tests for the repro-lint static analyzer and the lockdep sanitizer."""
