"""The shipped tree must satisfy its own lint gate, and the CLI's exit
codes are the CI contract."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import all_checkers, analyze, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_src_tree_is_lint_clean():
    findings = analyze([str(REPO_ROOT / "src")], root=REPO_ROOT)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_every_checker_declares_rules():
    for checker in all_checkers():
        assert checker.name
        assert checker.rules, checker.name
        assert checker.description


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(REPO_ROOT / "src"), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out or "[]") == []


def test_cli_exit_one_with_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f():\n    try:\n        g()\n    except:\n        pass\n")
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and payload[0]["rule"] == "bare-except"
    assert payload[0]["line"] == 4


def test_cli_exit_two_on_usage_errors(capsys):
    assert main([]) == 2
    assert main(["--rules", "no-such-rule", "x.py"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "guarded-field", "raw-acquire", "lock-blocking-call",
        "counter-accounting", "wire-protocol", "bare-except",
        "broad-except", "foreign-raise",
    ):
        assert rule in out, rule
