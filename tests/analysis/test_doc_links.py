"""The doc-link checker (PR 10): unit behavior + the shipped tree passes."""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import check_doc_links as cdl  # noqa: E402


class TestReferenceExtraction:
    def test_path_refs_extracted(self):
        text = "see `src/repro/kba/compile.py` and `docs/ARCHITECTURE.md`"
        assert list(cdl.references(text)) == [
            ("path", "src/repro/kba/compile.py"),
            ("path", "docs/ARCHITECTURE.md"),
        ]

    def test_line_anchor_stripped(self):
        text = "at `src/repro/errors.py:12`"
        assert list(cdl.references(text)) == [
            ("path", "src/repro/errors.py"),
        ]

    def test_module_refs_extracted(self):
        text = "uses `repro.kba.compile` and `repro.baav.frame.select_mask`"
        assert [r for _, r in cdl.references(text)] == [
            "repro.kba.compile",
            "repro.baav.frame.select_mask",
        ]

    def test_shell_and_env_snippets_ignored(self):
        text = (
            "run `PYTHONPATH=src python -m pytest -q` with "
            "`REPRO_VECTORIZED=1` or `pip install x`; `a and b`"
        )
        assert list(cdl.references(text)) == []


class TestResolution:
    def test_existing_path(self):
        assert cdl.path_exists("src/repro/kba/compile.py")

    def test_missing_path(self):
        assert not cdl.path_exists("src/repro/kba/nonexistent.py")

    def test_wildcard_path(self):
        assert cdl.path_exists("benchmarks/baselines/BENCH_*.json")
        assert not cdl.path_exists("benchmarks/baselines/NOPE_*.json")

    def test_module(self):
        assert cdl.module_exists("repro.kba.compile")
        assert cdl.module_exists("repro.kba")  # package __init__
        assert not cdl.module_exists("repro.kba.imaginary")

    def test_module_symbol(self):
        assert cdl.module_exists("repro.kba.compile.compile_plan")
        assert cdl.module_exists("repro.baav.frame.ColumnFrame")
        assert not cdl.module_exists("repro.kba.compile.not_a_symbol")


def test_shipped_docs_have_no_stale_references():
    """The same gate CI runs: the committed docs must be link-clean."""
    stale = cdl.check()
    assert stale == [], "\n".join(stale)


def test_checker_catches_stale_reference(tmp_path):
    (tmp_path / "README.md").write_text(
        "broken: `src/repro/gone.py` and `repro.kba.ghost`\n"
    )
    (tmp_path / "src").mkdir()
    stale = cdl.check(tmp_path)
    assert len(stale) == 2
    assert "src/repro/gone.py" in stale[0]
    assert "repro.kba.ghost" in stale[1]
