"""Unit tests for the secondary-index subsystem (hash + ordered + manager)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.index import (
    HashIndex,
    IndexManager,
    OrderedIndex,
    index_namespace,
)
from repro.kv import KVCluster
from repro.relational import AttrType, Attribute, Relation, RelationSchema


def make_relation(rows=None, pk=("k",)):
    schema = RelationSchema(
        "R",
        [
            Attribute("k", AttrType.INT),
            Attribute("c", AttrType.INT),
            Attribute("s", AttrType.FLOAT),
            Attribute("name", AttrType.STR),
        ],
        list(pk),
    )
    if rows is None:
        rows = [
            (i, i % 5, float(i % 20), f"n{i % 3}") for i in range(100)
        ]
    return Relation(schema, rows)


@pytest.fixture()
def rel():
    return make_relation()


@pytest.fixture()
def manager(cluster):
    return IndexManager(cluster)


class TestHashIndex:
    def test_build_and_lookup(self, rel, manager):
        manager.create(rel, "c", "hash")
        pks = manager.lookup_eq("R", "c", [2])
        assert sorted(pks) == [(i,) for i in range(100) if i % 5 == 2]

    def test_lookup_multiple_values_dedups(self, rel, manager):
        manager.create(rel, "c", "hash")
        pks = manager.lookup_eq("R", "c", [1, 2, 1])
        expected = [(i,) for i in range(100) if i % 5 in (1, 2)]
        assert sorted(pks) == sorted(expected)
        assert len(pks) == len(set(pks))

    def test_missing_value_empty(self, rel, manager):
        manager.create(rel, "c", "hash")
        assert manager.lookup_eq("R", "c", [999]) == []

    def test_none_values_not_indexed(self, manager, cluster):
        rel = make_relation(rows=[(1, None, 0.0, "a"), (2, 7, 0.0, "b")])
        manager.create(rel, "c", "hash")
        assert manager.lookup_eq("R", "c", [None]) == []
        assert manager.lookup_eq("R", "c", [7]) == [(2,)]

    def test_string_attribute(self, rel, manager):
        manager.create(rel, "name", "hash")
        pks = manager.lookup_eq("R", "name", ["n1"])
        assert sorted(pks) == [(i,) for i in range(100) if i % 3 == 1]

    def test_entries_live_in_idx_namespace(self, rel, cluster, manager):
        manager.create(rel, "c", "hash")
        namespace = index_namespace("R", "c", "hash")
        assert namespace == "__idx__/R/c"
        assert cluster.namespace_keys(namespace)

    def test_maintenance_insert_delete(self, rel, manager):
        manager.create(rel, "c", "hash")
        manager.apply_updates(
            "R", inserts=[(500, 2, 1.0, "x")], deletes=[(2, 2, 2.0, "n2")]
        )
        pks = manager.lookup_eq("R", "c", [2])
        assert (500,) in pks and (2,) not in pks

    def test_delete_last_posting_removes_entry(self, cluster, manager):
        rel = make_relation(rows=[(1, 42, 0.0, "a")])
        manager.create(rel, "c", "hash")
        manager.apply_updates("R", deletes=[(1, 42, 0.0, "a")])
        assert manager.lookup_eq("R", "c", [42]) == []
        assert not cluster.namespace_keys(index_namespace("R", "c", "hash"))

    def test_duplicate_rows_keep_multiplicity(self, cluster, manager):
        # two logical occurrences of the same (value, pk): deleting one
        # must keep the posting alive
        rel = make_relation(rows=[(1, 5, 0.0, "a")])
        manager.create(rel, "c", "hash")
        manager.apply_updates("R", inserts=[(1, 5, 0.0, "a")])
        manager.apply_updates("R", deletes=[(1, 5, 0.0, "a")])
        assert manager.lookup_eq("R", "c", [5]) == [(1,)]


class TestOrderedIndex:
    def test_range_inclusive(self, rel, manager):
        manager.create(rel, "s", "ordered")
        pks = manager.lookup_range("R", "s", lo=3.0, hi=5.0)
        expected = [(i,) for i in range(100) if 3.0 <= (i % 20) <= 5.0]
        assert sorted(pks) == sorted(expected)

    def test_strict_bounds(self, rel, manager):
        manager.create(rel, "s", "ordered")
        pks = manager.lookup_range(
            "R", "s", lo=3.0, hi=5.0, lo_strict=True, hi_strict=True
        )
        expected = [(i,) for i in range(100) if 3.0 < (i % 20) < 5.0]
        assert sorted(pks) == sorted(expected)

    def test_open_ends(self, rel, manager):
        manager.create(rel, "s", "ordered")
        assert sorted(manager.lookup_range("R", "s", lo=18.0)) == sorted(
            (i,) for i in range(100) if (i % 20) >= 18.0
        )
        assert sorted(manager.lookup_range("R", "s", hi=1.0)) == sorted(
            (i,) for i in range(100) if (i % 20) <= 1.0
        )
        assert len(manager.lookup_range("R", "s")) == 100

    def test_empty_window(self, rel, manager):
        manager.create(rel, "s", "ordered")
        assert manager.lookup_range("R", "s", lo=5.0, hi=3.0) == []

    def test_bounded_bucket_walk(self, cluster, manager):
        # a narrow window must touch far fewer index entries than the
        # whole domain holds buckets
        rel = make_relation(
            rows=[(i, 0, float(i), "a") for i in range(2000)]
        )
        index = manager.create(rel, "s", "ordered")
        assert index.num_buckets > 10
        before = manager.stats.probes
        manager.lookup_range("R", "s", lo=100.0, hi=110.0)
        probed = manager.stats.probes - before
        assert probed <= 3  # ~11 values / 32-per-bucket → 1-2 buckets

    def test_equality_via_ordered(self, rel, manager):
        manager.create(rel, "s", "ordered")
        pks = manager.lookup_eq("R", "s", [7.0])
        assert sorted(pks) == sorted(
            (i,) for i in range(100) if (i % 20) == 7.0
        )

    def test_maintenance_outside_built_domain(self, rel, manager):
        manager.create(rel, "s", "ordered")
        manager.apply_updates("R", inserts=[(700, 0, 999.5, "z")])
        assert (700,) in manager.lookup_range("R", "s", lo=500.0)
        manager.apply_updates("R", deletes=[(700, 0, 999.5, "z")])
        assert manager.lookup_range("R", "s", lo=500.0) == []

    def test_ordered_namespace_suffix(self, rel, cluster, manager):
        manager.create(rel, "s", "ordered")
        assert cluster.namespace_keys("__idx__/R/s#ord")


class TestManager:
    def test_create_rejects_unknown_kind(self, rel, manager):
        with pytest.raises(ExecutionError):
            manager.create(rel, "c", "btree")

    def test_create_rejects_duplicate(self, rel, manager):
        manager.create(rel, "c", "hash")
        with pytest.raises(ExecutionError):
            manager.create(rel, "c", "hash")

    def test_create_rejects_pk_attribute(self, rel, manager):
        with pytest.raises(ExecutionError):
            manager.create(rel, "k", "hash")

    def test_create_rejects_unknown_attribute(self, rel, manager):
        with pytest.raises(ExecutionError):
            manager.create(rel, "nope", "hash")

    def test_create_requires_primary_key(self, manager):
        rel = make_relation(pk=())
        with pytest.raises(ExecutionError):
            manager.create(rel, "c", "hash")

    def test_catalog_views(self, rel, manager):
        manager.create(rel, "c", "hash")
        manager.create(rel, "s", "ordered")
        assert manager.equality_attrs("R") == {"c", "s"}
        assert manager.range_attrs("R") == {"s"}
        assert manager.equality_attrs("OTHER") == set()
        assert "R.c [hash]" in manager.describe()

    def test_lookup_without_index_raises(self, rel, manager):
        with pytest.raises(ExecutionError):
            manager.lookup_eq("R", "c", [1])
        with pytest.raises(ExecutionError):
            manager.lookup_range("R", "c", lo=1)

    def test_drop_removes_entries_and_catalog(self, rel, cluster, manager):
        manager.create(rel, "c", "hash")
        assert manager.drop("R", "c") == 1
        assert manager.equality_attrs("R") == set()
        assert not cluster.namespace_keys("__idx__/R/c")

    def test_drop_all_of_relation(self, rel, manager):
        manager.create(rel, "c", "hash")
        manager.create(rel, "s", "ordered")
        assert manager.drop("R") == 2
        assert len(manager) == 0

    def test_stats_meter_probes_and_maintenance(self, rel, manager):
        manager.create(rel, "c", "hash")
        built = manager.stats.maintenance_puts
        assert built == 5  # one posting list per distinct value
        assert manager.stats.maintenance_bytes > 0
        manager.lookup_eq("R", "c", [0, 1])
        assert manager.stats.probes == 2
        assert manager.stats.postings == 40

    def test_hash_probe_matches_across_numeric_types(self, manager):
        # SQL (and the scan path's ==) treat 10 and 10.0 as equal; a
        # hash probe by the other numeric type must still hit
        rel = make_relation(rows=[(1, 10, 10.0, "a"), (2, 3, 2.5, "b")])
        manager.create(rel, "c", "hash")
        manager.create(rel, "s", "hash")
        assert manager.lookup_eq("R", "c", [10.0]) == [(1,)]
        assert manager.lookup_eq("R", "c", [10]) == [(1,)]
        assert manager.lookup_eq("R", "s", [10]) == [(1,)]
        assert manager.lookup_eq("R", "s", [2.5]) == [(2,)]

    def test_posting_reads_charge_values_read(self, rel, cluster, manager):
        manager.create(rel, "c", "hash")
        before = cluster.total_counters().values_read
        manager.lookup_eq("R", "c", [2])  # posting list of 20 pks
        read = cluster.total_counters().values_read - before
        assert read == 20

    def test_ordered_index_attaches_to_persisted_buckets(self, cluster):
        from repro.index.indexes import OrderedIndex

        rel = make_relation(
            rows=[(i, 0, float(i), "a") for i in range(200)]
        )
        built = IndexManager(cluster)
        built.create(rel, "s", "ordered")
        # a fresh object over the same namespace recovers the cut
        # points from the persisted meta entry
        attached = OrderedIndex(rel.schema, "s", cluster)
        assert attached.num_buckets > 1
        assert sorted(
            attached.lookup_range(lo=50.0, hi=52.0)
        ) == [(50,), (51,), (52,)]

    def test_replicated_cluster_serves_indexes(self, rel):
        cluster = KVCluster(4, replication_factor=2)
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        cluster.fail_node(cluster.live_node_ids[0])
        pks = manager.lookup_eq("R", "c", [3])
        assert sorted(pks) == [(i,) for i in range(100) if i % 5 == 3]
