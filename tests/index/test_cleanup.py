"""Index-namespace hygiene: drop cascades and membership-event migration.

Secondary indexes post primary keys into their relation's TaaV data, so
orphaned index entries after a relation drop would silently serve stale
keys; and index entries must travel with every other namespace through
scale-out, decommission, crash and recovery.
"""

from __future__ import annotations

from repro.index import IndexManager, index_namespace
from repro.kv import KVCluster
from tests.index.test_indexes import make_relation


def load_taav(cluster, rel):
    from repro.kv.taav import TaaVRelation

    taav = TaaVRelation(rel.schema, cluster)
    taav.load(rel.rows)
    return taav


class TestDropCascade:
    def test_namespaces_enumerates_all(self, cluster):
        rel = make_relation()
        load_taav(cluster, rel)
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        manager.create(rel, "s", "ordered")
        namespaces = cluster.namespaces()
        assert "taav:R" in namespaces
        assert "__idx__/R/c" in namespaces
        assert "__idx__/R/s#ord" in namespaces

    def test_drop_taav_namespace_cascades_to_indexes(self, cluster):
        rel = make_relation()
        load_taav(cluster, rel)
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        manager.create(rel, "s", "ordered")
        dropped = cluster.drop_namespace("taav:R")
        assert dropped == len(rel.rows)
        assert not any(
            ns.startswith("__idx__/R/") for ns in cluster.namespaces()
        )
        manager.forget("R")
        assert len(manager) == 0

    def test_cascade_leaves_other_relations_alone(self, cluster):
        rel = make_relation()
        load_taav(cluster, rel)
        other_schema = rel.schema
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        # an index over a different relation name must survive
        cluster.put("__idx__/OTHER/c", b"k", b"v")
        cluster.drop_namespace("taav:R")
        assert "__idx__/OTHER/c" in cluster.namespaces()

    def test_cascade_invalidates_caches(self, cluster):
        from repro.kv.cache import BlockCache

        rel = make_relation()
        cache = BlockCache(1 << 20)
        manager = IndexManager(cluster, cache=cache)
        manager.create(rel, "c", "hash")
        manager.lookup_eq("R", "c", [0])  # warm the cache
        assert len(cache) > 0
        cluster.drop_namespace("taav:R")
        assert cache.peek(
            index_namespace("R", "c", "hash"),
            next(iter(cluster.namespace_keys("__idx__/R/c")), b""),
        ) is None
        assert len(cache) == 0

    def test_non_taav_drop_does_not_cascade(self, cluster):
        rel = make_relation()
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        cluster.put("baav:R_view", b"k", b"v")
        cluster.drop_namespace("baav:R_view")
        assert "__idx__/R/c" in cluster.namespaces()


class TestMembershipEvents:
    def expected(self, value):
        return sorted((i,) for i in range(100) if i % 5 == value)

    def test_remove_node_migrates_index_entries(self):
        cluster = KVCluster(4)
        manager = IndexManager(cluster)
        manager.create(make_relation(), "c", "hash")
        cluster.remove_node(0)
        assert sorted(manager.lookup_eq("R", "c", [2])) == self.expected(2)

    def test_add_node_keeps_index_consistent(self):
        cluster = KVCluster(3)
        manager = IndexManager(cluster)
        manager.create(make_relation(), "c", "hash")
        cluster.add_node()
        assert sorted(manager.lookup_eq("R", "c", [4])) == self.expected(4)

    def test_fail_recover_round_trip_replicated(self):
        cluster = KVCluster(4, replication_factor=2)
        manager = IndexManager(cluster)
        manager.create(make_relation(), "c", "hash")
        manager.create(make_relation(), "s", "ordered")
        victim = cluster.live_node_ids[1]
        cluster.fail_node(victim)
        assert sorted(manager.lookup_eq("R", "c", [1])) == self.expected(1)
        # a write while the node is down must not resurrect on recovery
        manager.apply_updates("R", deletes=[(1, 1, 1.0, "n1")])
        cluster.recover_node(victim)
        pks = sorted(manager.lookup_eq("R", "c", [1]))
        assert pks == [p for p in self.expected(1) if p != (1,)]
        assert sorted(
            manager.lookup_range("R", "s", lo=1.0, hi=1.0)
        ) == [(i,) for i in range(100) if i % 20 == 1 and i != 1]

    def test_removed_relation_cannot_leave_orphans_after_migration(self):
        # drop after churn: the cascade still finds every index pair on
        # the surviving nodes
        cluster = KVCluster(4)
        rel = make_relation()
        load_taav(cluster, rel)
        manager = IndexManager(cluster)
        manager.create(rel, "c", "hash")
        cluster.remove_node(1)
        cluster.add_node()
        cluster.drop_namespace("taav:R")
        assert not any(
            ns.startswith("__idx__/") for ns in cluster.namespaces()
        )
