"""Planner/engine integration: the IndexProbe → multi_get access path."""

from __future__ import annotations

import pytest

from repro.core.scanfree import is_scan_free as scanfree_check
from repro.errors import ExecutionError
from repro.kba import plan as kp
from repro.sql.minimize import minimize
from repro.sql.parser import parse
from repro.sql.planner import bind
from repro.sql.spc import analyze
from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads.airca import airca_baav_schema, generate_airca


@pytest.fixture(scope="module")
def airca():
    return generate_airca(scale=1.0, seed=13)


def make_baseline(db, indexes=()):
    system = SQLOverNoSQL("hbase", indexes=indexes)
    system.load(db)
    return system


EQ_SQL = (
    "select F.flight_id, F.arr_delay from FLIGHT F where F.tail_id = 7"
)
RANGE_SQL = (
    "select F.flight_id from FLIGHT F where F.arr_delay > 60.0"
)
BETWEEN_SQL = (
    "select F.flight_id from FLIGHT F "
    "where F.dep_delay between 10.0 and 12.0"
)


class TestBaselineIndexPath:
    def test_eq_results_match_scan(self, airca):
        plain = make_baseline(airca)
        indexed = make_baseline(airca, indexes=["FLIGHT.tail_id"])
        r_scan = plain.execute(EQ_SQL)
        r_idx = indexed.execute(EQ_SQL)
        assert sorted(r_idx.rows) == sorted(r_scan.rows)
        assert r_idx.metrics.index_probes > 0
        assert r_idx.metrics.n_get < r_scan.metrics.n_get

    def test_range_results_match_scan(self, airca):
        plain = make_baseline(airca)
        indexed = make_baseline(
            airca, indexes=["FLIGHT.arr_delay:ordered"]
        )
        r_scan = plain.execute(RANGE_SQL)
        r_idx = indexed.execute(RANGE_SQL)
        assert sorted(r_idx.rows) == sorted(r_scan.rows)
        assert r_idx.metrics.index_probes > 0

    def test_between_uses_ordered_index(self, airca):
        indexed = make_baseline(
            airca, indexes=["FLIGHT.dep_delay:ordered"]
        )
        plain = make_baseline(airca)
        r_idx = indexed.execute(BETWEEN_SQL)
        assert sorted(r_idx.rows) == sorted(plain.execute(BETWEEN_SQL).rows)
        assert "index probe" in r_idx.plan_summary

    def test_plan_summary_and_explain(self, airca):
        indexed = make_baseline(airca, indexes=["FLIGHT.tail_id"])
        result = indexed.execute(EQ_SQL)
        assert "index probe (hash on tail_id" in result.plan_summary
        assert "multi_get" in result.plan_summary
        assert indexed.explain(EQ_SQL) == result.plan_summary
        # a non-indexed filter still reports the scan
        other = "select F.flight_id from FLIGHT F where F.distance > 3000"
        assert "taav scan" in indexed.explain(other)
        assert "taav scan" in indexed.execute(other).plan_summary

    def test_residual_conjuncts_still_applied(self, airca):
        indexed = make_baseline(airca, indexes=["FLIGHT.tail_id"])
        plain = make_baseline(airca)
        sql = (
            "select F.flight_id from FLIGHT F "
            "where F.tail_id = 7 and F.distance > 1000"
        )
        assert sorted(indexed.execute(sql).rows) == sorted(
            plain.execute(sql).rows
        )

    def test_join_query_matches(self, airca):
        indexed = make_baseline(airca, indexes=["FLIGHT.tail_id"])
        plain = make_baseline(airca)
        sql = (
            "select F.flight_id, C.name from FLIGHT F, CARRIER C "
            "where F.tail_id = 7 and F.carrier_id = C.carrier_id"
        )
        assert sorted(indexed.execute(sql).rows) == sorted(
            plain.execute(sql).rows
        )

    def test_create_and_drop_online(self, airca):
        system = make_baseline(airca)
        assert "taav scan" in system.explain(EQ_SQL)
        system.create_index("FLIGHT", "tail_id")
        assert "index probe" in system.explain(EQ_SQL)
        baseline_rows = sorted(system.execute(EQ_SQL).rows)
        system.drop_index("FLIGHT", "tail_id")
        assert "taav scan" in system.explain(EQ_SQL)
        assert sorted(system.execute(EQ_SQL).rows) == baseline_rows

    def test_indexes_knob_tuple_specs(self, airca):
        system = SQLOverNoSQL(
            "hbase",
            indexes=[("FLIGHT", "tail_id"), ("FLIGHT", "arr_delay", "ordered")],
        )
        system.load(airca)
        assert system.indexes.equality_attrs("FLIGHT") == {
            "tail_id", "arr_delay",
        }

    def test_bad_index_spec_rejected(self):
        with pytest.raises(ExecutionError):
            SQLOverNoSQL("hbase", indexes=["FLIGHTtail_id"])

    def test_apply_updates_keeps_index_and_scan_agreed(self):
        # each system gets its own (identical) database: apply_updates
        # mutates the loaded Database in place
        indexed = make_baseline(
            generate_airca(scale=1.0, seed=13), indexes=["FLIGHT.tail_id"]
        )
        plain = make_baseline(generate_airca(scale=1.0, seed=13))
        template = indexed.database.relation("FLIGHT").rows[0]
        fresh = (999001,) + template[1:4] + (7,) + template[5:]
        victim = next(
            r for r in indexed.database.relation("FLIGHT").rows
            if r[4] == 7
        )
        for system in (indexed, plain):
            system.apply_updates(
                "FLIGHT", inserts=[fresh], deletes=[victim]
            )
        r_idx = indexed.execute(EQ_SQL)
        r_scan = plain.execute(EQ_SQL)
        assert sorted(r_idx.rows) == sorted(r_scan.rows)
        assert any(row[0] == 999001 for row in r_idx.rows)
        assert all(row[0] != victim[0] for row in r_idx.rows)


class TestSystemRegressions:
    def test_load_is_recallable_with_indexes(self):
        system = SQLOverNoSQL("hbase", indexes=["FLIGHT.tail_id"])
        system.load(generate_airca(scale=1.0, seed=13))
        system.load(generate_airca(scale=1.0, seed=13))  # must not raise
        assert "index probe" in system.explain(EQ_SQL)

    def test_zidian_load_is_recallable_with_indexes(self, airca):
        system = ZidianSystem("hbase", indexes=["FLIGHT.tail_id"])
        system.load(airca, airca_baav_schema())
        system.load(airca, airca_baav_schema())  # must not raise
        assert system.indexes.equality_attrs("FLIGHT") == {"tail_id"}

    def test_cross_type_literal_hits_hash_index(self, airca):
        # dep_delay is FLOAT; an integer literal must still probe right
        indexed = make_baseline(airca, indexes=["FLIGHT.dep_delay"])
        plain = make_baseline(airca)
        sql = (
            "select F.flight_id from FLIGHT F where F.dep_delay = 8"
        )
        r_idx = indexed.execute(sql)
        assert "index probe" in r_idx.plan_summary
        assert sorted(r_idx.rows) == sorted(plain.execute(sql).rows)

    def test_apply_updates_deletes_from_rowid_taav(self):
        from repro.relational import (
            AttrType,
            Attribute,
            Database,
            DatabaseSchema,
        )
        from repro.relational.schema import RelationSchema

        schema = RelationSchema(
            "S",
            [Attribute("a", AttrType.INT), Attribute("b", AttrType.STR)],
        )
        db = Database(DatabaseSchema([schema]))
        db.load("S", [(1, "x"), (2, "y")])
        system = SQLOverNoSQL("hbase")
        system.load(db)
        system.apply_updates("S", deletes=[(1, "x")])
        rows = system.execute("select T.a, T.b from S T").rows
        assert sorted(rows) == [(2, "y")]

    def test_zidian_same_pk_update_keeps_new_tuple(self):
        # delete old + insert new under one pk must leave the NEW tuple
        # in the TaaV store (deletes apply before inserts)
        db = generate_airca(scale=1.0, seed=13)
        system = ZidianSystem("hbase", indexes=["FLIGHT.tail_id"])
        system.load(db, airca_baav_schema())
        old = db.relation("FLIGHT").rows[0]
        new = old[:4] + (7,) + old[5:]
        system.apply_updates("FLIGHT", inserts=[new], deletes=[old])
        assert system.taav.relation("FLIGHT").get((old[0],)) == new
        rows = system.execute(EQ_SQL).rows
        assert any(r[0] == old[0] for r in rows)

    def test_reload_rebuilds_online_created_indexes(self):
        system = SQLOverNoSQL("hbase")
        system.load(generate_airca(scale=1.0, seed=13))
        system.create_index("FLIGHT", "tail_id")
        # a different database: the online-created index must be
        # rebuilt over the new rows, not keep serving stale postings
        other = generate_airca(scale=1.2, seed=99)
        system.load(other)
        plain = SQLOverNoSQL("hbase")
        plain.load(generate_airca(scale=1.2, seed=99))
        r_idx = system.execute(EQ_SQL)
        assert "index probe" in r_idx.plan_summary
        assert sorted(r_idx.rows) == sorted(plain.execute(EQ_SQL).rows)

    def test_no_fallback_middleware_does_not_claim_index_coverage(
        self, airca
    ):
        from repro.core.middleware import Zidian
        from repro.index import IndexManager
        from repro.kv import KVCluster

        manager = IndexManager(KVCluster(2))
        manager.create(airca.relation("FLIGHT"), "distance", "ordered")
        middleware = Zidian(
            airca.schema,
            airca_baav_schema(),
            allow_taav_fallback=False,
            index_catalog=manager,
        )
        decision = middleware.decide(
            "select F.flight_id from FLIGHT F where F.distance > 3900"
        )
        # without the TaaV fallback no IndexProbe can run, so the M1
        # verdict must not claim index-backed scan-freeness either
        assert not decision.is_scan_free
        assert not decision.scan_free.index_covered


class TestZidianIndexPath:
    def make_zidian(self, db, indexes=(), **kwargs):
        system = ZidianSystem("hbase", indexes=indexes, **kwargs)
        system.load(db, airca_baav_schema())
        return system

    def test_index_chosen_over_scan_kv(self, airca):
        sql = (
            "select F.flight_id, F.arr_delay from FLIGHT F "
            "where F.distance > 3900"
        )
        indexed = self.make_zidian(
            airca, indexes=["FLIGHT.distance:ordered"]
        )
        plain = self.make_zidian(airca)
        r_idx = indexed.execute(sql)
        r_scan = plain.execute(sql)
        assert sorted(r_idx.rows) == sorted(r_scan.rows)
        assert "index probe" in r_idx.plan_summary
        assert "scan" in r_scan.plan_summary
        assert r_idx.decision.is_scan_free
        assert not r_scan.decision.is_scan_free
        # scan-free via index, but not constant-bounded
        assert not r_idx.decision.is_bounded

    def test_chain_still_preferred_when_baav_covers(self, airca):
        # flight_by_tail makes tail_id a BaaV key: the ∝ chain wins and
        # the index is not consulted
        indexed = self.make_zidian(airca, indexes=["FLIGHT.tail_id"])
        result = indexed.execute(EQ_SQL)
        assert "key fetch" in result.plan_summary
        assert result.metrics.index_probes == 0

    def test_explain_mentions_index_coverage(self, airca):
        indexed = self.make_zidian(
            airca, indexes=["FLIGHT.distance:ordered"]
        )
        text = indexed.explain(
            "select F.flight_id from FLIGHT F where F.distance > 3900"
        )
        assert "indexes" in text
        assert "IndexProbe" in text

    def test_keep_taav_false_rejects_indexes(self, airca):
        system = ZidianSystem("hbase", keep_taav=False)
        system.load(airca, airca_baav_schema())
        with pytest.raises(ExecutionError):
            system.create_index("FLIGHT", "distance", "ordered")

    def test_updates_flow_to_index_and_taav(self, airca):
        sql = (
            "select F.flight_id from FLIGHT F where F.distance = 9876"
        )
        indexed = self.make_zidian(airca, indexes=["FLIGHT.distance"])
        template = airca.relation("FLIGHT").rows[0]
        fresh = (999002,) + template[1:8] + (9876,) + template[9:]
        indexed.apply_updates("FLIGHT", inserts=[fresh])
        rows = indexed.execute(sql).rows
        assert (999002,) in rows
        indexed.apply_updates("FLIGHT", deletes=[fresh])
        assert indexed.execute(sql).rows == []


class TestScanFreeReport:
    def test_index_covered_reported(self, airca):
        from repro.index import IndexManager
        from repro.kv import KVCluster

        manager = IndexManager(KVCluster(2))
        manager.create(airca.relation("FLIGHT"), "distance", "ordered")
        bound = bind(
            parse("select F.flight_id from FLIGHT F where F.distance > 3900"),
            airca.schema,
        )
        analysis = analyze(bound)
        baav = airca_baav_schema()
        plain = scanfree_check(analysis, baav, minimize(analysis))
        assert not plain.scan_free and plain.missing == ["F"]
        report = scanfree_check(
            analysis, baav, minimize(analysis), index_catalog=manager
        )
        assert report.scan_free
        assert "F" in report.index_covered
        assert report.missing == []

    def test_kba_is_scan_free_accepts_index_probe(self):
        probe = kp.IndexProbe("R", "A", "x", "hash", eq_values=(1,))
        assert kp.is_scan_free(probe)
        assert not kp.is_scan_free(kp.TaaVScan("R", "A"))
