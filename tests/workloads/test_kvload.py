"""Exp-4 workload primitives: throughput under TaaV vs BaaV."""

import pytest

from repro.baav import BaaVStore
from repro.kv import KVCluster, TaaVStore, profile
from repro.workloads.kvload import (
    baav_read_workload,
    baav_write_workload,
    taav_read_workload,
    taav_write_workload,
)


@pytest.fixture()
def stores(mot_small):
    from repro.workloads.mot import mot_baav_schema

    cluster = KVCluster(4)
    taav = TaaVStore.from_database(mot_small, cluster)
    store = BaaVStore.map_database(mot_small, mot_baav_schema(), cluster)
    return mot_small, taav, store


class TestReadWorkload:
    def test_taav_read(self, stores):
        db, taav, _ = stores
        keys = [(t,) for t in range(1, 51)]
        result = taav_read_workload(
            taav.relation("TEST"), keys, profile("hbase")
        )
        assert result.operations == 50
        assert result.tpms > 0

    def test_baav_read_higher_throughput(self, stores):
        """A BaaV get returns a block: more values per get (Exp-4)."""
        db, taav, store = stores
        test_keys = [(t,) for t in range(1, 51)]
        taav_result = taav_read_workload(
            taav.relation("TEST"), test_keys, profile("hbase")
        )
        vehicle_keys = [(v,) for v in range(1, 51)]
        baav_result = baav_read_workload(
            store.instance("test_by_vehicle"), vehicle_keys, profile("hbase")
        )
        assert baav_result.tpms > taav_result.tpms

    def test_misses_counted(self, stores):
        db, taav, store = stores
        result = baav_read_workload(
            store.instance("veh_by_id"), [(10**9,)], profile("kudu")
        )
        assert result.operations == 1
        assert result.values == 0


class TestWriteWorkload:
    def new_rows(self, db, n=30):
        schema = db.schema.relation("TEST")
        base = 10_000_000
        return [
            (base + i, (i % 50) + 1, "2010-06-01", 4, "NORMAL", "PASS",
             50_000, 3, 1600, 150.0, 0, 0, False, 45, 54.85, 7)
            for i in range(n)
        ]

    def test_taav_write(self, stores):
        db, taav, _ = stores
        result = taav_write_workload(
            taav.relation("TEST"), self.new_rows(db), profile("hbase")
        )
        assert result.operations == 30
        assert result.tpms > 0

    def test_baav_write_lower_but_comparable(self, stores):
        """BaaV writes pay read-modify-write: slower, same order (Exp-4)."""
        db, taav, store = stores
        rows = self.new_rows(db)
        taav_result = taav_write_workload(
            taav.relation("TEST"), rows, profile("hbase")
        )
        more = self.new_rows(db, 30)
        baav_result = baav_write_workload(
            store, "TEST", more, profile("hbase")
        )
        assert baav_result.tpms < taav_result.tpms
        assert baav_result.tpms > taav_result.tpms / 20

    def test_horizontal_scalability(self, mot_small):
        """Throughput grows with storage nodes (Exp-4)."""
        from repro.workloads.mot import mot_baav_schema

        results = []
        for nodes in (2, 8):
            cluster = KVCluster(nodes)
            taav = TaaVStore.from_database(mot_small, cluster)
            keys = [(t,) for t in range(1, 101)]
            results.append(
                taav_read_workload(
                    taav.relation("TEST"), keys, profile("cassandra")
                ).tpms
            )
        assert results[1] > results[0] * 2
