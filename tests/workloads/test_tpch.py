"""TPC-H workload tests: generator invariants and query classification."""


from repro.core import Zidian, is_data_preserving
from repro.sql import execute, plan_sql
from repro.workloads.tpch import (
    EXPECTED_NON_SCAN_FREE,
    EXPECTED_SCAN_FREE,
    QUERIES,
    generate_tpch,
    query_names,
    tpch_baav_schema,
    tpch_schema,
)


class TestSchema:
    def test_eight_relations_61_attributes(self):
        schema = tpch_schema()
        assert len(schema) == 8
        assert schema.total_attributes() == 61

    def test_primary_keys(self):
        schema = tpch_schema()
        assert schema.relation("LINEITEM").primary_key == (
            "orderkey", "linenumber",
        )
        assert schema.relation("PARTSUPP").primary_key == (
            "partkey", "suppkey",
        )


class TestGenerator:
    def test_cardinality_ratios(self, tpch_tiny):
        assert len(tpch_tiny["REGION"]) == 5
        assert len(tpch_tiny["NATION"]) == 25
        assert len(tpch_tiny["PARTSUPP"]) == 4 * len(tpch_tiny["PART"])
        assert len(tpch_tiny["ORDERS"]) == 10 * len(tpch_tiny["CUSTOMER"])
        ratio = len(tpch_tiny["LINEITEM"]) / len(tpch_tiny["ORDERS"])
        assert 2.0 < ratio < 6.0

    def test_deterministic(self):
        a = generate_tpch(0.001, seed=3)
        b = generate_tpch(0.001, seed=3)
        assert a["LINEITEM"].rows == b["LINEITEM"].rows

    def test_seed_changes_data(self):
        a = generate_tpch(0.001, seed=3)
        b = generate_tpch(0.001, seed=4)
        assert a["LINEITEM"].rows != b["LINEITEM"].rows

    def test_rows_validate(self, tpch_tiny):
        for relation in tpch_tiny:
            relation.validate()

    def test_foreign_keys_resolve(self, tpch_tiny):
        nation_keys = tpch_tiny["NATION"].distinct_values("nationkey")
        assert tpch_tiny["SUPPLIER"].distinct_values("nationkey") <= nation_keys
        supp_keys = tpch_tiny["SUPPLIER"].distinct_values("suppkey")
        assert tpch_tiny["PARTSUPP"].distinct_values("suppkey") <= supp_keys
        order_keys = tpch_tiny["ORDERS"].distinct_values("orderkey")
        assert tpch_tiny["LINEITEM"].distinct_values("orderkey") <= order_keys

    def test_dates_in_range(self, tpch_tiny):
        dates = tpch_tiny["ORDERS"].distinct_values("orderdate")
        assert min(dates) >= "1992-01-01"
        assert max(dates) <= "1998-12-31"

    def test_scale_scales(self):
        small = generate_tpch(0.001)
        large = generate_tpch(0.002)
        assert large.num_tuples() > 1.5 * small.num_tuples()


class TestQueries:
    def test_22_queries(self):
        assert len(QUERIES) == 22
        assert query_names()[0] == "q1" and query_names()[-1] == "q22"

    def test_all_parse_and_run(self, tpch_tiny):
        for name in query_names():
            plan, _ = plan_sql(QUERIES[name], tpch_tiny.schema)
            execute(plan, tpch_tiny)  # must not raise

    def test_classification_lists_partition(self):
        assert set(EXPECTED_SCAN_FREE) | set(EXPECTED_NON_SCAN_FREE) == set(
            QUERIES
        )
        assert not set(EXPECTED_SCAN_FREE) & set(EXPECTED_NON_SCAN_FREE)


class TestBaaVSchema:
    def test_data_preserving(self):
        report = is_data_preserving(tpch_schema(), tpch_baav_schema())
        assert report.preserved

    def test_scan_free_classification(self, tpch_tiny):
        zidian = Zidian(tpch_tiny.schema, tpch_baav_schema())
        for name in query_names():
            decision = zidian.decide(QUERIES[name])
            expected = name in EXPECTED_SCAN_FREE
            assert decision.is_scan_free == expected, name
            assert decision.answerable, name

    def test_paper_core_queries_match_paper_classification(self, tpch_tiny):
        """The paper's scan-free list, minus our simplification deltas."""
        paper_scan_free = {"q2", "q3", "q5", "q7", "q8", "q10", "q11",
                           "q12", "q17", "q19", "q21"}
        zidian = Zidian(tpch_tiny.schema, tpch_baav_schema())
        for name in sorted(paper_scan_free):
            assert zidian.decide(QUERIES[name]).is_scan_free, name
        for name in ("q1", "q4", "q6", "q9", "q13", "q14", "q15", "q18"):
            assert not zidian.decide(QUERIES[name]).is_scan_free, name
