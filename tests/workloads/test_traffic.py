"""Unit tests of the closed-loop traffic driver (virtual-time mode)."""

from __future__ import annotations

import random

import pytest

from repro.service import QueryService
from repro.systems import SQLOverNoSQL
from repro.workloads.airca import generate_airca
from repro.workloads.traffic import (
    QueryClass,
    TrafficDriver,
    airca_delay_writer,
    airca_traffic_mix,
    percentile,
    zipf_sampler,
)


class TestSamplers:
    def test_zipf_sampler_is_skewed_and_bounded(self):
        sample = zipf_sampler(10, alpha=1.3)
        rng = random.Random(7)
        draws = [sample(rng) for _ in range(500)]
        assert all(0 <= d < 10 for d in draws)
        # rank 0 must dominate rank 9 under Zipf
        assert draws.count(0) > draws.count(9) * 2

    def test_zipf_sampler_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            zipf_sampler(0)

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert 49.0 <= percentile(values, 0.5) <= 51.0
        assert percentile([], 0.99) == 0.0


@pytest.fixture(scope="module")
def loaded_service():
    db = generate_airca(scale=0.15, seed=31)
    system = SQLOverNoSQL(
        workers=2,
        storage_nodes=2,
        batch_size=16,
        indexes=["FLIGHT.tail_id", "FLIGHT.arr_delay:ordered"],
    )
    system.load(db)
    service = QueryService(system, max_workers=2, max_queued=4)
    yield db, service
    service.close(timeout=10.0)


class TestVirtualLoop:
    def test_closed_loop_completes_budget(self, loaded_service):
        db, service = loaded_service
        driver = TrafficDriver(
            service,
            airca_traffic_mix(db),
            clients=4,
            think_ms=0.1,
            seed=3,
        )
        report = driver.run(queries_per_client=4)
        assert report.mode == "virtual"
        assert report.completed == 4 * 4
        assert report.duration_ms > 0
        assert report.throughput_qps > 0
        # latencies are ordered percentiles over the same sample
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert set(report.per_class) <= {"point", "index", "range", "scan"}
        assert sum(c.completed for c in report.per_class.values()) == 16
        assert report.summary().startswith("[virtual]")

    def test_writer_stream_applies_updates(self, loaded_service):
        db, service = loaded_service
        writer, inserted = airca_delay_writer(db, think_ms=0.1)
        before = len(db.relation("DELAY").rows)
        driver = TrafficDriver(
            service,
            airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                              scan=0.0),
            clients=2,
            think_ms=0.1,
            update_stream=writer,
            seed=9,
        )
        report = driver.run(queries_per_client=3, updates=4)
        assert report.updates_applied == 4
        assert len(inserted) == 4
        assert len(db.relation("DELAY").rows) == before + 4
        assert report.update_p99_ms > 0

    def test_single_worker_queues_but_completes(self, loaded_service):
        db, service = loaded_service
        # a 1-worker service with 4 clients must queue (or shed) yet
        # every client finishes its budget
        with QueryService(service.system, max_workers=1,
                          max_queued=2) as narrow:
            driver = TrafficDriver(
                narrow,
                airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                                  scan=0.0),
                clients=4,
                think_ms=0.05,
                seed=11,
            )
            report = driver.run(queries_per_client=3)
        assert report.completed == 12
        # with one worker and saturating clients, waiting must appear
        assert report.p99_ms > report.per_class["point"].mean_service_ms

    def test_driver_validates_inputs(self, loaded_service):
        _, service = loaded_service
        with pytest.raises(ValueError):
            TrafficDriver(service, [], clients=2)
        with pytest.raises(ValueError):
            TrafficDriver(
                service,
                [QueryClass("x", 1.0, lambda rng: "select 1")],
                clients=0,
            )
