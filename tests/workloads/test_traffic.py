"""Unit tests of the closed-loop traffic driver (virtual-time mode)."""

from __future__ import annotations

import random

import pytest

from repro.service import QueryService
from repro.systems import SQLOverNoSQL
from repro.workloads.airca import generate_airca
from repro.workloads.traffic import (
    QueryClass,
    TrafficDriver,
    airca_delay_writer,
    airca_traffic_mix,
    percentile,
    zipf_sampler,
)


class TestSamplers:
    def test_zipf_sampler_is_skewed_and_bounded(self):
        sample = zipf_sampler(10, alpha=1.3)
        rng = random.Random(7)
        draws = [sample(rng) for _ in range(500)]
        assert all(0 <= d < 10 for d in draws)
        # rank 0 must dominate rank 9 under Zipf
        assert draws.count(0) > draws.count(9) * 2

    def test_zipf_sampler_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            zipf_sampler(0)

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert 49.0 <= percentile(values, 0.5) <= 51.0
        assert percentile([], 0.99) == 0.0


@pytest.fixture(scope="module")
def loaded_service():
    db = generate_airca(scale=0.15, seed=31)
    system = SQLOverNoSQL(
        workers=2,
        storage_nodes=2,
        batch_size=16,
        indexes=["FLIGHT.tail_id", "FLIGHT.arr_delay:ordered"],
    )
    system.load(db)
    service = QueryService(system, max_workers=2, max_queued=4)
    yield db, service
    service.close(timeout=10.0)


class TestVirtualLoop:
    def test_closed_loop_completes_budget(self, loaded_service):
        db, service = loaded_service
        driver = TrafficDriver(
            service,
            airca_traffic_mix(db),
            clients=4,
            think_ms=0.1,
            seed=3,
        )
        report = driver.run(queries_per_client=4)
        assert report.mode == "virtual"
        assert report.completed == 4 * 4
        assert report.duration_ms > 0
        assert report.throughput_qps > 0
        # latencies are ordered percentiles over the same sample
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert set(report.per_class) <= {"point", "index", "range", "scan"}
        assert sum(c.completed for c in report.per_class.values()) == 16
        assert report.summary().startswith("[virtual]")

    def test_writer_stream_applies_updates(self, loaded_service):
        db, service = loaded_service
        writer, inserted = airca_delay_writer(db, think_ms=0.1)
        before = len(db.relation("DELAY").rows)
        driver = TrafficDriver(
            service,
            airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                              scan=0.0),
            clients=2,
            think_ms=0.1,
            update_stream=writer,
            seed=9,
        )
        report = driver.run(queries_per_client=3, updates=4)
        assert report.updates_applied == 4
        assert len(inserted) == 4
        assert len(db.relation("DELAY").rows) == before + 4
        assert report.update_p99_ms > 0

    def test_single_worker_queues_but_completes(self, loaded_service):
        db, service = loaded_service
        # a 1-worker service with 4 clients must queue (or shed) yet
        # every client finishes its budget
        with QueryService(service.system, max_workers=1,
                          max_queued=2) as narrow:
            driver = TrafficDriver(
                narrow,
                airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                                  scan=0.0),
                clients=4,
                think_ms=0.05,
                seed=11,
            )
            report = driver.run(queries_per_client=3)
        assert report.completed == 12
        # with one worker and saturating clients, waiting must appear
        assert report.p99_ms > report.per_class["point"].mean_service_ms

    def test_mvcc_flag_follows_service(self, loaded_service):
        """The virtual loop models whatever the service runs: snapshot
        reads by default (PR 9), the writer-exclusive stall only when
        the service was built with ``mvcc=False``."""
        db, service = loaded_service
        assert service.mvcc is True
        writer, _ = airca_delay_writer(db, think_ms=0.2)
        mix = airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                                scan=0.0)

        def run(svc):
            driver = TrafficDriver(
                svc, mix, clients=3, think_ms=6.0,
                update_stream=writer, seed=21,
            )
            return driver.run(queries_per_client=8, updates=20)

        snap = run(service)
        with QueryService(service.system, max_workers=2,
                          max_queued=8, mvcc=False) as locked:
            excl = run(locked)
        # under MVCC the write commits concurrently: its latency is its
        # own service time; under the exclusive lock it pays the drain
        assert snap.updates_applied == excl.updates_applied == 20
        assert snap.update_p99_ms * 5 < excl.update_p99_ms
        # and the exclusive run can only be slower end to end
        assert excl.duration_ms >= snap.duration_ms

    def test_sim_and_threaded_agree_writer_leaves_p99_flat(
        self, loaded_service
    ):
        """The virtual loop's headline claim — a sustained writer does
        not inflate reader p99 under MVCC — must agree with the live
        thread pool, not just the simulator."""
        db, service = loaded_service
        mix = airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0,
                                scan=0.0)

        def drivers():
            writer, _ = airca_delay_writer(db, think_ms=0.2)
            quiet = TrafficDriver(
                service, mix, clients=3, think_ms=6.0, seed=21
            )
            stormy = TrafficDriver(
                service, mix, clients=3, think_ms=6.0,
                update_stream=writer, seed=21,
            )
            return quiet, stormy

        quiet, stormy = drivers()
        sim_quiet = quiet.run(queries_per_client=10)
        sim_stormy = stormy.run(queries_per_client=10, updates=25)
        # virtual time is deterministic: the writer changes reader p99
        # not at all (it gates nothing and occupies no worker)
        assert sim_stormy.p99_ms <= sim_quiet.p99_ms * 1.05

        quiet, stormy = drivers()
        thr_quiet = quiet.run_threads(queries_per_client=10)
        thr_stormy = stormy.run_threads(queries_per_client=10,
                                        updates=25)
        # wall clock is noisy (GIL, scheduler): agree within a small
        # factor, nothing near the exclusive lock's drain-sized stall
        assert thr_stormy.p99_ms <= max(
            thr_quiet.p99_ms * 4.0, thr_quiet.p99_ms + 25.0
        ), (
            f"threaded p99 {thr_stormy.p99_ms:.1f}ms vs quiet "
            f"{thr_quiet.p99_ms:.1f}ms disagrees with the simulator"
        )
        assert thr_stormy.completed == 30

    def test_driver_validates_inputs(self, loaded_service):
        _, service = loaded_service
        with pytest.raises(ValueError):
            TrafficDriver(service, [], clients=2)
        with pytest.raises(ValueError):
            TrafficDriver(
                service,
                [QueryClass("x", 1.0, lambda rng: "select 1")],
                clients=0,
            )
