"""MOT and AIRCA workload tests: shape, skew, templates, classification."""

import pytest

from repro.baav import BaaVStore
from repro.core import Zidian, is_data_preserving
from repro.kv import KVCluster
from repro.sql import execute, plan_sql
from repro.workloads import airca_generator, mot_generator
from repro.workloads.airca import airca_baav_schema, airca_schema
from repro.workloads.mot import mot_baav_schema, mot_schema


class TestMOTShape:
    def test_3_tables_42_attributes(self):
        schema = mot_schema()
        assert len(schema) == 3
        assert schema.total_attributes() == 42

    def test_skewed_makes(self, mot_small):
        """Zipf FKs: the top make dominates (unlike TPC-H's uniformity)."""
        makes = mot_small["VEHICLE"].column("make")
        top = max(set(makes), key=makes.count)
        assert makes.count(top) > len(makes) / 15

    def test_foreign_keys_resolve(self, mot_small):
        vids = mot_small["VEHICLE"].distinct_values("vehicle_id")
        assert mot_small["TEST"].distinct_values("vehicle_id") <= vids
        assert mot_small["SURVEY"].distinct_values("vehicle_id") <= vids

    def test_data_preserving(self):
        assert is_data_preserving(mot_schema(), mot_baav_schema()).preserved

    def test_bounded_degrees_on_selective_keys(self, mot_small):
        """q1–q6 instances stay under the degree bound by construction."""
        store = BaaVStore.map_database(
            mot_small, mot_baav_schema(), KVCluster(2)
        )
        for name in ("veh_by_id", "test_by_vehicle", "survey_by_vehicle",
                     "test_by_station_date", "survey_by_road_date"):
            assert store.instance(name).degree <= 64, name

    def test_skewed_key_unbounded(self, mot_small):
        store = BaaVStore.map_database(
            mot_small, mot_baav_schema(), KVCluster(2)
        )
        assert store.instance("veh_by_make").degree > 5


class TestAIRCAShape:
    def test_7_tables_358_attributes(self):
        schema = airca_schema()
        assert len(schema) == 7
        assert schema.total_attributes() == 358

    def test_data_preserving(self):
        assert is_data_preserving(
            airca_schema(), airca_baav_schema()
        ).preserved

    def test_foreign_keys_resolve(self, airca_small):
        carriers = airca_small["CARRIER"].distinct_values("carrier_id")
        assert airca_small["FLIGHT"].distinct_values("carrier_id") <= carriers
        fids = airca_small["FLIGHT"].distinct_values("flight_id")
        assert airca_small["DELAY"].distinct_values("flight_id") <= fids


class TestTemplates:
    @pytest.mark.parametrize("which", ["mot", "airca"])
    def test_generator_yields_runnable_queries(
        self, which, mot_small, airca_small
    ):
        db = mot_small if which == "mot" else airca_small
        gen = mot_generator(1) if which == "mot" else airca_generator(1)
        queries = gen.generate(db, per_template=1)
        assert len(queries) == 12
        for query in queries:
            plan, _ = plan_sql(query.sql, db.schema)
            execute(plan, db)  # must not raise

    def test_generator_deterministic(self, mot_small):
        a = mot_generator(7).generate(mot_small, per_template=2)
        b = mot_generator(7).generate(mot_small, per_template=2)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_36_queries_like_the_paper(self, mot_small):
        queries = mot_generator(3).generate(mot_small, per_template=3)
        assert len(queries) == 36

    @pytest.mark.parametrize("which", ["mot", "airca"])
    def test_scan_free_classification(self, which, mot_small, airca_small):
        if which == "mot":
            db, baav, gen = mot_small, mot_baav_schema(), mot_generator(5)
        else:
            db, baav, gen = (
                airca_small, airca_baav_schema(), airca_generator(5),
            )
        store = BaaVStore.map_database(db, baav, KVCluster(2))
        zidian = Zidian(db.schema, baav, store)
        for query in gen.generate(db, per_template=1):
            decision = zidian.decide(query.sql)
            assert decision.is_scan_free == query.expected_scan_free, (
                query.template
            )
            # the paper's real-life scan-free queries are also bounded
            if query.expected_scan_free:
                assert decision.is_bounded, query.template
