import pytest

from repro.errors import SchemaError
from repro.relational import AttrType, Relation, RelationSchema
from repro.relational.compare import bag_equal, normalize_row, rows_bag_equal


def make_relation():
    schema = RelationSchema.of(
        "R", {"a": AttrType.INT, "b": AttrType.STR}, ["a"]
    )
    return Relation(schema, [(1, "x"), (2, "y"), (2, "y"), (3, None)])


class TestRelation:
    def test_len_and_iter(self):
        rel = make_relation()
        assert len(rel) == 4
        assert list(rel)[0] == (1, "x")

    def test_project_is_bag(self):
        rel = make_relation()
        assert rel.project(["b"]) == [("x",), ("y",), ("y",), (None,)]

    def test_select(self):
        rel = make_relation()
        out = rel.select(lambda r: r[0] == 2)
        assert len(out) == 2

    def test_column_and_distinct(self):
        rel = make_relation()
        assert rel.column("a") == [1, 2, 2, 3]
        assert rel.distinct_values("a") == {1, 2, 3}

    def test_num_values(self):
        assert make_relation().num_values() == 8

    def test_size_bytes_positive(self):
        assert make_relation().size_bytes() > 0

    def test_bag_equality_ignores_order(self):
        rel1 = make_relation()
        schema = rel1.schema
        rel2 = Relation(schema, [(3, None), (2, "y"), (1, "x"), (2, "y")])
        assert rel1 == rel2

    def test_bag_equality_respects_multiplicity(self):
        rel1 = make_relation()
        rel2 = Relation(rel1.schema, [(1, "x"), (2, "y"), (3, None)])
        assert rel1 != rel2

    def test_validate_arity(self):
        rel = Relation(make_relation().schema, [(1,)])
        with pytest.raises(SchemaError):
            rel.validate()

    def test_validate_types(self):
        from repro.errors import TypeMismatchError

        rel = Relation(make_relation().schema, [("bad", "x")])
        with pytest.raises(TypeMismatchError):
            rel.validate()

    def test_pretty_contains_header(self):
        text = make_relation().pretty()
        assert "a" in text and "b" in text and "NULL" in text

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(make_relation())


class TestCompare:
    def test_normalize_row_floats(self):
        assert normalize_row((369.34000000000003,)) == normalize_row((369.34,))

    def test_rows_bag_equal_tolerates_epsilon(self):
        assert rows_bag_equal([(1, 533.9599999999999)], [(1, 533.96)])

    def test_rows_bag_not_equal_on_real_difference(self):
        assert not rows_bag_equal([(1, 533.0)], [(1, 534.0)])

    def test_bag_equal_checks_names(self):
        rel1 = make_relation()
        other_schema = RelationSchema.of(
            "R", {"x": AttrType.INT, "b": AttrType.STR}
        )
        rel2 = Relation(other_schema, rel1.rows)
        assert not bag_equal(rel1, rel2)
        assert bag_equal(rel1, rel2, check_names=False)


class TestDatabase:
    def test_from_dict_and_counts(self, paper_db):
        assert paper_db.num_tuples() == 4 + 5 + 3
        assert "SUPPLIER" in paper_db

    def test_getitem(self, paper_db):
        assert len(paper_db["NATION"]) == 3

    def test_insert(self, paper_db):
        paper_db.insert("NATION", (40, "ITALY"))
        assert len(paper_db["NATION"]) == 4

    def test_copy_is_independent(self, paper_db):
        copy = paper_db.copy()
        copy.insert("NATION", (40, "ITALY"))
        assert len(paper_db["NATION"]) == 3

    def test_summary(self, paper_db):
        assert "SUPPLIER" in paper_db.summary()

    def test_unknown_relation(self, paper_db):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            paper_db.relation("NOPE")
