import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import (
    AttrType,
    infer_type,
    row_size,
    value_size,
)


class TestAttrType:
    def test_validate_int(self):
        AttrType.INT.validate(5)

    def test_validate_int_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            AttrType.INT.validate("5")

    def test_validate_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttrType.INT.validate(True)

    def test_validate_float_accepts_int(self):
        AttrType.FLOAT.validate(5)
        AttrType.FLOAT.validate(5.5)

    def test_validate_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttrType.FLOAT.validate(False)

    def test_validate_str(self):
        AttrType.STR.validate("hello")
        with pytest.raises(TypeMismatchError):
            AttrType.STR.validate(5)

    def test_validate_date_is_string(self):
        AttrType.DATE.validate("1994-01-01")

    def test_null_always_valid(self):
        for attr_type in AttrType:
            attr_type.validate(None)

    def test_python_type(self):
        assert AttrType.INT.python_type is int
        assert AttrType.STR.python_type is str


class TestSizeModel:
    def test_numeric_sizes(self):
        assert value_size(42) == 8
        assert value_size(3.14) == 8

    def test_bool_size(self):
        assert value_size(True) == 1

    def test_null_size(self):
        assert value_size(None) == 1

    def test_string_size_scales_with_length(self):
        assert value_size("ab") == 4 + 2
        assert value_size("") == 4

    def test_row_size_sums(self):
        assert row_size((1, "ab", None)) == 8 + 6 + 1

    def test_unsupported_type(self):
        with pytest.raises(TypeMismatchError):
            value_size([1, 2])


class TestInferType:
    def test_infer(self):
        assert infer_type(1) is AttrType.INT
        assert infer_type(1.0) is AttrType.FLOAT
        assert infer_type("x") is AttrType.STR
        assert infer_type(True) is AttrType.BOOL
        assert infer_type(None) is None

    def test_infer_unsupported(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())
