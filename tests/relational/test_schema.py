import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational import Attribute, AttrType, DatabaseSchema, RelationSchema


class TestAttribute:
    def test_basic(self):
        attr = Attribute("name", AttrType.STR)
        assert attr.name == "name"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_default_type(self):
        assert Attribute("x").type is AttrType.STR


class TestRelationSchema:
    def make(self):
        return RelationSchema.of(
            "R",
            {"a": AttrType.INT, "b": AttrType.STR, "c": AttrType.FLOAT},
            ["a"],
        )

    def test_attribute_names(self):
        assert self.make().attribute_names == ("a", "b", "c")

    def test_arity(self):
        assert self.make().arity == 3

    def test_index_of(self):
        schema = self.make()
        assert schema.index_of("b") == 1
        with pytest.raises(UnknownAttributeError):
            schema.index_of("z")

    def test_contains(self):
        schema = self.make()
        assert "a" in schema
        assert "z" not in schema

    def test_type_of(self):
        assert self.make().type_of("c") is AttrType.FLOAT

    def test_primary_key(self):
        assert self.make().primary_key == ("a",)

    def test_unknown_pk_rejected(self):
        with pytest.raises(UnknownAttributeError):
            RelationSchema.of("R", {"a": AttrType.INT}, ["nope"])

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [Attribute("a"), Attribute("a")])

    def test_empty_attrs_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_project_positions(self):
        assert self.make().project_positions(["c", "a"]) == (2, 0)

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        other = RelationSchema.of("R", {"a": AttrType.INT}, ["a"])
        assert self.make() != other


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema()
        r = RelationSchema.of("R", {"a": AttrType.INT})
        schema.add(r)
        assert schema.relation("R") is r
        assert "R" in schema
        assert len(schema) == 1

    def test_duplicate_rejected(self):
        r = RelationSchema.of("R", {"a": AttrType.INT})
        schema = DatabaseSchema([r])
        with pytest.raises(SchemaError):
            schema.add(r)

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            DatabaseSchema().relation("nope")

    def test_total_attributes(self):
        schema = DatabaseSchema(
            [
                RelationSchema.of("R", {"a": AttrType.INT, "b": AttrType.INT}),
                RelationSchema.of("S", {"c": AttrType.INT}),
            ]
        )
        assert schema.total_attributes() == 3
