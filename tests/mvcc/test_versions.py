"""Unit tests of the version store (chains, visibility, scans, GC)."""

from __future__ import annotations

from repro.mvcc import VersionStore

NS = "rel"


def put(store: VersionStore, key: bytes, epoch: int, old) -> bool:
    """One committed overwrite: retain ``old`` as dying at ``epoch``."""
    return store.record_write(NS, key, epoch, old)


class TestRecord:
    def test_untracked_key_reads_from_base(self):
        store = VersionStore()
        assert store.read_visible(NS, b"k", 5) == (False, None)
        assert store.tracked_keys() == 0

    def test_overwrite_retains_old_value_for_older_snapshots(self):
        store = VersionStore()
        assert put(store, b"k", 1, b"v0") is True
        # a snapshot at the load state still sees v0
        assert store.read_visible(NS, b"k", 0) == (True, b"v0")
        # a snapshot at the commit (or later) reads the base
        assert store.read_visible(NS, b"k", 1) == (False, None)
        assert store.read_visible(NS, b"k", 7) == (False, None)

    def test_record_is_idempotent_per_commit_epoch(self):
        store = VersionStore()
        assert put(store, b"k", 3, b"v0") is True
        # the same transaction re-writes the key (block split): the
        # pre-transaction value must not be displaced
        assert put(store, b"k", 3, b"mid") is False
        assert store.read_visible(NS, b"k", 2) == (True, b"v0")
        assert store.tracked_versions() == 1
        assert store.version_needed(NS, b"k", 3) is False
        assert store.version_needed(NS, b"k", 4) is True

    def test_chain_walks_newest_first_and_counts_skips(self):
        store = VersionStore()
        put(store, b"k", 1, b"v0")
        put(store, b"k", 2, b"v1")
        put(store, b"k", 3, b"v2")
        assert store.read_visible(NS, b"k", 0) == (True, b"v0")
        assert store.read_visible(NS, b"k", 1) == (True, b"v1")
        assert store.read_visible(NS, b"k", 2) == (True, b"v2")
        stats = store.stats()
        assert stats.overlay_reads == 3
        # skips: base + 2 entries, base + 1 entry, base only
        assert stats.versions_skipped == 3 + 2 + 1

    def test_inserted_after_snapshot_reads_absent(self):
        store = VersionStore()
        put(store, b"new", 4, None)  # insert: old value was absent
        handled, value = store.read_visible(NS, b"new", 2)
        assert handled is True and value is None

    def test_namespaces_are_independent(self):
        store = VersionStore()
        store.record_write("a", b"k", 1, b"va")
        assert store.read_visible("b", b"k", 0) == (False, None)

    def test_read_visible_many_matches_singles(self):
        store = VersionStore()
        put(store, b"k1", 2, b"old1")
        put(store, b"k3", 2, None)
        out = store.read_visible_many(NS, [b"k1", b"k2", b"k3"], 1)
        assert out == [(True, b"old1"), (False, None), (True, None)]

    def test_is_overlaid(self):
        store = VersionStore()
        put(store, b"k", 5, b"old")
        assert store.is_overlaid(NS, b"k", 4) is True
        assert store.is_overlaid(NS, b"k", 5) is False
        assert store.is_overlaid(NS, b"other", 4) is False


class TestEpochContext:
    def test_reading_context_is_thread_local_and_nests(self):
        store = VersionStore()
        assert store.read_epoch() is None
        with store.reading(3):
            assert store.read_epoch() == 3
            with store.reading(5):
                assert store.read_epoch() == 5
            assert store.read_epoch() == 3
        assert store.read_epoch() is None

    def test_recording_context(self):
        store = VersionStore()
        assert store.recording_epoch() is None
        with store.recording(7):
            assert store.recording_epoch() == 7
        assert store.recording_epoch() is None


class TestScanAdjust:
    def test_scan_replaces_too_new_values(self):
        store = VersionStore()
        put(store, b"k1", 3, b"old1")
        entries = [("n0", b"k1", b"new1"), ("n1", b"k2", b"v2")]
        out = store.adjust_scan(NS, entries, 2)
        # overlay-served pairs carry tag None (no node served them)
        assert (None, b"k1", b"old1") in out
        assert ("n1", b"k2", b"v2") in out
        assert len(out) == 2

    def test_scan_drops_keys_inserted_after_snapshot(self):
        store = VersionStore()
        put(store, b"k9", 4, None)
        out = store.adjust_scan(NS, [("n0", b"k9", b"v9")], 3)
        assert out == []

    def test_scan_appends_keys_deleted_after_snapshot(self):
        store = VersionStore()
        # delete: the new base value is absent -> base scan misses it,
        # but a snapshot at 1 must still see the old value
        put(store, b"gone", 2, b"vg")
        out = store.adjust_scan(NS, [("n0", b"k", b"v")], 1)
        assert ("n0", b"k", b"v") in out
        assert (None, b"gone", b"vg") in out

    def test_scan_passthrough_at_current_epoch(self):
        store = VersionStore()
        put(store, b"k1", 2, b"old")
        entries = [("n0", b"k1", b"new")]
        assert store.adjust_scan(NS, entries, 2) == entries

    def test_adjust_keys_mirrors_scan_semantics(self):
        store = VersionStore()
        put(store, b"added", 3, None)   # inserted after E=2
        put(store, b"gone", 3, b"vg")   # deleted after E=2 (base absent)
        keys = store.adjust_keys(NS, [b"base", b"added"], 2)
        assert sorted(keys) == [b"base", b"gone"]
        # at the commit epoch the base set is already right
        assert store.adjust_keys(NS, [b"base", b"added"], 3) == [
            b"base", b"added"
        ]


class TestGC:
    def test_gc_reclaims_only_below_horizon(self):
        store = VersionStore()
        put(store, b"k", 1, b"v0")
        put(store, b"k", 2, b"v1")
        # a snapshot at 1 still needs (1, 2, v1); (0, 1, v0) is dead
        assert store.gc(horizon=1) == 1
        assert store.read_visible(NS, b"k", 1) == (True, b"v1")
        assert store.tracked_versions() == 1

    def test_gc_forgets_emptied_keys(self):
        store = VersionStore()
        put(store, b"k", 1, b"v0")
        assert store.gc(horizon=5) == 1
        assert store.tracked_keys() == 0
        assert store.tracked_versions() == 0
        # the base is now visible at every epoch
        assert store.read_visible(NS, b"k", 0) == (False, None)

    def test_gc_counts_into_stats(self):
        store = VersionStore()
        put(store, b"k", 1, b"v0")
        store.gc(horizon=1)
        assert store.stats().gc_reclaimed == 1
        assert store.thread_stats().gc_reclaimed == 1

    def test_gc_noop_returns_zero(self):
        store = VersionStore()
        put(store, b"k", 5, b"v0")
        assert store.gc(horizon=0) == 0

    def test_forget_namespace(self):
        store = VersionStore()
        put(store, b"k", 1, b"v")
        store.record_write("other", b"k", 1, b"v")
        assert store.forget_namespace(NS) == 1
        assert store.tracked_keys() == 1
        assert store.read_visible(NS, b"k", 0) == (False, None)

    def test_repr_reports_sizes(self):
        store = VersionStore()
        put(store, b"k", 1, b"v")
        assert repr(store) == "VersionStore(keys=1, versions=1)"
