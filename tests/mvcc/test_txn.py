"""Unit tests of the transaction manager (commit protocol, GC pacing)."""

from __future__ import annotations

import time

import pytest

from repro.errors import TransactionError
from repro.mvcc import EpochManager, TransactionManager, VersionStore


def make_manager(applied=None, apply_fn=None, **kwargs):
    versions = VersionStore()
    if apply_fn is None:
        def apply_fn(relation, inserts, deletes):
            applied.append((relation, inserts, deletes))
    return TransactionManager(
        EpochManager(), versions, apply_fn, **kwargs
    )


class TestCommitProtocol:
    def test_commit_replays_statements_in_order_and_publishes(self):
        applied = []
        manager = make_manager(applied)
        with manager.begin() as txn:
            txn.apply_updates("A", inserts=[(1,)])
            txn.apply_updates("B", deletes=[(2,)])
        assert txn.state == "committed"
        assert txn.epoch == 1
        assert applied == [("A", [(1,)], []), ("B", [], [(2,)])]
        assert manager.epochs.published == 1

    def test_statements_replay_inside_recording_context(self):
        seen = []
        manager = None

        def apply_fn(relation, inserts, deletes):
            seen.append(manager.versions.recording_epoch())

        manager = make_manager(apply_fn=apply_fn)
        with manager.begin() as txn:
            txn.apply_updates("A", inserts=[(1,)])
        assert seen == [txn.epoch]
        assert manager.versions.recording_epoch() is None

    def test_empty_transaction_burns_no_epoch(self):
        manager = make_manager([])
        with manager.begin() as txn:
            pass
        assert txn.state == "committed"
        assert txn.epoch == 0
        assert manager.epochs.published == 0

    def test_failed_apply_aborts_without_publishing(self):
        def apply_fn(relation, inserts, deletes):
            raise ValueError("node down")

        manager = make_manager(apply_fn=apply_fn)
        txn = manager.begin()
        txn.apply_updates("A", inserts=[(1,)])
        with pytest.raises(ValueError):
            txn.commit()
        assert txn.state == "aborted"
        assert manager.epochs.published == 0
        # the failed epoch is burned, not reused by the next commit
        applied = []
        manager._apply = lambda r, i, d: applied.append(r)
        with manager.begin() as txn2:
            txn2.apply_updates("A", inserts=[(2,)])
        assert txn2.epoch == 2

    def test_context_manager_aborts_on_body_error(self):
        applied = []
        manager = make_manager(applied)
        with pytest.raises(RuntimeError):
            with manager.begin() as txn:
                txn.apply_updates("A", inserts=[(1,)])
                raise RuntimeError("client bailed")
        assert txn.state == "aborted"
        assert applied == []

    def test_closed_transaction_rejects_further_use(self):
        manager = make_manager([])
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.apply_updates("A", inserts=[(1,)])
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.abort()

    def test_abort_discards_buffered_statements(self):
        applied = []
        manager = make_manager(applied)
        txn = manager.begin()
        txn.apply_updates("A", inserts=[(1,)])
        txn.abort()
        assert txn.state == "aborted"
        assert txn.statements == 0
        txn.abort()  # aborting again is fine
        assert applied == []

    def test_repr(self):
        manager = make_manager([])
        txn = manager.begin()
        assert "open" in repr(txn)
        assert "published=0" in repr(manager)


class TestSnapshots:
    def test_snapshot_pins_published_and_sets_read_epoch(self):
        applied = []
        manager = make_manager(applied)
        with manager.begin() as txn:
            txn.apply_updates("A", inserts=[(1,)])
        with manager.snapshot() as epoch:
            assert epoch == txn.epoch
            assert manager.versions.read_epoch() == epoch
            assert manager.epochs.pinned() == 1
        assert manager.versions.read_epoch() is None
        assert manager.epochs.pinned() == 0

    def test_last_unpin_runs_gc(self):
        applied = []
        manager = make_manager(applied)
        with manager.snapshot():  # pins epoch 0
            # a commit supersedes a key the snapshot can still see
            manager.versions.record_write("A", b"k", 1, b"v0")
            manager.epochs.publish(1)
            assert manager.versions.tracked_versions() == 1
        # snapshot released: horizon jumped to 1, the version is dead
        assert manager.versions.tracked_versions() == 0


class TestGCPacing:
    def test_amortized_gc_every_interval_commits(self):
        versions = VersionStore()

        def apply_fn(relation, inserts, deletes):
            # each commit supersedes the same key once
            epoch = versions.recording_epoch()
            versions.record_write("A", b"k", epoch, b"old")

        manager = TransactionManager(
            EpochManager(), versions, apply_fn, gc_interval=3
        )
        for _ in range(2):
            with manager.begin() as txn:
                txn.apply_updates("A", inserts=[(1,)])
        assert versions.tracked_versions() == 2  # not swept yet
        with manager.begin() as txn:
            txn.apply_updates("A", inserts=[(1,)])
        assert versions.tracked_versions() == 0  # 3rd commit swept

    def test_gc_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            make_manager([], gc_interval=0)

    def test_background_gc_thread_sweeps_and_stops(self):
        versions = VersionStore()
        manager = TransactionManager(
            EpochManager(), versions, lambda r, i, d: None,
            gc_period_s=0.01,
        )
        try:
            versions.record_write("A", b"k", 1, b"old")
            manager.epochs.publish(1)
            deadline = time.time() + 5.0
            while versions.tracked_versions() and time.time() < deadline:
                time.sleep(0.005)
            assert versions.tracked_versions() == 0
        finally:
            manager.close()
        assert manager._gc_thread is None
        manager.close()  # idempotent

    def test_start_gc_thread_validates_period(self):
        manager = make_manager([])
        with pytest.raises(ValueError):
            manager.start_gc_thread(0.0)
