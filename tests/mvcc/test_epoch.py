"""Unit tests of the epoch clock (publish / pin / horizon)."""

from __future__ import annotations

import pytest

from repro.errors import TransactionError
from repro.mvcc import EpochManager


class TestClock:
    def test_starts_at_load_state(self):
        epochs = EpochManager()
        assert epochs.published == 0
        assert epochs.pinned() == 0
        assert epochs.horizon() == 0

    def test_begin_commit_allocates_after_published(self):
        epochs = EpochManager()
        assert epochs.begin_commit() == 1
        epochs.publish(1)
        assert epochs.published == 1
        assert epochs.begin_commit() == 2

    def test_failed_commit_epoch_is_never_reused(self):
        epochs = EpochManager()
        burned = epochs.begin_commit()  # commit fails: never published
        assert epochs.published == 0
        assert epochs.begin_commit() == burned + 1

    def test_publish_is_monotone(self):
        epochs = EpochManager()
        a = epochs.begin_commit()
        b = epochs.begin_commit()
        epochs.publish(b)
        epochs.publish(a)  # late publish of an older epoch: ignored
        assert epochs.published == b


class TestPins:
    def test_pin_takes_published_and_refcounts(self):
        epochs = EpochManager()
        epochs.publish(epochs.begin_commit())
        assert epochs.pin() == 1
        assert epochs.pin() == 1
        assert epochs.pinned() == 2
        assert epochs.unpin(1) is False  # one snapshot still live
        assert epochs.unpin(1) is True   # last one: GC moment
        assert epochs.pinned() == 0

    def test_unpin_unpinned_epoch_raises(self):
        epochs = EpochManager()
        with pytest.raises(TransactionError):
            epochs.unpin(0)

    def test_unpin_reports_remaining_pins_on_other_epochs(self):
        epochs = EpochManager()
        epochs.pin()  # epoch 0
        epochs.publish(epochs.begin_commit())
        epochs.pin()  # epoch 1
        # releasing epoch 1 is not the last pin anywhere: 0 still held
        assert epochs.unpin(1) is False
        assert epochs.unpin(0) is True


class TestHorizon:
    def test_horizon_is_oldest_pin(self):
        epochs = EpochManager()
        epochs.pin()  # pin 0
        epochs.publish(epochs.begin_commit())
        epochs.pin()  # pin 1
        assert epochs.horizon() == 0
        epochs.unpin(0)
        assert epochs.horizon() == 1
        epochs.unpin(1)
        assert epochs.horizon() == 1  # falls back to published

    def test_horizon_never_moves_backwards_for_new_pins(self):
        epochs = EpochManager()
        epochs.publish(epochs.begin_commit())
        epochs.publish(epochs.begin_commit())
        assert epochs.pin() == 2  # new pins always take published
        assert epochs.horizon() == 2

    def test_repr_mentions_state(self):
        epochs = EpochManager()
        epochs.pin()
        assert "published=0" in repr(epochs)
        assert "pins={0: 1}" in repr(epochs)
