#!/usr/bin/env python3
"""Doc-link checker: every path/module reference in the docs must exist.

Scans README.md, ROADMAP.md and docs/*.md for backticked references and
verifies each against the tree:

* **path refs** — whole backtick contents that look like a repository
  path (``src/repro/kba/compile.py``, ``benchmarks/baselines/*.json``).
  Resolved relative to the repo root, then ``src/``; ``*`` wildcards go
  through glob and must match at least one file; a trailing
  ``:<line>`` anchor is ignored.
* **module refs** — whole backtick contents of the form
  ``repro.kba.compile`` or ``repro.kba.compile.compile_plan``. The
  module must resolve under ``src/``; when the last component is not a
  module it must name a top-level symbol (def / class / assignment) of
  the parent module, checked via AST.

Anything else inside backticks (shell lines, env vars, code snippets)
is deliberately ignored — the checker only polices references that
claim to point at the tree. Exits 1 listing every stale reference, so
docs cannot drift from a refactor silently; CI runs it as a blocking
step and the tier-1 suite invokes it as a test.
"""

from __future__ import annotations

import ast
import glob
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: documentation files whose references are policed
DOC_FILES = ("README.md", "ROADMAP.md")
DOC_GLOBS = ("docs/*.md",)

_BACKTICK = re.compile(r"`([^`\n]+)`")
#: whole-content shapes that claim to be a repo path: either anchored
#: at a known top-level directory, or any slashed file reference (e.g.
#: ``kv/cache.py``, resolved relative to ``src/repro/`` too)
_PATH_REF = re.compile(
    r"^(?:(?:src|tests|benchmarks|docs|examples|tools|\.github)"
    r"/[\w\-./*]+"
    r"|[\w\-*]+(?:/[\w\-.*]+)+\.(?:py|md|json|yml|yaml|txt|toml|sh))$"
)
_LINE_ANCHOR = re.compile(r":\d+(?:-\d+)?$")
#: whole-content dotted module (optionally .symbol) under repro
_MODULE_REF = re.compile(r"^repro(?:\.\w+)+$")


def doc_files(repo: Path = REPO) -> List[Path]:
    files = [repo / name for name in DOC_FILES if (repo / name).exists()]
    for pattern in DOC_GLOBS:
        files.extend(sorted(repo.glob(pattern)))
    return files


def references(text: str) -> Iterator[Tuple[str, str]]:
    """Yield ('path' | 'module', ref) for every checkable backtick."""
    for match in _BACKTICK.finditer(text):
        ref = match.group(1).strip()
        if _PATH_REF.match(_LINE_ANCHOR.sub("", ref)):
            yield "path", _LINE_ANCHOR.sub("", ref)
        elif _MODULE_REF.match(ref):
            yield "module", ref


def path_exists(ref: str, repo: Path = REPO) -> bool:
    for root in (repo, repo / "src", repo / "src" / "repro"):
        if "*" in ref:
            if glob.glob(str(root / ref)):
                return True
        elif (root / ref).exists():
            return True
    return False


def _module_path(parts: List[str], repo: Path = REPO) -> Path | None:
    """The file for module ``parts``, or None if it is not a module."""
    base = repo / "src" / Path(*parts)
    if (base / "__init__.py").exists():
        return base / "__init__.py"
    candidate = base.with_suffix(".py")
    return candidate if candidate.exists() else None


def _top_level_names(module_file: Path) -> set:
    tree = ast.parse(module_file.read_text(encoding="utf-8"))
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def module_exists(ref: str, repo: Path = REPO) -> bool:
    parts = ref.split(".")
    if _module_path(parts, repo) is not None:
        return True
    module_file = _module_path(parts[:-1], repo)
    if module_file is None:
        return False
    return parts[-1] in _top_level_names(module_file)


def check(repo: Path = REPO) -> List[str]:
    """All stale references, as ``file: kind ref`` strings."""
    stale = []
    for doc in doc_files(repo):
        for kind, ref in references(doc.read_text(encoding="utf-8")):
            ok = path_exists(ref, repo) if kind == "path" else module_exists(
                ref, repo
            )
            if not ok:
                stale.append(f"{doc.relative_to(repo)}: {kind} `{ref}`")
    return stale


def main() -> int:
    stale = check()
    docs = doc_files()
    if stale:
        print(f"doc-link check FAILED ({len(stale)} stale references):")
        for line in stale:
            print(f"  {line}")
        return 1
    print(f"doc-link check OK ({len(docs)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
