#!/usr/bin/env python3
"""An interactive SQL shell over a Zidian deployment.

Loads a workload (tpch / mot / airca), builds the baseline and Zidian
systems side by side, and answers every statement on both, printing the
result and the comparative metrics. Dot-commands expose the middleware:

    .explain <sql>   M1/M2 trace: decision, chase, witnesses, KBA plan
    .schema          the BaaV schema in play
    .tables          relations and sizes
    .queries         the workload's canned queries (by name, e.g. q11)
    .quit

Run:  python examples/zidian_shell.py [tpch|mot|airca] [scale]
Pipe a script:  echo "q11" | python examples/zidian_shell.py tpch
"""

import sys

from repro.errors import ReproError
from repro.systems import SQLOverNoSQL, ZidianSystem


def load_workload(name: str, scale: float):
    if name == "tpch":
        from repro.workloads.tpch import QUERIES, generate_tpch, tpch_baav_schema

        db = generate_tpch(scale_factor=0.001 * scale)
        return db, tpch_baav_schema(), dict(QUERIES)
    if name == "mot":
        from repro.workloads import mot_generator
        from repro.workloads.mot import generate_mot, mot_baav_schema

        db = generate_mot(scale=scale)
        canned = {
            q.template: q.sql
            for q in mot_generator(1).generate(db, per_template=1)
        }
        return db, mot_baav_schema(), canned
    if name == "airca":
        from repro.workloads import airca_generator
        from repro.workloads.airca import airca_baav_schema, generate_airca

        db = generate_airca(scale=scale)
        canned = {
            q.template: q.sql
            for q in airca_generator(1).generate(db, per_template=1)
        }
        return db, airca_baav_schema(), canned
    raise SystemExit(f"unknown workload {name!r} (tpch|mot|airca)")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tpch"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0
    print(f"Loading {name} (scale {scale}) ...")
    db, baav, canned = load_workload(name, scale)
    print(db.summary())

    baseline = SQLOverNoSQL("hbase", workers=8, storage_nodes=4)
    baseline.load(db)
    zidian = ZidianSystem("hbase", workers=8, storage_nodes=4)
    zidian.load(db, baav)
    print(f"\nSystems ready: {baseline.name} vs {zidian.name}. "
          "Type SQL, a canned query name, or .help")

    while True:
        try:
            line = input("zidian> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in (".quit", ".exit"):
            break
        if line == ".help":
            print(__doc__)
            continue
        if line == ".tables":
            print(db.summary())
            continue
        if line == ".schema":
            for schema in baav:
                print(f"  {schema!r}")
            continue
        if line == ".queries":
            for label in sorted(canned, key=str):
                print(f"  {label}")
            continue
        if line.startswith(".explain"):
            sql = line[len(".explain"):].strip()
            sql = canned.get(sql, sql)
            try:
                print(zidian.middleware.explain(sql))
            except ReproError as exc:
                print(f"error: {exc}")
            continue
        sql = canned.get(line, line)
        try:
            base_result = baseline.execute(sql)
            z_result = zidian.execute(sql)
        except ReproError as exc:
            print(f"error: {exc}")
            continue
        print(z_result.relation.pretty(limit=15))
        print(f"\n  decision : {z_result.decision.summary()}")
        print(f"  {baseline.name:<10}: {base_result.metrics.summary()}")
        print(f"  {zidian.name:<10}: {z_result.metrics.summary()}")
        ratio = (
            base_result.metrics.sim_time_ms
            / max(z_result.metrics.sim_time_ms, 1e-9)
        )
        print(f"  speedup  : {ratio:.1f}x\n")


if __name__ == "__main__":
    main()
