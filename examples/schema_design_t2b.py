#!/usr/bin/env python3
"""Automatic BaaV schema design with T2B (§8.1, module M4).

Mines QCS access patterns from a workload of historical queries, runs the
T2B designer under a storage budget (3.5x the dataset, like the paper's
setting), and verifies that the workload becomes scan-free over the
designed schema.

Run:  python examples/schema_design_t2b.py
"""

from repro.core import Zidian, design_schema, extract_workload_qcs
from repro.sql import bind, parse
from repro.systems import ZidianSystem
from repro.workloads.airca import generate_airca
from repro.workloads import airca_generator


def main() -> None:
    database = generate_airca(scale=2.0)
    print(database.summary())

    # the "historical workload": instances of the scan-free templates
    generator = airca_generator(seed=123)
    workload = [
        q.sql
        for q in generator.generate(
            database, per_template=2,
            templates=("q1", "q2", "q3", "q4", "q5", "q6"),
        )
    ]
    print(f"\nWorkload: {len(workload)} historical queries")

    # step 1: abstract the workload into QCS Z[X]
    bound_queries = [bind(parse(sql), database.schema) for sql in workload]
    qcs = extract_workload_qcs(bound_queries)
    print(f"\nMined {len(qcs)} distinct QCS access patterns:")
    for pattern in qcs:
        print(f"  {pattern}")

    # step 2: run T2B under a storage budget of 3.5x the dataset
    budget = int(3.5 * database.size_bytes())
    baav, report = design_schema(
        database.schema, qcs, database, budget_bytes=budget
    )
    print(f"\nT2B designed {len(baav)} KV schemas "
          f"(estimated {report.estimated_bytes / 1e6:.2f} MB, "
          f"budget {budget / 1e6:.2f} MB, "
          f"within budget: {report.within_budget}):")
    for schema in baav:
        print(f"  {schema!r}")
    if report.removed:
        print(f"  removed as redundant: {report.removed}")
    if report.merged:
        print(f"  merged for budget: {report.merged}")

    # step 3: every historical query is scan-free over the design
    zidian = Zidian(database.schema, baav)
    scan_free = sum(
        1 for sql in workload if zidian.decide(sql).is_scan_free
    )
    print(f"\nScan-free over the designed schema: "
          f"{scan_free}/{len(workload)} workload queries")

    # step 4: deploy it
    system = ZidianSystem("kudu", workers=8, storage_nodes=4)
    system.load(database, baav)
    result = system.execute(workload[0])
    print(f"\nSample query over the designed store: "
          f"{result.metrics.summary()}")
    print(f"decision: {result.decision.summary()}")


if __name__ == "__main__":
    main()
