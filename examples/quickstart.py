#!/usr/bin/env python3
"""Quickstart: the paper's running example (Examples 1, 3 and 7) in code.

Build the simplified TPC-H relations of Example 1, store them under both
TaaV and BaaV, and answer Q1 (the simplified q11) with and without Zidian.

Run:  python examples/quickstart.py
"""

from repro import AttrType, Database, RelationSchema
from repro.baav import BaaVSchema, kv_schema
from repro.systems import SQLOverNoSQL, ZidianSystem

# --- Example 1: relations and their BaaV schema ---------------------------

SUPPLIER = RelationSchema.of(
    "SUPPLIER",
    {"suppkey": AttrType.INT, "nationkey": AttrType.INT},
    ["suppkey"],
)
PARTSUPP = RelationSchema.of(
    "PARTSUPP",
    {
        "partkey": AttrType.INT,
        "suppkey": AttrType.INT,
        "supplycost": AttrType.FLOAT,
        "availqty": AttrType.INT,
    },
    ["partkey", "suppkey"],
)
NATION = RelationSchema.of(
    "NATION",
    {"nationkey": AttrType.INT, "name": AttrType.STR},
    ["nationkey"],
)

database = Database.from_dict(
    [SUPPLIER, PARTSUPP, NATION],
    {
        "SUPPLIER": [(1, 10), (2, 10), (3, 20), (4, 10)],
        "PARTSUPP": [
            (100, 1, 5.0, 7),
            (100, 2, 3.0, 9),
            (200, 1, 2.0, 4),
            (300, 3, 8.0, 1),
            (300, 4, 1.5, 2),
        ],
        "NATION": [(10, "GERMANY"), (20, "FRANCE")],
    },
)

# Under BaaV, *any* attributes may serve as keys — here nationkey, suppkey
# and name, none of which are primary keys of their relations.
baav_schema = BaaVSchema(
    [
        kv_schema("nation_by_name", NATION, ["name"]),
        kv_schema("sup_by_nation", SUPPLIER, ["nationkey"]),
        kv_schema("ps_by_sup", PARTSUPP, ["suppkey"]),
    ]
)

# --- Example 3: Q1, the simplified TPC-H q11 ------------------------------

Q1 = """
select PS.suppkey, SUM(PS.supplycost) as total
from PARTSUPP as PS, SUPPLIER as S, NATION as N
where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
  and N.name = 'GERMANY'
group by PS.suppkey
order by total desc
"""


def main() -> None:
    print("Database:")
    print(database.summary())

    # the conventional SQL-over-NoSQL stack (SparkSQL-over-HBase-like)
    baseline = SQLOverNoSQL("hbase", workers=4, storage_nodes=2)
    baseline.load(database)
    base_result = baseline.execute(Q1)

    # the same stack with Zidian plugged in
    zidian = ZidianSystem("hbase", workers=4, storage_nodes=2)
    zidian.load(database, baav_schema)
    z_result = zidian.execute(Q1)

    print("\nQ1 answer:")
    print(z_result.relation.pretty())
    assert sorted(z_result.rows) == sorted(base_result.rows)

    decision = z_result.decision
    print(f"\nZidian's verdict : {decision.summary()}")

    plan, _ = zidian.middleware.plan(Q1)
    print("\nKBA plan (the chain of Example 7):")
    print(plan.root.describe())

    print("\nMetrics (SoH vs SoHZidian):")
    print(f"  baseline : {base_result.metrics.summary()}")
    print(f"  zidian   : {z_result.metrics.summary()}")
    speedup = (
        base_result.metrics.sim_time_ms / z_result.metrics.sim_time_ms
    )
    print(f"  speedup  : {speedup:.1f}x, "
          f"gets {base_result.metrics.n_get} -> {z_result.metrics.n_get}")


if __name__ == "__main__":
    main()
