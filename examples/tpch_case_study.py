#!/usr/bin/env python3
"""Case study: TPC-H q11 (the paper's Q1) across all three backends.

Regenerates a small version of Table 2: time, #data, #get and comm for
SoH / SoK / SoC with and without Zidian, plus the scan-free chasing
sequence the middleware derives (§6.2, Example 7).

Run:  python examples/tpch_case_study.py [scale_factor]
"""

import sys

from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads.tpch import QUERIES, generate_tpch, tpch_baav_schema

Q1 = QUERIES["q11"]
BACKENDS = ("hbase", "kudu", "cassandra")


def main(scale_factor: float = 0.004) -> None:
    print(f"Generating TPC-H at scale factor {scale_factor} ...")
    database = generate_tpch(scale_factor)
    print(database.summary())
    baav = tpch_baav_schema()

    print("\nQuery (simplified TPC-H q11):")
    print(Q1.strip())

    header = (
        f"\n{'system':<12}{'time (s)':>10}{'#data':>12}{'#get':>10}"
        f"{'comm (MB)':>12}"
    )
    print(header)
    print("-" * len(header))
    for backend in BACKENDS:
        base = SQLOverNoSQL(backend, workers=8, storage_nodes=4)
        base.load(database)
        m_base = base.execute(Q1).metrics

        zidian = ZidianSystem(backend, workers=8, storage_nodes=4)
        zidian.load(database, baav)
        z_result = zidian.execute(Q1)
        m_z = z_result.metrics

        short = backend[0].upper()
        for name, metrics in (
            (f"So{short}", m_base),
            (f"So{short}Zidian", m_z),
        ):
            print(
                f"{name:<12}{metrics.sim_time_s:>10.3f}"
                f"{metrics.data_values:>12}{metrics.n_get:>10}"
                f"{metrics.comm_bytes / 1e6:>12.3f}"
            )

    # show the decision machinery once
    zidian = ZidianSystem("hbase", workers=8, storage_nodes=4)
    zidian.load(database, baav)
    plan, decision = zidian.middleware.plan(Q1)
    print(f"\nM1 decision      : {decision.summary()}")
    print(f"M2 access modes  : {plan.access}")
    print("\nGenerated KBA plan:")
    print(plan.root.describe())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.004)
