#!/usr/bin/env python3
"""Fleet analytics over the MOT workload: bounded vs unbounded queries.

Demonstrates the paper's headline operational property (Exp-2): *bounded*
queries — scan-free plans over instances with bounded block degree — cost
the same no matter how large the database grows, while the conventional
stack degrades linearly.

Run:  python examples/mot_fleet_analytics.py
"""

from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads.mot import generate_mot, mot_baav_schema

# q1-style bounded lookup: one vehicle's full test history
HISTORY = """
select V.make, V.model, T.test_date, T.result, T.odometer
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id and V.vehicle_id = 17
"""

# q7-style unbounded analytics: fleet-wide CO2 by make
FLEET_CO2 = """
select V.make, avg(T.co2) as avg_co2, count(*) as n_tests
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id
group by V.make
order by avg_co2 desc
limit 5
"""


def run_at_scale(scale: float):
    database = generate_mot(scale=scale)
    baseline = SQLOverNoSQL("hbase", workers=8, storage_nodes=4)
    baseline.load(database)
    zidian = ZidianSystem("hbase", workers=8, storage_nodes=4)
    zidian.load(database, mot_baav_schema())
    return database, baseline, zidian


def main() -> None:
    print("Scaling the MOT database; re-running the same two queries.\n")
    print(
        f"{'|D| (tuples)':>14} | {'history: SoH':>13} {'SoHZidian':>10} "
        f"{'bounded?':>8} | {'fleet co2: SoH':>15} {'SoHZidian':>10}"
    )
    print("-" * 86)
    for scale in (1, 2, 4, 8):
        database, baseline, zidian = run_at_scale(scale)
        history_base = baseline.execute(HISTORY).metrics
        history_z = zidian.execute(HISTORY)
        fleet_base = baseline.execute(FLEET_CO2).metrics
        fleet_z = zidian.execute(FLEET_CO2)
        print(
            f"{database.num_tuples():>14} | "
            f"{history_base.sim_time_s:>12.3f}s "
            f"{history_z.metrics.sim_time_s:>9.3f}s "
            f"{str(history_z.decision.is_bounded):>8} | "
            f"{fleet_base.sim_time_s:>14.3f}s "
            f"{fleet_z.metrics.sim_time_s:>9.3f}s"
        )

    print(
        "\nThe bounded lookup's Zidian cost is flat (it touches two keyed"
        "\nblocks regardless of |D|); the baseline re-scans everything."
        "\nThe fleet aggregate is not scan-free, but block locality and"
        "\ncompression still help."
    )

    # show live maintenance: new test results flow into the BaaV store
    database, baseline, zidian = run_at_scale(2)
    before = zidian.execute(HISTORY)
    new_test = (
        9_000_001, 17, "2010-12-01", 4, "NORMAL", "FAIL", 88_000, 5,
        1600, 210.0, 3, 1, False, 51, 54.85, 42,
    )
    zidian.apply_updates("TEST", inserts=[new_test])
    after = zidian.execute(HISTORY)
    print(
        f"\nIncremental maintenance: vehicle 17 had {len(before.rows)} "
        f"tests, now {len(after.rows)} after inserting one result "
        "(O(|Δ|·deg) work, no rebuild)."
    )


if __name__ == "__main__":
    main()
