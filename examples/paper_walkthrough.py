#!/usr/bin/env python3
"""A guided tour through the paper's running examples (Examples 1–7).

Each section builds the exact artifact the paper describes and prints
what the corresponding theorem or algorithm concludes about it.

Run:  python examples/paper_walkthrough.py
"""

from repro import AttrType, Database, RelationSchema
from repro.baav import BaaVSchema, BaaVStore, KVSchema, kv_schema
from repro.core import (
    Zidian,
    compute_get,
    compute_vc,
    is_data_preserving,
    is_result_preserving,
    is_scan_free,
)
from repro.kba import ExecContext, Extend, JoinK, ScanKV, Shift, execute
from repro.kv import KVCluster
from repro.sql import analyze, bind, minimize, parse


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


# --- Example 1: BaaV schemas over simplified TPC-H -------------------------

banner("Example 1 — KV schemas with arbitrary key attributes")

SUPPLIER = RelationSchema.of(
    "SUPPLIER", {"suppkey": AttrType.INT, "nationkey": AttrType.INT},
    ["suppkey"])
PARTSUPP = RelationSchema.of(
    "PARTSUPP",
    {"partkey": AttrType.INT, "suppkey": AttrType.INT,
     "supplycost": AttrType.FLOAT, "availqty": AttrType.INT},
    ["partkey", "suppkey"])
NATION = RelationSchema.of(
    "NATION", {"nationkey": AttrType.INT, "name": AttrType.STR},
    ["nationkey"])

baav1 = BaaVSchema([
    kv_schema("nation_by_name", NATION, ["name"]),
    kv_schema("sup_by_nation", SUPPLIER, ["nationkey"]),
    kv_schema("ps_by_sup", PARTSUPP, ["suppkey"]),
])
for schema in baav1:
    print(f"  {schema!r}   (key is not the relation's primary key!)")

# --- Example 2: the KBA operators ∝ / ↑ / ⋈ ---------------------------------

banner("Example 2 — extension, shift and join on keyed blocks")

T1 = RelationSchema.of("T1", {"A": AttrType.INT, "B": AttrType.INT})
T2 = RelationSchema.of("T2", {"B": AttrType.INT, "C": AttrType.INT})
T3 = RelationSchema.of("T3", {"A": AttrType.INT, "C": AttrType.INT})
toy = Database.from_dict(
    [T1, T2, T3],
    {"T1": [(1, 2), (2, 1)], "T2": [(2, 1), (2, 3), (1, 3)],
     "T3": [(1, 1), (2, 3), (3, 2)]},
)
toy_baav = BaaVSchema([
    kv_schema("R1", T1, ["A"]), kv_schema("R2", T2, ["B"]),
    kv_schema("R3", T3, ["A"]),
])
toy_store = BaaVStore.map_database(toy, toy_baav, KVCluster(2))
ctx = ExecContext(toy_store)

r4 = Extend(ScanKV("R1", "r1"), "R2", "r2", (("r1.B", "B"),))
print("R1 ∝ R2 (schema <AB, C>):", sorted(execute(r4, ctx).iter_full()))
r5 = Shift(r4, ("r1.A",))
print("(R1 ∝ R2) ↑ A (schema <A, BC>):",
      sorted(execute(r5, ctx).iter_full()))
joined = JoinK(r5, ScanKV("R3", "r3"), (("r1.A", "r3.A"), ("r2.C", "r3.C")))
print("... ⋈_{A,C} R3:", sorted(execute(joined, ctx).expand()))

# --- Example 3 + 4: Q1, data preservation ----------------------------------

banner("Examples 3 & 4 — Q1 and Condition (I)")

db = Database.from_dict(
    [SUPPLIER, PARTSUPP, NATION],
    {
        "SUPPLIER": [(1, 10), (2, 10), (3, 20)],
        "PARTSUPP": [(100, 1, 5.0, 7), (100, 2, 3.0, 9),
                     (200, 1, 2.0, 4), (300, 3, 8.0, 1)],
        "NATION": [(10, "GERMANY"), (20, "FRANCE")],
    },
)
Q1 = """
select PS.suppkey, SUM(PS.supplycost) as total
from PARTSUPP as PS, SUPPLIER as S, NATION as N
where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
  and N.name = 'GERMANY'
group by PS.suppkey
"""
report = is_data_preserving(db.schema, baav1)
print(f"R̃1 data preserving for R1 (Theorem 1): {report.preserved}, "
      f"witnesses = {report.witnesses}")

# --- Example 5: result preservation under min(Q) ----------------------------

banner("Example 5 — Condition (II) needs min(Q)")

partial = BaaVSchema([
    kv_schema("nation_by_name", NATION, ["name"]),
    kv_schema("sup_by_nation", SUPPLIER, ["nationkey"]),
    KVSchema("ps_prime", PARTSUPP, ["suppkey"], ["partkey", "supplycost"]),
])
print("R̃'1 drops availqty from PARTSUPP:",
      not is_data_preserving(db.schema, partial).preserved,
      "(not data preserving)")
q2 = """
select PS.suppkey, PS.supplycost
from NATION N, SUPPLIER S, PARTSUPP PS, PARTSUPP PS2
where N.name = 'GERMANY' and N.nationkey = S.nationkey
  and S.suppkey = PS.suppkey
  and PS.availqty = PS2.availqty and PS.suppkey = PS2.suppkey
  and PS.partkey = PS2.partkey
"""
analysis = analyze(bind(parse(q2), db.schema))
minimal = minimize(analysis)
print(f"Q2 atoms {sorted(analysis.atoms)} -> min(Q2) atoms "
      f"{sorted(minimal.atoms)} (the PS2 copy folds away)")
print("R̃'1 result preserving for Q2 (Theorem 2):",
      is_result_preserving(analysis, partial).preserved)

# --- Example 6: GET / VC / Condition (III) -----------------------------------

banner("Example 6 — GET, VC and scan-freeness")

q1_analysis = analyze(bind(parse(Q1), db.schema))
get = compute_get(q1_analysis, baav1)
print("GET(Q1, R̃1) ⊇",
      sorted(a for a in get.attrs if not a.endswith("availqty"))[:8], "...")
print("chasing sequence:",
      " -> ".join(step.schema.name for step in get.steps))
vc = compute_vc(q1_analysis, baav1, get)
print("VC entries:", [(e.alias, sorted(e.attrs)) for e in vc])
sf = is_scan_free(q1_analysis, baav1)
print(f"Q1 scan-free over R̃1 (Theorem 4/5): {sf.scan_free}")

# --- Example 7: the generated plan ξ1 ---------------------------------------

banner("Example 7 — the chase generates ξ1")

store = BaaVStore.map_database(db, baav1, KVCluster(4))
zidian = Zidian(db.schema, baav1, store)
print(zidian.explain(Q1))

print("\nDone — every claim above is also a unit test "
      "(see docs/paper_mapping.md).")
