"""Relational substrate: types, schemas, relations and databases."""

from repro.relational.compare import bag_diff, bag_equal, rows_bag_equal
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.types import AttrType, Row, Value, row_size, value_size

__all__ = [
    "AttrType",
    "bag_diff",
    "bag_equal",
    "rows_bag_equal",
    "Attribute",
    "Database",
    "DatabaseSchema",
    "Relation",
    "RelationSchema",
    "Row",
    "Value",
    "row_size",
    "value_size",
]
