"""Relation instances: bags of tuples under a relation schema."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema
from repro.relational.types import Row, row_size


class Relation:
    """A bag of tuples over a :class:`RelationSchema`.

    SQL has bag semantics, so duplicates are preserved. ``rows`` is a plain
    list of tuples aligned with the schema's attribute order.
    """

    __slots__ = ("schema", "rows")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Iterable[Row] = (),
        validate: bool = False,
    ) -> None:
        self.schema = schema
        self.rows: List[Row] = [tuple(r) for r in rows]
        if validate:
            self.validate()

    def validate(self) -> None:
        """Check arity and attribute types of every row."""
        arity = self.schema.arity
        types = [a.type for a in self.schema.attributes]
        for row in self.rows:
            if len(row) != arity:
                raise SchemaError(
                    f"row arity {len(row)} != schema arity {arity} "
                    f"for {self.schema.name}"
                )
            for attr_type, value in zip(types, row):
                attr_type.validate(value)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def append(self, row: Row) -> None:
        self.rows.append(tuple(row))

    def extend(self, rows: Iterable[Row]) -> None:
        self.rows.extend(tuple(r) for r in rows)

    def project(self, attrs: Sequence[str]) -> List[Row]:
        """Bag projection onto ``attrs`` (duplicates preserved)."""
        positions = self.schema.project_positions(attrs)
        return [tuple(row[p] for p in positions) for row in self.rows]

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Return a new relation with rows satisfying ``predicate``."""
        return Relation(self.schema, [r for r in self.rows if predicate(r)])

    def column(self, attr: str) -> List[object]:
        position = self.schema.index_of(attr)
        return [row[position] for row in self.rows]

    def distinct_values(self, attr: str) -> set:
        return set(self.column(attr))

    def size_bytes(self) -> int:
        """Modeled size in bytes of the whole relation."""
        return sum(row_size(r) for r in self.rows)

    def num_values(self) -> int:
        """Number of attribute values, the paper's ``||D||`` contribution."""
        return len(self.rows) * self.schema.arity

    def as_multiset(self) -> Counter:
        """The bag of rows as a Counter, for order-insensitive comparison."""
        return Counter(self.rows)

    def sorted_rows(self) -> List[Row]:
        """Rows sorted with a NULL-safe, mixed-type-safe key."""
        return sorted(self.rows, key=_sort_key)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema attribute names and same multiset."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.attribute_names == other.schema.attribute_names
            and self.as_multiset() == other.as_multiset()
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.schema.name}, {len(self.rows)} rows)"

    def head(self, n: int = 5) -> List[Row]:
        return self.rows[:n]

    def pretty(self, limit: int = 20) -> str:
        """Render the relation as a small fixed-width text table."""
        names = self.schema.attribute_names
        shown = self.rows[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [
            max([len(n)] + [len(row[i]) for row in cells]) if cells else len(n)
            for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells
        ]
        lines = [header, rule] + body
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def _sort_key(row: Row) -> Tuple:
    return tuple((v is None, str(type(v).__name__), v if v is not None else 0)
                 for v in row)
