"""Relational schemas: attributes, relation schemas and database schemas.

This is the paper's schema ``R`` (Table 1): a database schema is a set of
relation schemas ``R(Z)`` with primary keys. BaaV KV schemas (``repro.baav``)
are declared over these relation schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.relational.types import AttrType


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation schema."""

    name: str
    type: AttrType = AttrType.STR

    def __post_init__(self) -> None:
        # Derived result columns may carry names like "SUM(PS.supplycost)",
        # so only emptiness is rejected here.
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


class RelationSchema:
    """A relation schema ``R(A1, ..., An)`` with an optional primary key.

    Attribute order is significant: tuples of the relation are plain Python
    tuples aligned with the attribute order.
    """

    __slots__ = ("name", "attributes", "primary_key", "_index")

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        primary_key: Sequence[str] = (),
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError(f"relation {name!r} must have attributes")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {name!r}: {names}")
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(self.attributes)}
        for key_attr in primary_key:
            if key_attr not in self._index:
                raise UnknownAttributeError(key_attr, where=name)
        self.primary_key: Tuple[str, ...] = tuple(primary_key)

    @classmethod
    def of(
        cls,
        name: str,
        attrs: Mapping[str, AttrType],
        primary_key: Sequence[str] = (),
    ) -> "RelationSchema":
        """Build a schema from an ordered ``{attr: type}`` mapping."""
        return cls(name, [Attribute(a, t) for a, t in attrs.items()], primary_key)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __contains__(self, attr: str) -> bool:
        return attr in self._index

    def index_of(self, attr: str) -> int:
        """Return the tuple position of ``attr``."""
        try:
            return self._index[attr]
        except KeyError:
            raise UnknownAttributeError(attr, where=self.name) from None

    def indexes_of(self, attrs: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.index_of(a) for a in attrs)

    def type_of(self, attr: str) -> AttrType:
        return self.attributes[self.index_of(attr)].type

    def project_positions(self, attrs: Sequence[str]) -> Tuple[int, ...]:
        """Positions for projecting rows onto ``attrs`` (order preserved)."""
        return self.indexes_of(attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.primary_key == other.primary_key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.primary_key))

    def __repr__(self) -> str:
        attrs = ", ".join(a.name for a in self.attributes)
        pk = f", pk={list(self.primary_key)}" if self.primary_key else ""
        return f"RelationSchema({self.name}({attrs}){pk})"


class DatabaseSchema:
    """A set of relation schemas, the paper's ``R``."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        if schema.name in self._relations:
            raise SchemaError(f"duplicate relation: {schema.name!r}")
        self._relations[schema.name] = schema

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def total_attributes(self) -> int:
        """Number of attributes across all relations (the paper's |R|)."""
        return sum(schema.arity for schema in self)

    def __repr__(self) -> str:
        return f"DatabaseSchema({', '.join(self._relations)})"
