"""Database instances: named relations under a database schema."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence

from repro.errors import UnknownRelationError
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import Row


class Database:
    """A database instance ``D`` of a :class:`DatabaseSchema`."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._relations: Dict[str, Relation] = {
            rs.name: Relation(rs) for rs in schema
        }

    @classmethod
    def from_relations(cls, relations: Iterable[Relation]) -> "Database":
        """Build a database (and its schema) from relation instances."""
        relations = list(relations)
        db = cls(DatabaseSchema([r.schema for r in relations]))
        for relation in relations:
            db._relations[relation.schema.name] = relation
        return db

    @classmethod
    def from_dict(
        cls,
        schemas: Iterable[RelationSchema],
        data: Mapping[str, Sequence[Row]],
    ) -> "Database":
        """Build a database from schemas and a ``{name: rows}`` mapping."""
        db = cls(DatabaseSchema(schemas))
        for name, rows in data.items():
            db.load(name, rows)
        return db

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def load(self, name: str, rows: Iterable[Row], validate: bool = False) -> None:
        """Replace the contents of relation ``name`` with ``rows``."""
        schema = self.schema.relation(name)
        self._relations[name] = Relation(schema, rows, validate=validate)

    def insert(self, name: str, row: Row) -> None:
        self.relation(name).append(row)

    def num_tuples(self) -> int:
        """The paper's ``|D|``: total number of tuples."""
        return sum(len(r) for r in self)

    def num_values(self) -> int:
        """The paper's ``||D||``: total number of attribute values."""
        return sum(r.num_values() for r in self)

    def size_bytes(self) -> int:
        return sum(r.size_bytes() for r in self)

    def summary(self) -> str:
        lines = [f"Database: {len(self._relations)} relations, "
                 f"{self.num_tuples()} tuples, {self.size_bytes()} bytes"]
        for relation in self:
            lines.append(f"  {relation.schema.name}: {len(relation)} rows")
        return "\n".join(lines)

    def copy(self) -> "Database":
        """Deep-enough copy: new relation row lists, shared schemas."""
        other = Database(self.schema)
        for name, relation in self._relations.items():
            other._relations[name] = Relation(relation.schema, relation.rows)
        return other
