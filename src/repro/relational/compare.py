"""Bag comparison of query results with float tolerance.

Different execution strategies sum floats in different orders (storage
scan order vs block order), so exact equality of aggregates fails by an
epsilon. Results are normalized to 10 significant digits before the bag
comparison — tight enough to catch real bugs, loose enough to absorb
re-association error.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.relational.relation import Relation
from repro.relational.types import Row


def normalize_value(value: object) -> object:
    if isinstance(value, float):
        return float(f"{value:.10g}")
    return value


def normalize_row(row: Row) -> Row:
    return tuple(normalize_value(v) for v in row)


def normalized_bag(rows: Iterable[Row]) -> Counter:
    return Counter(normalize_row(r) for r in rows)


def rows_bag_equal(a: Iterable[Row], b: Iterable[Row]) -> bool:
    return normalized_bag(a) == normalized_bag(b)


def bag_equal(a: Relation, b: Relation, check_names: bool = True) -> bool:
    """Bag equality of two relations up to float re-association error."""
    if check_names and a.schema.attribute_names != b.schema.attribute_names:
        return False
    return rows_bag_equal(a.rows, b.rows)


def bag_diff(a: Relation, b: Relation, limit: int = 5) -> str:
    """Human-readable diff of two result bags (for test failures)."""
    bag_a = normalized_bag(a.rows)
    bag_b = normalized_bag(b.rows)
    only_a = list((bag_a - bag_b).elements())[:limit]
    only_b = list((bag_b - bag_a).elements())[:limit]
    return (
        f"rows only in left ({len(bag_a - bag_b)}): {only_a}\n"
        f"rows only in right ({len(bag_b - bag_a)}): {only_b}"
    )
