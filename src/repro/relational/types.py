"""Attribute types and a size model for relational values.

The library needs a size model because the paper's evaluation reports the
*amount of data accessed* (``#data``) and the *bytes shipped* (``comm``).
We count values during execution and convert them to bytes with
:func:`value_size`, which approximates an on-the-wire encoding: fixed eight
bytes for numerics, length plus a small header for strings.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Tuple

from repro.errors import TypeMismatchError

Value = Any
Row = Tuple[Value, ...]


class AttrType(enum.Enum):
    """Supported attribute types.

    Dates are represented as ISO ``YYYY-MM-DD`` strings so lexicographic
    comparison coincides with chronological order; this mirrors how the
    simplified TPC-H queries compare date literals.
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def validate(self, value: Value) -> None:
        """Raise :class:`TypeMismatchError` if ``value`` has the wrong type.

        ``None`` is accepted for every type (SQL NULL).
        """
        if value is None:
            return
        expected = _PYTHON_TYPES[self]
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TypeMismatchError(
                    f"expected numeric for {self.name}, got {value!r}"
                )
            return
        if expected is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeMismatchError(
                    f"expected int for {self.name}, got {value!r}"
                )
            return
        if not isinstance(value, expected):
            raise TypeMismatchError(
                f"expected {expected.__name__} for {self.name}, got {value!r}"
            )


_PYTHON_TYPES = {
    AttrType.INT: int,
    AttrType.FLOAT: float,
    AttrType.STR: str,
    AttrType.DATE: str,
    AttrType.BOOL: bool,
}

_STRING_HEADER_BYTES = 4
_NUMERIC_BYTES = 8
_BOOL_BYTES = 1
_NULL_BYTES = 1


def value_size(value: Value) -> int:
    """Return the modeled size in bytes of a single relational value."""
    if value is None:
        return _NULL_BYTES
    if isinstance(value, bool):
        return _BOOL_BYTES
    if isinstance(value, (int, float)):
        return _NUMERIC_BYTES
    if isinstance(value, str):
        return _STRING_HEADER_BYTES + len(value)
    if isinstance(value, bytes):
        return _STRING_HEADER_BYTES + len(value)
    raise TypeMismatchError(f"unsupported value type: {type(value).__name__}")


def row_size(row: Row) -> int:
    """Return the modeled size in bytes of a tuple of values."""
    return sum(value_size(v) for v in row)


def infer_type(value: Value) -> Optional[AttrType]:
    """Infer the :class:`AttrType` of a Python value, or ``None`` for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        return AttrType.BOOL
    if isinstance(value, int):
        return AttrType.INT
    if isinstance(value, float):
        return AttrType.FLOAT
    if isinstance(value, str):
        return AttrType.STR
    raise TypeMismatchError(f"cannot infer type of {value!r}")
