"""Closed-loop multi-client traffic driver for the query service.

The paper's claim — scan-free plans bound per-query KV work — matters at
scale only if many clients can issue those bounded queries at once. This
module drives a :class:`~repro.service.QueryService` with a closed loop
of N clients (each waits for its answer, thinks, then issues the next
query), a Zipf-skewed mix over point / index / range / scan query
classes, and an optional writer stream, and reports throughput plus
p50/p95/p99 latency.

Two execution modes, one report shape:

* :meth:`TrafficDriver.run` — **virtual-time** mode. A discrete-event
  loop replays the closed loop on a simulated clock: every query is
  *really executed* (exact answers, exact counters) at its dispatch
  instant, its service time is the calibrated simulated cost
  (``metrics.sim_time_ms``), and worker occupancy / the bounded
  admission queue follow the service's own ``max_workers`` /
  ``max_queued`` knobs. Deterministic, seedable, and the basis of the
  scaling benchmark — wall-parallelism in CPython would measure the
  GIL, not the architecture, exactly like the repo's other simulated
  timings (see DESIGN substitutions in the README).
* :meth:`TrafficDriver.run_threads` — **real-thread** mode. N OS
  threads hammer the service's actual pool, admission control and
  locks; latencies are wall-clock. This is the correctness screw-press
  the stress tests and the mixed read/write benchmark phase use.

Both report a :class:`TrafficReport` (overall + per-class percentiles,
shed counts, writer accounting).
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceOverloadedError
from repro.locks import make_lock
from repro.relational.database import Database

#: (relation, inserted rows, deleted rows) produced by an update sampler
Update = Tuple[str, List[tuple], List[tuple]]


# --------------------------------------------------------------------------
# sampling helpers
# --------------------------------------------------------------------------


def zipf_sampler(
    n: int, alpha: float = 1.2
) -> Callable[[random.Random], int]:
    """A sampler of ranks ``0..n-1`` with Zipf(alpha) popularity."""
    if n <= 0:
        raise ValueError("need a positive universe")
    weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
    ranks = list(range(n))

    def sample(rng: random.Random) -> int:
        return rng.choices(ranks, weights=weights, k=1)[0]

    return sample


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    )
    return sorted_values[rank]


# --------------------------------------------------------------------------
# workload description
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class QueryClass:
    """One class of the query mix: a weight and a SQL sampler."""

    name: str
    weight: float
    make_sql: Callable[[random.Random], str]


@dataclass(frozen=True)
class UpdateStream:
    """The writer client: samples a Δ, thinks ``think_ms`` between Δs."""

    make_update: Callable[[random.Random, int], Update]
    think_ms: float = 1.0


@dataclass
class QuerySample:
    """One completed (or shed) closed-loop interaction."""

    klass: str
    issued_ms: float
    wait_ms: float = 0.0
    service_ms: float = 0.0
    shed: bool = False

    @property
    def latency_ms(self) -> float:
        return self.wait_ms + self.service_ms


@dataclass
class ClassReport:
    """Latency digest of one query class."""

    completed: int = 0
    shed: int = 0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_service_ms: float = 0.0


@dataclass
class TrafficReport:
    """What the closed loop measured."""

    mode: str
    clients: int
    workers: int
    completed: int = 0
    shed: int = 0
    duration_ms: float = 0.0
    wall_s: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    per_class: Dict[str, ClassReport] = field(default_factory=dict)
    updates_applied: int = 0
    update_p99_ms: float = 0.0

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of (simulated or wall) time."""
        if self.duration_ms <= 0:
            return 0.0
        return self.completed / (self.duration_ms / 1000.0)

    def summary(self) -> str:
        return (
            f"[{self.mode}] {self.clients} clients / {self.workers} workers: "
            f"{self.completed} queries in {self.duration_ms / 1000.0:.2f}s "
            f"-> {self.throughput_qps:.1f} q/s, "
            f"p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms, shed={self.shed}, "
            f"updates={self.updates_applied}"
        )


def _digest(
    samples: List[QuerySample], updates: List[float]
) -> Tuple[float, float, float, Dict[str, ClassReport], float]:
    done = sorted(s.latency_ms for s in samples if not s.shed)
    per_class: Dict[str, ClassReport] = {}
    for name in sorted({s.klass for s in samples}):
        latencies = sorted(
            s.latency_ms for s in samples
            if s.klass == name and not s.shed
        )
        services = [
            s.service_ms for s in samples
            if s.klass == name and not s.shed
        ]
        per_class[name] = ClassReport(
            completed=len(latencies),
            shed=sum(1 for s in samples if s.klass == name and s.shed),
            p50_ms=percentile(latencies, 0.50),
            p95_ms=percentile(latencies, 0.95),
            p99_ms=percentile(latencies, 0.99),
            mean_service_ms=(
                sum(services) / len(services) if services else 0.0
            ),
        )
    update_p99 = percentile(sorted(updates), 0.99)
    return (
        percentile(done, 0.50),
        percentile(done, 0.95),
        percentile(done, 0.99),
        per_class,
        update_p99,
    )


# --------------------------------------------------------------------------
# the driver
# --------------------------------------------------------------------------


class TrafficDriver:
    """Closed-loop driver over a :class:`~repro.service.QueryService`."""

    def __init__(
        self,
        service,
        mix: Sequence[QueryClass],
        clients: int = 8,
        think_ms: float = 0.5,
        update_stream: Optional[UpdateStream] = None,
        seed: int = 1234,
    ) -> None:
        if not mix:
            raise ValueError("need at least one query class")
        if clients <= 0:
            raise ValueError("need at least one client")
        self.service = service
        self.mix = list(mix)
        self.clients = clients
        self.think_ms = think_ms
        self.update_stream = update_stream
        self.seed = seed

    def _pick_class(self, rng: random.Random) -> QueryClass:
        return rng.choices(
            self.mix, weights=[c.weight for c in self.mix], k=1
        )[0]

    def _update_service_ms(self, apply: Callable[[], None]) -> float:
        """Apply a Δ and price it with the calibrated write cost."""
        system = self.service.system
        cluster = getattr(system, "cluster", None)
        profile = getattr(system, "profile", None)
        if cluster is None or profile is None:
            apply()
            return 0.1
        before = cluster.thread_counters()
        apply()
        delta = cluster.thread_counters()
        puts = delta.puts - before.puts
        values = delta.values_written - before.values_written
        nodes = max(1, cluster.num_live_nodes)
        return profile.put_cost_ms(puts, values) / nodes

    # -- virtual-time closed loop -----------------------------------------

    def run(self, queries_per_client: int = 25,
            updates: int = 0) -> TrafficReport:
        """Discrete-event closed loop on the simulated clock.

        Every dispatched query really executes (on the calling thread,
        via the service's synchronous path) and contributes its
        simulated service time; ``max_workers`` virtual workers and the
        ``max_queued`` admission bound shape waiting and shedding
        exactly like the live service would. The writer stream follows
        the service's concurrency-control mode:

        * **MVCC on** (``service.mvcc``, the PR 9 default): writes
          commit concurrently with snapshot reads — the Δ applies at
          its event instant, occupies no query worker, and never gates
          dispatch, so reader p99 stays flat under a sustained writer.
        * **MVCC off**: the legacy writer-preferring exclusive lock is
          modeled faithfully — a pending write first waits for the
          in-flight queries to drain (new dispatches queue behind it),
          then blocks every query for its service time, so the
          reported p99 includes the read/write stall the lock causes.
        """
        rng = random.Random(self.seed)
        workers = self.service.max_workers
        max_queued = self.service.max_queued
        mvcc = bool(getattr(self.service, "mvcc", False))
        start_wall = time.perf_counter()
        sessions = [
            self.service.open_session(client=f"client-{i}")
            for i in range(self.clients)
        ]
        writer_session = (
            self.service.open_session(client="writer")
            if self.update_stream and updates > 0
            else None
        )

        samples: List[QuerySample] = []
        update_latencies: List[float] = []
        busy = 0
        queue: deque = deque()  # (enqueue_ms, client, klass, sql)
        remaining = [queries_per_client] * self.clients
        updates_left = updates if writer_session is not None else 0
        #: simulated instant a pending write was requested (None = no
        #: writer waiting for the exclusive lock)
        write_requested: Optional[float] = None
        #: queries are blocked until this instant while a write holds
        #: the exclusive lock
        write_until = 0.0
        events: List[Tuple[float, int, str, int]] = []
        seq = 0

        def push(at_ms: float, kind: str, client: int) -> None:
            nonlocal seq
            heapq.heappush(events, (at_ms, seq, kind, client))
            seq += 1

        for client in range(self.clients):
            # staggered arrivals so the loop does not start in lockstep
            push(rng.uniform(0.0, self.think_ms), "issue", client)
        if updates_left:
            push(self.update_stream.think_ms, "write", -1)
        now = 0.0

        def can_dispatch(at_ms: float) -> bool:
            if mvcc:
                # snapshot reads never wait on the writer: a free
                # worker is the only admission condition
                return busy < workers
            return (
                busy < workers
                and write_requested is None
                and at_ms >= write_until
            )

        def dispatch(at_ms: float, client: int, klass: QueryClass,
                     sql: str, enqueued_ms: float) -> None:
            nonlocal busy
            result = sessions[client].execute(sql)
            service_ms = max(1e-6, result.metrics.sim_time_ms)
            samples.append(
                QuerySample(
                    klass=klass.name,
                    issued_ms=enqueued_ms,
                    wait_ms=at_ms - enqueued_ms,
                    service_ms=service_ms,
                )
            )
            busy += 1
            push(at_ms + service_ms, "complete", client)

        def drain_queue(at_ms: float) -> None:
            while queue and can_dispatch(at_ms):
                enq_ms, q_client, q_klass, q_sql = queue.popleft()
                dispatch(at_ms, q_client, q_klass, q_sql, enq_ms)

        def apply_write_now(at_ms: float) -> None:
            """MVCC mode: the Δ commits concurrently with the readers.

            No drain, no gate — the write's latency is just its own
            service time, and the next Δ is scheduled after it.
            """
            nonlocal updates_left
            updates_left -= 1
            index = updates - updates_left - 1
            relation, inserts, deletes = self.update_stream.make_update(
                rng, index
            )
            write_ms = self._update_service_ms(
                lambda: writer_session.apply_updates(
                    relation, inserts, deletes
                )
            )
            update_latencies.append(write_ms)
            if updates_left > 0:
                push(
                    at_ms + write_ms + self.update_stream.think_ms,
                    "write", -1,
                )

        def start_write(at_ms: float) -> None:
            """The exclusive lock is granted: apply the Δ for real."""
            nonlocal write_requested, write_until, updates_left
            requested = write_requested
            write_requested = None
            updates_left -= 1
            index = updates - updates_left - 1
            relation, inserts, deletes = self.update_stream.make_update(
                rng, index
            )
            write_ms = self._update_service_ms(
                lambda: writer_session.apply_updates(
                    relation, inserts, deletes
                )
            )
            write_until = at_ms + write_ms
            update_latencies.append((at_ms - requested) + write_ms)
            push(write_until, "write-done", -1)

        while events:
            now, _, kind, client = heapq.heappop(events)
            if kind == "issue":
                if remaining[client] <= 0:
                    continue
                remaining[client] -= 1
                klass = self._pick_class(rng)
                sql = klass.make_sql(rng)
                if can_dispatch(now):
                    dispatch(now, client, klass, sql, now)
                elif len(queue) < max_queued:
                    # waits for a worker — or behind the writer, which
                    # has preference over new readers
                    queue.append((now, client, klass, sql))
                else:
                    # shed: the client backs off a think time and the
                    # interaction counts as refused, like the live
                    # service raising ServiceOverloadedError
                    samples.append(
                        QuerySample(
                            klass=klass.name, issued_ms=now, shed=True
                        )
                    )
                    remaining[client] += 1
                    push(now + max(self.think_ms, 0.05), "issue", client)
            elif kind == "complete":
                busy -= 1
                if write_requested is not None and busy == 0:
                    start_write(now)
                else:
                    drain_queue(now)
                if remaining[client] > 0:
                    push(now + self.think_ms, "issue", client)
            elif kind == "write":
                if updates_left <= 0:
                    continue
                if mvcc:
                    apply_write_now(now)
                    continue
                write_requested = now
                if busy == 0 and now >= write_until:
                    start_write(now)
            elif kind == "write-done":
                drain_queue(now)
                if updates_left > 0:
                    push(
                        now + self.update_stream.think_ms, "write", -1
                    )

        for session in sessions:
            session.close()
        if writer_session is not None:
            writer_session.close()

        p50, p95, p99, per_class, upd_p99 = _digest(
            samples, update_latencies
        )
        return TrafficReport(
            mode="virtual",
            clients=self.clients,
            workers=workers,
            completed=sum(1 for s in samples if not s.shed),
            shed=sum(1 for s in samples if s.shed),
            duration_ms=now,
            wall_s=time.perf_counter() - start_wall,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            per_class=per_class,
            updates_applied=len(update_latencies),
            update_p99_ms=upd_p99,
        )

    # -- real-thread closed loop ------------------------------------------

    def run_threads(self, queries_per_client: int = 20,
                    updates: int = 0) -> TrafficReport:
        """Drive the live pool with real client threads (wall latency).

        Shed interactions (the service's admission control pushing
        back) are counted and the client retries the same query after a
        think-time backoff, so every client eventually completes its
        budget — which is what lets the integrity checks after a run
        assert exact counts.
        """
        samples: List[QuerySample] = []
        update_latencies: List[float] = []
        samples_lock = make_lock("traffic.samples_lock")
        start_wall = time.perf_counter()

        def client_loop(client: int) -> None:
            rng = random.Random(self.seed + 7919 * (client + 1))
            session = self.service.open_session(client=f"client-{client}")
            try:
                for _ in range(queries_per_client):
                    klass = self._pick_class(rng)
                    sql = klass.make_sql(rng)
                    while True:
                        issued = (
                            time.perf_counter() - start_wall
                        ) * 1000.0
                        try:
                            t0 = time.perf_counter()
                            session.submit(sql).result()
                            elapsed = (time.perf_counter() - t0) * 1000.0
                        except ServiceOverloadedError:
                            with samples_lock:
                                samples.append(
                                    QuerySample(
                                        klass=klass.name,
                                        issued_ms=issued,
                                        shed=True,
                                    )
                                )
                            time.sleep(self.think_ms / 1000.0)
                            continue
                        with samples_lock:
                            samples.append(
                                QuerySample(
                                    klass=klass.name,
                                    issued_ms=issued,
                                    service_ms=elapsed,
                                )
                            )
                        break
                    if self.think_ms:
                        time.sleep(self.think_ms / 1000.0)
            finally:
                session.close()

        def writer_loop() -> None:
            rng = random.Random(self.seed - 1)
            session = self.service.open_session(client="writer")
            try:
                for index in range(updates):
                    relation, inserts, deletes = (
                        self.update_stream.make_update(rng, index)
                    )
                    t0 = time.perf_counter()
                    session.apply_updates(relation, inserts, deletes)
                    with samples_lock:
                        update_latencies.append(
                            (time.perf_counter() - t0) * 1000.0
                        )
                    if self.update_stream.think_ms:
                        time.sleep(self.update_stream.think_ms / 1000.0)
            finally:
                session.close()

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(self.clients)
        ]
        if self.update_stream is not None and updates > 0:
            threads.append(
                threading.Thread(target=writer_loop, daemon=True)
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        wall_s = time.perf_counter() - start_wall
        p50, p95, p99, per_class, upd_p99 = _digest(
            samples, update_latencies
        )
        return TrafficReport(
            mode="threads",
            clients=self.clients,
            workers=self.service.max_workers,
            completed=sum(1 for s in samples if not s.shed),
            shed=sum(1 for s in samples if s.shed),
            duration_ms=wall_s * 1000.0,
            wall_s=wall_s,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
            per_class=per_class,
            updates_applied=len(update_latencies),
            update_p99_ms=upd_p99,
        )


# --------------------------------------------------------------------------
# canned AIRCA mix (point / index / range / scan + a DELAY writer)
# --------------------------------------------------------------------------


def airca_traffic_mix(
    db: Database,
    point: float = 0.70,
    index: float = 0.12,
    rng_alpha: float = 1.2,
    range_: float = 0.12,
    scan: float = 0.06,
) -> List[QueryClass]:
    """The benchmark mix over AIRCA: Zipf-skewed keyed point reads,
    non-key index probes, narrow ranges, and the occasional aggregate
    scan. Weights are the class mix shares."""
    flights = db.relation("FLIGHT").rows
    n_flights = len(flights)
    tails = sorted({row[4] for row in flights})
    flight_rank = zipf_sampler(n_flights, rng_alpha)
    tail_rank = zipf_sampler(len(tails), rng_alpha)

    def point_sql(rng: random.Random) -> str:
        fid = flight_rank(rng) + 1
        return (
            "select F.arr_delay, F.dep_delay, F.distance "
            f"from FLIGHT F where F.flight_id = {fid}"
        )

    def index_sql(rng: random.Random) -> str:
        tail = tails[tail_rank(rng)]
        return (
            "select F.flight_id, F.arr_delay "
            f"from FLIGHT F where F.tail_id = {tail}"
        )

    def range_sql(rng: random.Random) -> str:
        lo = round(rng.uniform(40.0, 70.0), 1)
        hi = round(lo + rng.uniform(3.0, 8.0), 1)
        return (
            "select F.flight_id, F.arr_delay from FLIGHT F "
            f"where F.arr_delay >= {lo} and F.arr_delay < {hi}"
        )

    def scan_sql(rng: random.Random) -> str:
        distance = rng.randrange(1000, 3000)
        return (
            "select count(*) as n, avg(F.arr_delay) as avg_delay "
            f"from FLIGHT F where F.distance > {distance}"
        )

    mix = [
        QueryClass("point", point, point_sql),
        QueryClass("index", index, index_sql),
        QueryClass("range", range_, range_sql),
        QueryClass("scan", scan, scan_sql),
    ]
    return [c for c in mix if c.weight > 0]


def airca_delay_writer(
    db: Database, think_ms: float = 0.5, rng_alpha: float = 1.2
) -> Tuple[UpdateStream, List[int]]:
    """A DELAY-inserting writer stream for AIRCA.

    Returns the stream plus the (growing) list of delay ids it has
    inserted, so a benchmark can assert afterwards that every write
    survived exactly once (no lost or duplicated writes).
    """
    delay_schema = db.relation("DELAY").schema
    n_metrics = len(delay_schema.attributes) - 5
    flights = db.relation("DELAY").rows
    base_id = max((row[0] for row in flights), default=0) + 1
    n_flights = len(db.relation("FLIGHT").rows)
    flight_rank = zipf_sampler(n_flights, rng_alpha)
    inserted: List[int] = []

    def make_update(rng: random.Random, index: int) -> Update:
        delay_id = base_id + index
        flight_id = flight_rank(rng) + 1
        row = (
            delay_id,
            flight_id,
            rng.choice(("CARRIER", "WEATHER", "NAS")),
            round(rng.uniform(5.0, 120.0), 1),
            rng.randrange(1, 5),
        ) + tuple(
            round(rng.uniform(0.0, 100.0), 2) for _ in range(n_metrics)
        )
        inserted.append(delay_id)
        return "DELAY", [row], []

    return UpdateStream(make_update, think_ms=think_ms), inserted


# --------------------------------------------------------------------------
# KV-level wall-clock traffic (the multiprocess scaling benchmark)
# --------------------------------------------------------------------------


@dataclass
class KVTrafficReport:
    """Wall-clock results of a closed-loop KV workload.

    Latencies are per *round* (one closed-loop iteration of one
    client), in milliseconds; ``read_ops`` counts the logical read
    operations the rounds reported, so ``read_qps`` is comparable
    across cluster sizes running the identical workload.
    """

    clients: int = 0
    duration_s: float = 0.0
    rounds: int = 0
    read_ops: int = 0
    rounds_per_s: float = 0.0
    read_qps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.clients} clients x {self.duration_s:.1f}s: "
            f"{self.read_qps:.0f} read ops/s "
            f"(p50 {self.p50_ms:.2f}ms, p95 {self.p95_ms:.2f}ms)"
        )


def run_kv_traffic(
    cluster,
    round_fn: Callable[[object, random.Random], int],
    clients: int = 4,
    duration_s: float = 2.0,
    seed: int = 0,
    warmup_rounds: int = 1,
) -> KVTrafficReport:
    """Drive a cluster with N closed-loop client threads, wall-clock.

    Each client thread repeatedly calls ``round_fn(cluster, rng)`` — one
    closed-loop iteration issuing real cluster operations and returning
    how many logical *read* ops it performed — until the deadline.
    Unlike :meth:`TrafficDriver.run`, nothing here is simulated: this
    is the measurement harness of the multiprocess benchmark, where the
    socket transport's node processes do their storage work outside the
    client interpreter, so wall-clock throughput reflects the
    shared-nothing architecture, not a virtual clock.
    """
    if clients <= 0:
        raise ValueError("need a positive client count")
    for i in range(warmup_rounds):
        round_fn(cluster, random.Random((seed << 8) ^ 0xACE ^ i))
    latencies: List[List[float]] = [[] for _ in range(clients)]
    reads: List[int] = [0] * clients
    start_gate = threading.Barrier(clients + 1)
    deadline_holder = [0.0]

    def client(index: int) -> None:
        rng = random.Random((seed << 16) | index)
        mine = latencies[index]
        start_gate.wait()
        deadline = deadline_holder[0]
        while True:
            t0 = time.perf_counter()
            if t0 >= deadline:
                return
            reads[index] += round_fn(cluster, rng)
            mine.append((time.perf_counter() - t0) * 1e3)

    threads = [
        threading.Thread(target=client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    # publish the deadline BEFORE releasing the barrier — clients read
    # it immediately after their own barrier wait returns
    t_start = time.perf_counter()
    deadline_holder[0] = t_start + duration_s
    start_gate.wait()  # all clients ready: start the clock together
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - t_start, 1e-9)

    all_lat = sorted(value for per in latencies for value in per)
    total_rounds = len(all_lat)
    total_reads = sum(reads)
    return KVTrafficReport(
        clients=clients,
        duration_s=elapsed,
        rounds=total_rounds,
        read_ops=total_reads,
        rounds_per_s=total_rounds / elapsed,
        read_qps=total_reads / elapsed,
        p50_ms=percentile(all_lat, 0.50),
        p95_ms=percentile(all_lat, 0.95),
        p99_ms=percentile(all_lat, 0.99),
    )
