"""Query generator: instantiate workload templates with sampled parameters.

Mirrors §9 "Queries": 12 templates per real-life dataset, populated by
randomly instantiating parameters with values from the datasets, yielding
a configurable number of concrete queries per dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.relational.database import Database


@dataclass(frozen=True)
class GeneratedQuery:
    """One instantiated query."""

    template: str
    sql: str
    expected_scan_free: bool


class QueryGenerator:
    """Instantiates a template dictionary against a database."""

    def __init__(
        self,
        templates: Dict[str, str],
        scan_free_templates: Sequence[str],
        param_sampler: Callable[[Database, random.Random], Dict[str, object]],
        seed: int = 42,
    ) -> None:
        self.templates = templates
        self.scan_free = frozenset(scan_free_templates)
        self.param_sampler = param_sampler
        self.seed = seed

    def generate(
        self,
        database: Database,
        per_template: int = 3,
        templates: Optional[Sequence[str]] = None,
    ) -> List[GeneratedQuery]:
        """``per_template`` instantiations of each template (36 for 12×3)."""
        rng = random.Random(self.seed)
        names = list(templates) if templates else sorted(
            self.templates, key=lambda q: int(q[1:])
        )
        out: List[GeneratedQuery] = []
        for name in names:
            template = self.templates[name]
            for _ in range(per_template):
                params = self.param_sampler(database, rng)
                out.append(
                    GeneratedQuery(
                        template=name,
                        sql=template.format(**params).strip(),
                        expected_scan_free=name in self.scan_free,
                    )
                )
        return out


# --------------------------------------------------------------------------
# selective-predicate workload (secondary-index benchmarks)
# --------------------------------------------------------------------------


def _sql_literal(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return str(value)


def selective_workload(
    database: Database,
    relation: str,
    eq_attr: str,
    range_attr: str,
    n_queries: int = 12,
    seed: int = 42,
    zipf_alpha: float = 1.2,
    range_width: float = 0.02,
    select_attrs: Optional[Sequence[str]] = None,
) -> List[GeneratedQuery]:
    """Selective non-key filters: Zipf-skewed equality + narrow ranges.

    The paper's fixed templates bind relation *keys*; this workload is
    the opposite — every query selects on a **non-key** attribute, the
    class that degenerates to a full scan without a secondary index:

    * equality queries pick ``eq_attr`` values Zipf-skewed by rank over
      the attribute's distinct domain (hot values dominate, like real
      carrier/route skew);
    * range queries slide a window of ``range_width`` of the sorted
      distinct ``range_attr`` domain (narrow ``BETWEEN`` filters).

    Alternates equality and range queries, ``n_queries`` total.
    Template names are ``sel_eq``/``sel_range``; ``expected_scan_free``
    is False — these go scan-free only once an index exists.
    """
    rel = database.relation(relation)
    schema = rel.schema
    if select_attrs is None:
        pk = list(schema.primary_key or schema.attribute_names[:1])
        select_attrs = pk + [
            a for a in (eq_attr, range_attr) if a not in pk
        ]
    columns = ", ".join(f"T.{a}" for a in select_attrs)
    eq_domain = sorted(
        v for v in rel.distinct_values(eq_attr) if v is not None
    )
    range_domain = sorted(
        v for v in rel.distinct_values(range_attr) if v is not None
    )
    if not eq_domain or not range_domain:
        raise ValueError(
            f"{relation}.{eq_attr}/{range_attr} have no indexable values"
        )
    # skew by frequency: the most common value gets Zipf rank 0
    frequency: Dict[object, int] = {}
    attr_pos = schema.index_of(eq_attr)
    for row in rel.rows:
        value = row[attr_pos]
        if value is not None:
            frequency[value] = frequency.get(value, 0) + 1
    by_rank = sorted(eq_domain, key=lambda v: (-frequency[v], v))
    weights = [
        1.0 / (rank + 1) ** zipf_alpha for rank in range(len(by_rank))
    ]
    window = max(1, round(len(range_domain) * range_width))

    rng = random.Random(seed)
    out: List[GeneratedQuery] = []
    for index in range(n_queries):
        if index % 2 == 0:
            value = rng.choices(by_rank, weights=weights, k=1)[0]
            sql = (
                f"select {columns} from {relation} T "
                f"where T.{eq_attr} = {_sql_literal(value)}"
            )
            template = "sel_eq"
        else:
            start = rng.randrange(max(1, len(range_domain) - window))
            lo = range_domain[start]
            hi = range_domain[min(start + window, len(range_domain) - 1)]
            sql = (
                f"select {columns} from {relation} T "
                f"where T.{range_attr} between {_sql_literal(lo)} "
                f"and {_sql_literal(hi)}"
            )
            template = "sel_range"
        out.append(GeneratedQuery(template, sql, False))
    return out


def mot_generator(seed: int = 42) -> QueryGenerator:
    from repro.workloads import mot

    return QueryGenerator(
        mot.TEMPLATES, mot.SCAN_FREE_TEMPLATES, mot.sample_params, seed
    )


def airca_generator(seed: int = 42) -> QueryGenerator:
    from repro.workloads import airca

    return QueryGenerator(
        airca.TEMPLATES, airca.SCAN_FREE_TEMPLATES, airca.sample_params, seed
    )
