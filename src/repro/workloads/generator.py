"""Query generator: instantiate workload templates with sampled parameters.

Mirrors §9 "Queries": 12 templates per real-life dataset, populated by
randomly instantiating parameters with values from the datasets, yielding
a configurable number of concrete queries per dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.relational.database import Database


@dataclass(frozen=True)
class GeneratedQuery:
    """One instantiated query."""

    template: str
    sql: str
    expected_scan_free: bool


class QueryGenerator:
    """Instantiates a template dictionary against a database."""

    def __init__(
        self,
        templates: Dict[str, str],
        scan_free_templates: Sequence[str],
        param_sampler: Callable[[Database, random.Random], Dict[str, object]],
        seed: int = 42,
    ) -> None:
        self.templates = templates
        self.scan_free = frozenset(scan_free_templates)
        self.param_sampler = param_sampler
        self.seed = seed

    def generate(
        self,
        database: Database,
        per_template: int = 3,
        templates: Optional[Sequence[str]] = None,
    ) -> List[GeneratedQuery]:
        """``per_template`` instantiations of each template (36 for 12×3)."""
        rng = random.Random(self.seed)
        names = list(templates) if templates else sorted(
            self.templates, key=lambda q: int(q[1:])
        )
        out: List[GeneratedQuery] = []
        for name in names:
            template = self.templates[name]
            for _ in range(per_template):
                params = self.param_sampler(database, rng)
                out.append(
                    GeneratedQuery(
                        template=name,
                        sql=template.format(**params).strip(),
                        expected_scan_free=name in self.scan_free,
                    )
                )
        return out


def mot_generator(seed: int = 42) -> QueryGenerator:
    from repro.workloads import mot

    return QueryGenerator(
        mot.TEMPLATES, mot.SCAN_FREE_TEMPLATES, mot.sample_params, seed
    )


def airca_generator(seed: int = 42) -> QueryGenerator:
    from repro.workloads import airca

    return QueryGenerator(
        airca.TEMPLATES, airca.SCAN_FREE_TEMPLATES, airca.sample_params, seed
    )
