"""Synthetic US-air-carrier-like workload (the paper's AIRCA dataset, §9).

The real AIRCA data joins the BTS Flight On-Time Performance table (a
famously wide table) with Carrier Statistics. We generate a synthetic
equivalent with the paper-relevant properties: **7 tables, 358 attributes
total**, skewed foreign keys (a handful of mega-carriers and hub airports
dominate), and small active domains.

Wide tables are built programmatically: a core of meaningful attributes
plus numbered ``metric_NN`` columns, mimicking the shape of the BTS data
without typing out 358 names.

Query templates: q1–q6 scan-free and bounded (keyed lookups on flight ids,
carrier+date, routes), q7–q12 not (ranged / whole-table aggregates).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.baav.schema import BaaVSchema, KVSchema
from repro.relational.database import Database
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.types import AttrType as T
from repro.relational.types import Row


def _wide(name: str, core: Dict[str, T], n_metrics: int, pk: List[str]):
    attrs = [Attribute(a, t) for a, t in core.items()]
    attrs += [
        Attribute(f"metric_{i:02d}", T.FLOAT) for i in range(1, n_metrics + 1)
    ]
    return RelationSchema(name, attrs, pk)


# 7 tables; attribute counts sum to 358:
#   CARRIER 21 + AIRPORT 26 + AIRCRAFT 31 + FLIGHT 100 + DELAY 40
#   + ROUTE 50 + CSTAT 90 = 358
CARRIER = _wide(
    "CARRIER",
    {
        "carrier_id": T.INT,
        "code": T.STR,
        "name": T.STR,
        "country": T.STR,
        "alliance": T.STR,
        "fleet_size": T.INT,
    },
    15,
    ["carrier_id"],
)

AIRPORT = _wide(
    "AIRPORT",
    {
        "airport_id": T.INT,
        "iata": T.STR,
        "city": T.STR,
        "state": T.STR,
        "hub_level": T.INT,
        "runways": T.INT,
    },
    20,
    ["airport_id"],
)

AIRCRAFT = _wide(
    "AIRCRAFT",
    {
        "tail_id": T.INT,
        "carrier_id": T.INT,
        "model": T.STR,
        "manufacturer": T.STR,
        "seats": T.INT,
        "year_built": T.INT,
    },
    25,
    ["tail_id"],
)

FLIGHT = _wide(
    "FLIGHT",
    {
        "flight_id": T.INT,
        "carrier_id": T.INT,
        "origin": T.INT,
        "dest": T.INT,
        "tail_id": T.INT,
        "flight_date": T.DATE,
        "dep_delay": T.FLOAT,
        "arr_delay": T.FLOAT,
        "distance": T.INT,
        "cancelled": T.BOOL,
        "air_time": T.FLOAT,
        "taxi_out": T.FLOAT,
    },
    88,
    ["flight_id"],
)

DELAY = _wide(
    "DELAY",
    {
        "delay_id": T.INT,
        "flight_id": T.INT,
        "cause": T.STR,
        "minutes": T.FLOAT,
        "severity": T.INT,
    },
    35,
    ["delay_id"],
)

ROUTE = _wide(
    "ROUTE",
    {
        "route_id": T.INT,
        "origin": T.INT,
        "dest": T.INT,
        "carrier_id": T.INT,
        "frequency": T.INT,
        "distance": T.INT,
    },
    44,
    ["route_id"],
)

CSTAT = _wide(
    "CSTAT",
    {
        "stat_id": T.INT,
        "carrier_id": T.INT,
        "month": T.STR,
        "flights": T.INT,
        "passengers": T.INT,
        "revenue": T.FLOAT,
    },
    84,
    ["stat_id"],
)

ALL_RELATIONS = (CARRIER, AIRPORT, AIRCRAFT, FLIGHT, DELAY, ROUTE, CSTAT)

CAUSES = ("CARRIER", "WEATHER", "NAS", "SECURITY", "LATE_AIRCRAFT")
ALLIANCES = ("STAR", "ONEWORLD", "SKYTEAM", "NONE")
MANUFACTURERS = ("BOEING", "AIRBUS", "EMBRAER", "BOMBARDIER", "MCDONNELL")
N_CARRIERS = 14
N_AIRPORTS = 50
N_MONTHS = 24


def _zipf_index(rng: random.Random, n: int, alpha: float = 1.2) -> int:
    weights = [1.0 / (i + 1) ** alpha for i in range(n)]
    return rng.choices(range(n), weights=weights, k=1)[0]


def _month(index: int) -> str:
    year, month = divmod(index, 12)
    return f"{1999 + year:04d}-{month + 1:02d}"


def _fdate(rng: random.Random) -> str:
    month = rng.randrange(N_MONTHS)
    return f"{_month(month)}-{rng.randrange(1, 29):02d}"


def airca_schema() -> DatabaseSchema:
    """The AIRCA schema (7 tables, 358 attributes)."""
    return DatabaseSchema(ALL_RELATIONS)


class AIRCAGenerator:
    """Synthetic AIRCA generator; ``scale`` ≈ hundreds of flights."""

    def __init__(self, scale: float = 1.0, seed: int = 1987) -> None:
        self.n_flights = max(50, round(400 * scale))
        self.n_aircraft = max(10, self.n_flights // 12)
        self.seed = seed

    def _metrics(self, rng: random.Random, n: int) -> Tuple[float, ...]:
        return tuple(round(rng.uniform(0.0, 100.0), 2) for _ in range(n))

    def generate(self) -> Database:
        rng = random.Random(self.seed)
        db = Database(airca_schema())

        carriers: List[Row] = []
        for cid in range(1, N_CARRIERS + 1):
            carriers.append(
                (
                    cid, f"C{cid:02d}", f"Carrier {cid}", "US",
                    rng.choice(ALLIANCES), rng.randrange(20, 900),
                )
                + self._metrics(rng, 15)
            )
        db.load("CARRIER", carriers)

        airports: List[Row] = []
        for aid in range(1, N_AIRPORTS + 1):
            airports.append(
                (
                    aid, f"A{aid:02d}", f"City{aid}", f"S{aid % 50:02d}",
                    3 if aid <= 5 else (2 if aid <= 15 else 1),
                    rng.randrange(1, 7),
                )
                + self._metrics(rng, 20)
            )
        db.load("AIRPORT", airports)

        aircraft: List[Row] = []
        for tid in range(1, self.n_aircraft + 1):
            aircraft.append(
                (
                    tid, _zipf_index(rng, N_CARRIERS) + 1,
                    f"M{rng.randrange(1, 12)}", rng.choice(MANUFACTURERS),
                    rng.choice((50, 76, 120, 150, 180, 220, 300)),
                    rng.randrange(1985, 2002),
                )
                + self._metrics(rng, 25)
            )
        db.load("AIRCRAFT", aircraft)

        routes: List[Row] = []
        route_id = 0
        seen = set()
        for _ in range(self.n_flights // 4 + 10):
            origin = _zipf_index(rng, N_AIRPORTS) + 1
            dest = _zipf_index(rng, N_AIRPORTS) + 1
            if origin == dest:
                continue
            carrier = _zipf_index(rng, N_CARRIERS) + 1
            key = (origin, dest, carrier)
            if key in seen:
                continue
            seen.add(key)
            route_id += 1
            routes.append(
                (
                    route_id, origin, dest, carrier,
                    rng.randrange(1, 30), rng.randrange(100, 4000),
                )
                + self._metrics(rng, 44)
            )
        db.load("ROUTE", routes)

        flights: List[Row] = []
        delays: List[Row] = []
        delay_id = 0
        for fid in range(1, self.n_flights + 1):
            carrier = _zipf_index(rng, N_CARRIERS) + 1
            origin = _zipf_index(rng, N_AIRPORTS) + 1
            dest = ((origin + rng.randrange(1, N_AIRPORTS)) % N_AIRPORTS) + 1
            dep_delay = round(max(-10.0, rng.gauss(8.0, 22.0)), 1)
            arr_delay = round(dep_delay + rng.gauss(0.0, 12.0), 1)
            flights.append(
                (
                    fid, carrier, origin, dest,
                    rng.randrange(1, self.n_aircraft + 1), _fdate(rng),
                    dep_delay, arr_delay, rng.randrange(100, 4000),
                    rng.random() < 0.02, round(rng.uniform(35.0, 420.0), 1),
                    round(rng.uniform(5.0, 45.0), 1),
                )
                + self._metrics(rng, 88)
            )
            if arr_delay > 15.0:
                for _ in range(rng.randrange(1, 3)):
                    delay_id += 1
                    delays.append(
                        (
                            delay_id, fid, _zipf_choice_str(rng, CAUSES),
                            round(rng.uniform(5.0, 180.0), 1),
                            rng.randrange(1, 5),
                        )
                        + self._metrics(rng, 35)
                    )
        db.load("FLIGHT", flights)
        db.load("DELAY", delays)

        cstats: List[Row] = []
        stat_id = 0
        for cid in range(1, N_CARRIERS + 1):
            for month in range(N_MONTHS):
                stat_id += 1
                cstats.append(
                    (
                        stat_id, cid, _month(month),
                        rng.randrange(100, 20_000),
                        rng.randrange(10_000, 2_000_000),
                        round(rng.uniform(1e6, 5e8), 2),
                    )
                    + self._metrics(rng, 84)
                )
        db.load("CSTAT", cstats)
        return db


def _zipf_choice_str(rng: random.Random, items: Sequence[str]) -> str:
    weights = [1.0 / (i + 1) ** 1.3 for i in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def generate_airca(scale: float = 1.0, seed: int = 1987) -> Database:
    return AIRCAGenerator(scale, seed).generate()


def airca_baav_schema() -> BaaVSchema:
    """KV schemas for AIRCA (the paper used 8; we add flight_by_tail)."""
    def rest(rel, *key):
        return [a for a in rel.attribute_names if a not in set(key)]

    return BaaVSchema(
        [
            KVSchema("carrier_by_id", CARRIER, ["carrier_id"],
                     rest(CARRIER, "carrier_id")),
            KVSchema("airport_by_id", AIRPORT, ["airport_id"],
                     rest(AIRPORT, "airport_id")),
            KVSchema("aircraft_by_id", AIRCRAFT, ["tail_id"],
                     rest(AIRCRAFT, "tail_id")),
            KVSchema("flight_by_id", FLIGHT, ["flight_id"],
                     rest(FLIGHT, "flight_id")),
            KVSchema("flight_by_carrier_date", FLIGHT,
                     ["carrier_id", "flight_date"],
                     ["flight_id", "origin", "dest", "dep_delay",
                      "arr_delay", "tail_id", "cancelled"]),
            KVSchema("flight_by_tail", FLIGHT, ["tail_id"],
                     ["flight_id", "flight_date", "arr_delay", "distance"]),
            KVSchema("delay_by_id", DELAY, ["delay_id"],
                     rest(DELAY, "delay_id")),
            KVSchema("delay_by_flight", DELAY, ["flight_id"],
                     rest(DELAY, "flight_id")),
            KVSchema("route_by_od", ROUTE, ["origin", "dest"],
                     ["route_id", "carrier_id", "frequency", "distance"]),
            KVSchema("route_by_id", ROUTE, ["route_id"],
                     rest(ROUTE, "route_id")),
            KVSchema("cstat_by_carrier_month", CSTAT,
                     ["carrier_id", "month"],
                     ["stat_id", "flights", "passengers", "revenue"]),
            KVSchema("cstat_by_id", CSTAT, ["stat_id"],
                     rest(CSTAT, "stat_id")),
        ]
    )


TEMPLATES: Dict[str, str] = {
    "q1": """
select F.flight_date, F.dep_delay, F.arr_delay, D.cause, D.minutes
from FLIGHT F, DELAY D
where F.flight_id = D.flight_id and F.flight_id = {fid}
""",
    "q2": """
select F.flight_id, F.origin, F.dest, F.arr_delay, C.name
from FLIGHT F, CARRIER C
where F.carrier_id = {carrier} and F.flight_date = '{date}'
  and C.carrier_id = F.carrier_id
""",
    "q3": """
select R.route_id, R.frequency, C.name, C.alliance
from ROUTE R, CARRIER C
where R.origin = {origin} and R.dest = {dest}
  and R.carrier_id = C.carrier_id
""",
    "q4": """
select CS.flights, CS.passengers, CS.revenue, C.name
from CSTAT CS, CARRIER C
where CS.carrier_id = {carrier} and CS.month = '{month}'
  and C.carrier_id = CS.carrier_id
""",
    "q5": """
select D.cause, count(*) as n, sum(D.minutes) as total_minutes
from FLIGHT F, DELAY D
where F.flight_id = D.flight_id and F.flight_id = {fid}
group by D.cause
""",
    "q6": """
select F.flight_id, F.arr_delay, A.model, A.seats, D.cause
from FLIGHT F, AIRCRAFT A, DELAY D
where F.flight_id = {fid} and A.tail_id = F.tail_id
  and D.flight_id = F.flight_id
""",
    "q7": """
select F.carrier_id, avg(F.arr_delay) as avg_delay
from FLIGHT F
group by F.carrier_id
order by avg_delay desc
""",
    "q8": """
select F.origin, count(*) as n, avg(F.dep_delay) as avg_dep
from FLIGHT F
where F.flight_date >= '{date1}' and F.flight_date < '{date2}'
group by F.origin
order by n desc, F.origin
limit 15
""",
    "q9": """
select D.cause, avg(D.minutes) as avg_minutes
from DELAY D, FLIGHT F
where D.flight_id = F.flight_id and F.distance > {distance}
group by D.cause
""",
    "q10": """
select A.manufacturer, avg(F.arr_delay) as avg_delay, count(*) as n
from FLIGHT F, AIRCRAFT A
where F.tail_id = A.tail_id and F.flight_date >= '{date1}'
group by A.manufacturer
""",
    "q11": """
select C.alliance, count(*) as n
from CARRIER C, FLIGHT F, DELAY D
where C.carrier_id = F.carrier_id and D.flight_id = F.flight_id
  and D.minutes > {minutes}
group by C.alliance
order by n desc
""",
    "q12": """
select count(*) as n, avg(F.arr_delay) as avg_delay
from FLIGHT F
where F.distance > {distance}
""",
}

SCAN_FREE_TEMPLATES = ("q1", "q2", "q3", "q4", "q5", "q6")
NON_SCAN_FREE_TEMPLATES = ("q7", "q8", "q9", "q10", "q11", "q12")


def sample_params(db: Database, rng: random.Random) -> Dict[str, object]:
    flights = db.relation("FLIGHT")
    n_flights = len(flights)
    dates = sorted(flights.distinct_values("flight_date"))
    months = sorted(db.relation("CSTAT").distinct_values("month"))
    routes = db.relation("ROUTE")
    route_row = routes.rows[rng.randrange(len(routes))]
    return {
        "fid": rng.randrange(1, n_flights + 1),
        "carrier": rng.randrange(1, N_CARRIERS + 1),
        "date": rng.choice(dates),
        "date1": dates[len(dates) // 4],
        "date2": dates[3 * len(dates) // 4],
        "month": rng.choice(months),
        "origin": route_row[1],
        "dest": route_row[2],
        "distance": rng.randrange(500, 2500),
        "minutes": rng.randrange(30, 120),
    }
