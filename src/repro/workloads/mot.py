"""Synthetic UK-MOT-like workload (the paper's MOT dataset, §9).

The real MOT data (anonymized UK vehicle test records joined with roadside
survey observations) is not redistributable, so we generate a synthetic
equivalent with the properties the paper's evaluation relies on:

* 3 tables, 42 attributes total (VEHICLE 10, TEST 16, SURVEY 16);
* heavy skew: makes/regions are Zipf-distributed and per-vehicle test and
  observation counts vary, so BaaV blocks have real degrees (unlike
  TPC-H), and small active domains make compression effective;
* the 12 query templates of §9: q1–q6 are scan-free *and bounded* (they
  probe selective keys whose block degree is bounded by construction),
  q7–q12 are not scan-free (range predicates and whole-table aggregates).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.baav.schema import BaaVSchema, KVSchema
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import AttrType as T
from repro.relational.types import Row

VEHICLE = RelationSchema.of(
    "VEHICLE",
    {
        "vehicle_id": T.INT,
        "make": T.STR,
        "model": T.STR,
        "fuel_type": T.STR,
        "colour": T.STR,
        "engine_cc": T.INT,
        "year": T.INT,
        "body_type": T.STR,
        "region": T.STR,
        "weight": T.INT,
    },
    ["vehicle_id"],
)

TEST = RelationSchema.of(
    "TEST",
    {
        "test_id": T.INT,
        "vehicle_id": T.INT,
        "test_date": T.DATE,
        "test_class": T.INT,
        "test_type": T.STR,
        "result": T.STR,
        "odometer": T.INT,
        "station_id": T.INT,
        "cylinder_cc": T.INT,
        "co2": T.FLOAT,
        "defect_count": T.INT,
        "advisory_count": T.INT,
        "retest": T.BOOL,
        "duration_min": T.INT,
        "fee": T.FLOAT,
        "inspector_id": T.INT,
    },
    ["test_id"],
)

SURVEY = RelationSchema.of(
    "SURVEY",
    {
        "obs_id": T.INT,
        "vehicle_id": T.INT,
        "road_id": T.INT,
        "obs_date": T.DATE,
        "region": T.STR,
        "speed": T.FLOAT,
        "lane": T.INT,
        "direction": T.STR,
        "weather": T.STR,
        "temperature": T.FLOAT,
        "traffic_level": T.INT,
        "camera_id": T.INT,
        "heading": T.INT,
        "occupancy": T.INT,
        "axle_count": T.INT,
        "length_m": T.FLOAT,
    },
    ["obs_id"],
)

MAKES = (
    "FORD", "VAUXHALL", "VOLKSWAGEN", "BMW", "AUDI", "TOYOTA", "PEUGEOT",
    "RENAULT", "MERCEDES", "NISSAN", "HONDA", "CITROEN", "FIAT", "MINI",
    "SKODA", "KIA", "HYUNDAI", "SEAT", "MAZDA", "VOLVO", "LANDROVER",
    "JAGUAR", "SUZUKI", "MITSUBISHI", "LEXUS", "DACIA", "SMART", "PORSCHE",
    "TESLA", "SAAB", "ROVER", "MG", "ALFA", "CHRYSLER", "JEEP", "SUBARU",
    "ISUZU", "BENTLEY", "LOTUS", "MORGAN",
)
REGIONS = (
    "LONDON", "SOUTH EAST", "NORTH WEST", "EAST", "WEST MIDLANDS",
    "SOUTH WEST", "YORKSHIRE", "EAST MIDLANDS", "NORTH EAST", "WALES",
    "SCOTLAND", "NORTHERN IRELAND",
)
FUELS = ("PETROL", "DIESEL", "HYBRID", "ELECTRIC", "LPG")
COLOURS = ("BLACK", "WHITE", "SILVER", "BLUE", "RED", "GREY", "GREEN")
BODY_TYPES = ("HATCHBACK", "SALOON", "ESTATE", "SUV", "VAN", "COUPE")
RESULTS = ("PASS", "FAIL", "PRS", "ABANDONED")
TEST_TYPES = ("NORMAL", "RETEST", "PARTIAL")
DIRECTIONS = ("N", "S", "E", "W")
WEATHERS = ("DRY", "RAIN", "SNOW", "FOG")

# default active-domain sizes; the generator scales stations/roads with
# the vehicle count so that selective-key block degrees stay *stable* as
# the dataset grows (the paper scaled the real data the same way) —
# that stability is exactly what makes q1-q6 bounded
N_STATIONS = 40
N_ROADS = 60
N_DATES = 120


def _zipf_choice(rng: random.Random, items: Sequence, alpha: float = 1.1):
    """Zipf-distributed choice: item i with weight 1/(i+1)^alpha."""
    weights = [1.0 / (i + 1) ** alpha for i in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


def _date(rng: random.Random, index: int = -1) -> str:
    day = rng.randrange(N_DATES) if index < 0 else index
    month, dom = divmod(day, 28)
    return f"2010-{month % 12 + 1:02d}-{dom + 1:02d}"


class MOTGenerator:
    """Synthetic MOT generator; ``scale`` = hundreds of vehicles."""

    def __init__(self, scale: float = 1.0, seed: int = 2010) -> None:
        self.n_vehicles = max(20, round(100 * scale))
        self.n_stations = max(20, self.n_vehicles // 20)
        self.n_roads = max(30, self.n_vehicles // 12)
        self.seed = seed

    def generate(self) -> Database:
        rng = random.Random(self.seed)
        db = Database(mot_schema())
        vehicles: List[Row] = []
        for vid in range(1, self.n_vehicles + 1):
            make = _zipf_choice(rng, MAKES)
            vehicles.append(
                (
                    vid,
                    make,
                    f"{make}-M{rng.randrange(1, 9)}",
                    _zipf_choice(rng, FUELS, 0.9),
                    _zipf_choice(rng, COLOURS, 0.7),
                    rng.choice((998, 1200, 1400, 1600, 1800, 2000, 2500)),
                    rng.randrange(1995, 2011),
                    _zipf_choice(rng, BODY_TYPES, 0.8),
                    _zipf_choice(rng, REGIONS),
                    rng.randrange(900, 2600),
                )
            )
        db.load("VEHICLE", vehicles)

        tests: List[Row] = []
        test_id = 0
        for vid in range(1, self.n_vehicles + 1):
            # per-vehicle test count: skewed, bounded by 12
            n_tests = min(12, 1 + int(rng.expovariate(1 / 2.5)))
            for _ in range(n_tests):
                test_id += 1
                failed = rng.random() < 0.28
                tests.append(
                    (
                        test_id,
                        vid,
                        _date(rng),
                        rng.choice((4, 5, 7)),
                        _zipf_choice(rng, TEST_TYPES, 1.5),
                        "FAIL" if failed else _zipf_choice(rng, RESULTS, 2.0),
                        rng.randrange(1_000, 180_000),
                        rng.randrange(1, self.n_stations + 1),
                        rng.choice((998, 1200, 1400, 1600, 1800, 2000)),
                        round(rng.uniform(90.0, 280.0), 1),
                        rng.randrange(0, 6) if failed else 0,
                        rng.randrange(0, 4),
                        rng.random() < 0.1,
                        rng.randrange(20, 70),
                        round(rng.uniform(29.65, 54.85), 2),
                        rng.randrange(1, 200),
                    )
                )
        db.load("TEST", tests)

        surveys: List[Row] = []
        obs_id = 0
        for vid in range(1, self.n_vehicles + 1):
            n_obs = min(20, int(rng.expovariate(1 / 3.0)))
            for _ in range(n_obs):
                obs_id += 1
                surveys.append(
                    (
                        obs_id,
                        vid,
                        rng.randrange(1, self.n_roads + 1),
                        _date(rng),
                        _zipf_choice(rng, REGIONS),
                        round(rng.uniform(15.0, 85.0), 1),
                        rng.randrange(1, 4),
                        rng.choice(DIRECTIONS),
                        _zipf_choice(rng, WEATHERS, 1.5),
                        round(rng.uniform(-5.0, 30.0), 1),
                        rng.randrange(1, 6),
                        rng.randrange(1, 300),
                        rng.randrange(0, 360),
                        rng.randrange(1, 5),
                        rng.choice((2, 2, 2, 3, 4)),
                        round(rng.uniform(3.2, 12.5), 1),
                    )
                )
        db.load("SURVEY", surveys)
        return db


def mot_schema() -> DatabaseSchema:
    """The MOT database schema (3 tables, 42 attributes)."""
    return DatabaseSchema([VEHICLE, TEST, SURVEY])


def generate_mot(scale: float = 1.0, seed: int = 2010) -> Database:
    return MOTGenerator(scale, seed).generate()


def mot_baav_schema() -> BaaVSchema:
    """The 8 KV schemas used for MOT (mirrors §9 "BaaV schema")."""
    def rest(rel, *key):
        return [a for a in rel.attribute_names if a not in set(key)]

    return BaaVSchema(
        [
            KVSchema("veh_by_id", VEHICLE, ["vehicle_id"],
                     rest(VEHICLE, "vehicle_id")),
            KVSchema("veh_by_make", VEHICLE, ["make"],
                     ["vehicle_id", "model", "fuel_type", "region", "year"]),
            KVSchema("veh_by_region", VEHICLE, ["region"],
                     ["vehicle_id", "make", "fuel_type"]),
            KVSchema("test_by_id", TEST, ["test_id"],
                     rest(TEST, "test_id")),
            KVSchema("test_by_vehicle", TEST, ["vehicle_id"],
                     rest(TEST, "vehicle_id")),
            KVSchema("test_by_station_date", TEST,
                     ["station_id", "test_date"],
                     ["test_id", "vehicle_id", "result", "odometer"]),
            KVSchema("survey_by_vehicle", SURVEY, ["vehicle_id"],
                     rest(SURVEY, "vehicle_id")),
            KVSchema("survey_by_road_date", SURVEY, ["road_id", "obs_date"],
                     ["obs_id", "vehicle_id", "speed", "lane"]),
        ]
    )


#: 12 templates; parameters are filled by the query generator.
#: q1–q6 are scan-free and bounded; q7–q12 are neither.
TEMPLATES: Dict[str, str] = {
    "q1": """
select V.make, V.model, T.result, T.test_date
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id and V.vehicle_id = {vid}
""",
    "q2": """
select V.make, S.speed, S.obs_date, S.road_id
from VEHICLE V, SURVEY S
where V.vehicle_id = S.vehicle_id and V.vehicle_id = {vid}
""",
    "q3": """
select T.test_id, T.result, T.odometer, V.make, V.fuel_type
from TEST T, VEHICLE V
where T.station_id = {station} and T.test_date = '{date}'
  and T.vehicle_id = V.vehicle_id
""",
    "q4": """
select S.obs_id, S.speed, S.lane, V.make, V.region
from SURVEY S, VEHICLE V
where S.road_id = {road} and S.obs_date = '{date}'
  and S.vehicle_id = V.vehicle_id
""",
    "q5": """
select T.result, count(*) as n, max(T.odometer) as max_odo
from TEST T, VEHICLE V
where V.vehicle_id = T.vehicle_id and V.vehicle_id = {vid}
group by T.result
""",
    "q6": """
select T.test_date, T.result, S.obs_date, S.speed
from VEHICLE V, TEST T, SURVEY S
where V.vehicle_id = {vid} and T.vehicle_id = V.vehicle_id
  and S.vehicle_id = V.vehicle_id
""",
    "q7": """
select V.make, avg(T.co2) as avg_co2
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id
group by V.make
order by avg_co2 desc
""",
    "q8": """
select V.region, count(*) as n_tests
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id
  and T.test_date >= '{date1}' and T.test_date < '{date2}'
group by V.region
order by n_tests desc
""",
    "q9": """
select S.region, avg(S.speed) as avg_speed, max(S.speed) as max_speed
from SURVEY S
where S.obs_date between '{date1}' and '{date2}'
group by S.region
""",
    "q10": """
select V.fuel_type, avg(T.co2) as avg_co2, count(*) as n
from VEHICLE V, TEST T
where V.vehicle_id = T.vehicle_id and T.test_date >= '{date1}'
group by V.fuel_type
""",
    "q11": """
select V.make, count(*) as n
from VEHICLE V, TEST T, SURVEY S
where V.vehicle_id = T.vehicle_id and S.vehicle_id = V.vehicle_id
  and T.odometer > {odo}
group by V.make
order by n desc, V.make
limit 10
""",
    "q12": """
select count(*) as n, avg(T.fee) as avg_fee
from TEST T
where T.defect_count > {defects}
""",
}

SCAN_FREE_TEMPLATES = ("q1", "q2", "q3", "q4", "q5", "q6")
NON_SCAN_FREE_TEMPLATES = ("q7", "q8", "q9", "q10", "q11", "q12")


def sample_params(db: Database, rng: random.Random) -> Dict[str, object]:
    """Template parameters drawn from the active domains."""
    vehicle = db.relation("VEHICLE")
    n_vehicles = len(vehicle)
    dates = sorted(db.relation("TEST").distinct_values("test_date"))
    stations = sorted(db.relation("TEST").distinct_values("station_id"))
    roads = sorted(db.relation("SURVEY").distinct_values("road_id"))
    date1 = dates[len(dates) // 4]
    date2 = dates[3 * len(dates) // 4]
    return {
        "vid": rng.randrange(1, n_vehicles + 1),
        "station": rng.choice(stations),
        "road": rng.choice(roads),
        "date": rng.choice(dates),
        "date1": date1,
        "date2": date2,
        "odo": rng.randrange(50_000, 150_000),
        "defects": rng.randrange(1, 4),
    }
