"""A seeded TPC-H data generator (dbgen substitute).

Cardinalities follow the spec's ratios at a configurable scale factor:
``SUPPLIER = 10_000·sf``, ``CUSTOMER = 150_000·sf``, ``PART = 200_000·sf``,
``PARTSUPP = 4·PART``, ``ORDERS = 10·CUSTOMER``, ``LINEITEM ≈ 4·ORDERS``.
Distributions are uniform over the active domains — TPC-H is famously
skew-free, which is exactly the property the paper's "Observation" in
Exp-1 leans on (BaaV degrees are either ~1 or ~|R| on TPC-H).
"""

from __future__ import annotations

import random
from typing import List

from repro.relational.database import Database
from repro.relational.types import Row
from repro.workloads.tpch.schema import tpch_schema

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTS = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
)
CONTAINERS = tuple(
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)
TYPE_SYLL1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLL2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLL3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
BRANDS = tuple(f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6))
PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream",
    "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral",
    "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey",
    "honeydew", "hot", "indian", "ivory", "khaki", "lace", "lavender",
    "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
    "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo",
    "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru",
    "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy",
    "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky",
    "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato",
    "turquoise", "violet", "wheat", "white", "yellow",
)
COMMENT_WORDS = (
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "requests", "packages", "accounts", "foxes", "ideas", "theodolites",
    "pinto", "beans", "instructions", "dependencies", "excuses", "platelets",
)

_DATE_START = (1992, 1, 1)
_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _date(day_offset: int) -> str:
    """ISO date ``day_offset`` days after 1992-01-01 (no leap years)."""
    year, month, day = _DATE_START
    days = day_offset
    while True:
        month_days = _DAYS_PER_MONTH[month - 1]
        if days < month_days - (day - 1):
            return f"{year:04d}-{month:02d}-{day + days:02d}"
        days -= month_days - (day - 1)
        day = 1
        month += 1
        if month > 12:
            month = 1
            year += 1


MAX_DAY = 2520  # ~ 1992-01-01 .. 1998-12-xx


class TPCHGenerator:
    """Deterministic TPC-H-like data generator."""

    def __init__(self, scale_factor: float = 0.002, seed: int = 20190826):
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.sf = scale_factor
        self.seed = seed
        self.n_supplier = max(3, round(10_000 * scale_factor))
        self.n_customer = max(5, round(150_000 * scale_factor))
        self.n_part = max(5, round(200_000 * scale_factor))
        self.n_orders = 10 * self.n_customer

    def generate(self) -> Database:
        rng = random.Random(self.seed)
        db = Database(tpch_schema())
        db.load("REGION", self._regions(rng))
        db.load("NATION", self._nations(rng))
        db.load("SUPPLIER", self._suppliers(rng))
        db.load("CUSTOMER", self._customers(rng))
        db.load("PART", self._parts(rng))
        db.load("PARTSUPP", self._partsupps(rng))
        orders, lineitems = self._orders_and_lineitems(rng)
        db.load("ORDERS", orders)
        db.load("LINEITEM", lineitems)
        return db

    # -- per-table generators ------------------------------------------------

    def _comment(self, rng: random.Random, words: int = 3) -> str:
        return " ".join(rng.choice(COMMENT_WORDS) for _ in range(words))

    def _regions(self, rng: random.Random) -> List[Row]:
        return [
            (i, name, self._comment(rng)) for i, name in enumerate(REGIONS)
        ]

    def _nations(self, rng: random.Random) -> List[Row]:
        return [
            (i, name, region, self._comment(rng))
            for i, (name, region) in enumerate(NATIONS)
        ]

    def _suppliers(self, rng: random.Random) -> List[Row]:
        rows = []
        for key in range(1, self.n_supplier + 1):
            rows.append(
                (
                    key,
                    f"Supplier#{key:09d}",
                    f"addr_{rng.randrange(10_000)}",
                    rng.randrange(len(NATIONS)),
                    f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-"
                    f"{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                    round(rng.uniform(-999.99, 9999.99), 2),
                    self._comment(rng),
                )
            )
        return rows

    def _customers(self, rng: random.Random) -> List[Row]:
        rows = []
        for key in range(1, self.n_customer + 1):
            rows.append(
                (
                    key,
                    f"Customer#{key:09d}",
                    f"addr_{rng.randrange(10_000)}",
                    rng.randrange(len(NATIONS)),
                    f"{rng.randrange(10, 35)}-{rng.randrange(100, 999)}-"
                    f"{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                    round(rng.uniform(-999.99, 9999.99), 2),
                    rng.choice(SEGMENTS),
                    self._comment(rng),
                )
            )
        return rows

    def _parts(self, rng: random.Random) -> List[Row]:
        rows = []
        for key in range(1, self.n_part + 1):
            name = " ".join(rng.sample(PART_NAME_WORDS, 5))
            mfgr_id = rng.randrange(1, 6)
            rows.append(
                (
                    key,
                    name,
                    f"Manufacturer#{mfgr_id}",
                    rng.choice(BRANDS),
                    f"{rng.choice(TYPE_SYLL1)} {rng.choice(TYPE_SYLL2)} "
                    f"{rng.choice(TYPE_SYLL3)}",
                    rng.randrange(1, 51),
                    rng.choice(CONTAINERS),
                    round(900 + key / 10 % 200 + 0.01 * (key % 1000), 2),
                    self._comment(rng),
                )
            )
        return rows

    def _partsupps(self, rng: random.Random) -> List[Row]:
        rows = []
        for partkey in range(1, self.n_part + 1):
            for replica in range(4):
                suppkey = (
                    (partkey + replica * (self.n_supplier // 4 + 1))
                    % self.n_supplier
                ) + 1
                rows.append(
                    (
                        partkey,
                        suppkey,
                        rng.randrange(1, 10_000),
                        round(rng.uniform(1.0, 1000.0), 2),
                        self._comment(rng),
                    )
                )
        return rows

    def _orders_and_lineitems(self, rng: random.Random):
        orders: List[Row] = []
        lineitems: List[Row] = []
        for orderkey in range(1, self.n_orders + 1):
            custkey = rng.randrange(1, self.n_customer + 1)
            order_day = rng.randrange(0, MAX_DAY - 200)
            orderdate = _date(order_day)
            n_lines = rng.randrange(1, 8)
            totalprice = 0.0
            all_f = True
            any_f = False
            for linenumber in range(1, n_lines + 1):
                partkey = rng.randrange(1, self.n_part + 1)
                replica = rng.randrange(4)
                suppkey = (
                    (partkey + replica * (self.n_supplier // 4 + 1))
                    % self.n_supplier
                ) + 1
                quantity = float(rng.randrange(1, 51))
                extendedprice = round(quantity * rng.uniform(900.0, 1100.0), 2)
                discount = round(rng.uniform(0.0, 0.10), 2)
                tax = round(rng.uniform(0.0, 0.08), 2)
                ship_day = order_day + rng.randrange(1, 122)
                commit_day = order_day + rng.randrange(30, 91)
                receipt_day = ship_day + rng.randrange(1, 31)
                shipped = ship_day <= MAX_DAY - 60
                returnflag = (
                    rng.choice(("R", "A")) if rng.random() < 0.25 else "N"
                )
                linestatus = "F" if shipped else "O"
                all_f = all_f and linestatus == "F"
                any_f = any_f or linestatus == "F"
                totalprice += extendedprice * (1 + tax) * (1 - discount)
                lineitems.append(
                    (
                        orderkey,
                        partkey,
                        suppkey,
                        linenumber,
                        quantity,
                        extendedprice,
                        discount,
                        tax,
                        returnflag,
                        linestatus,
                        _date(ship_day),
                        _date(commit_day),
                        _date(receipt_day),
                        rng.choice(SHIP_INSTRUCTS),
                        rng.choice(SHIP_MODES),
                        self._comment(rng),
                    )
                )
            status = "F" if all_f else ("P" if any_f else "O")
            orders.append(
                (
                    orderkey,
                    custkey,
                    status,
                    round(totalprice, 2),
                    orderdate,
                    rng.choice(PRIORITIES),
                    f"Clerk#{rng.randrange(1, 1001):09d}",
                    0,
                    self._comment(rng),
                )
            )
        return orders, lineitems


def generate_tpch(
    scale_factor: float = 0.002, seed: int = 20190826
) -> Database:
    """Generate a TPC-H database at the given scale factor."""
    return TPCHGenerator(scale_factor, seed).generate()
