"""The 22 TPC-H benchmark queries, simplified to the supported SQL subset.

Simplifications (documented per query, preserving each query's join and
selection *structure*, which is what scan-free classification depends on):

* scalar subqueries are replaced by pre-computed constants (q11, q15, q17,
  q18, q22);
* EXISTS / NOT EXISTS become joins or are dropped (q4, q21, q22);
* CASE expressions become filtered aggregates or are dropped (q8, q12,
  q14);
* extract(year ...) grouping becomes grouping on the date itself or is
  dropped (q7, q8, q9).

The classification into scan-free / non-scan-free is *measured* by
Zidian's decision procedure in the benchmarks rather than hard-coded;
`EXPECTED_SCAN_FREE` records the outcome on the reference BaaV schema
below (it matches the paper's list for the core queries; q16/q20/q22
differ because our simplifications turn their anti-join / substring
predicates into constant bindings — see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baav.schema import BaaVSchema, KVSchema
from repro.workloads.tpch import schema as ts

QUERIES: Dict[str, str] = {}

QUERIES["q1"] = """
select L.returnflag, L.linestatus,
       sum(L.quantity) as sum_qty,
       sum(L.extendedprice) as sum_base_price,
       sum(L.extendedprice * (1 - L.discount)) as sum_disc_price,
       sum(L.extendedprice * (1 - L.discount) * (1 + L.tax)) as sum_charge,
       avg(L.quantity) as avg_qty,
       avg(L.extendedprice) as avg_price,
       avg(L.discount) as avg_disc,
       count(*) as count_order
from LINEITEM L
where L.shipdate <= '1998-09-02'
group by L.returnflag, L.linestatus
order by L.returnflag, L.linestatus
"""

QUERIES["q2"] = """
select S.acctbal, S.name as s_name, N.name as n_name, P.partkey, P.mfgr
from PART P, SUPPLIER S, PARTSUPP PS, NATION N, REGION R
where P.partkey = PS.partkey and S.suppkey = PS.suppkey
  and P.size = 15 and P.type like '%BRASS'
  and S.nationkey = N.nationkey and N.regionkey = R.regionkey
  and R.name = 'EUROPE'
order by S.acctbal desc, N.name, S.name, P.partkey
limit 100
"""

QUERIES["q3"] = """
select L.orderkey,
       sum(L.extendedprice * (1 - L.discount)) as revenue,
       O.orderdate, O.shippriority
from CUSTOMER C, ORDERS O, LINEITEM L
where C.mktsegment = 'BUILDING'
  and C.custkey = O.custkey and L.orderkey = O.orderkey
  and O.orderdate < '1995-03-15' and L.shipdate > '1995-03-15'
group by L.orderkey, O.orderdate, O.shippriority
order by revenue desc, O.orderdate
limit 10
"""

QUERIES["q4"] = """
select O.orderpriority, count(*) as order_count
from ORDERS O, LINEITEM L
where O.orderdate >= '1993-07-01' and O.orderdate < '1993-10-01'
  and L.orderkey = O.orderkey and L.commitdate < L.receiptdate
group by O.orderpriority
order by O.orderpriority
"""

QUERIES["q5"] = """
select N.name as n_name,
       sum(L.extendedprice * (1 - L.discount)) as revenue
from CUSTOMER C, ORDERS O, LINEITEM L, SUPPLIER S, NATION N, REGION R
where C.custkey = O.custkey and L.orderkey = O.orderkey
  and L.suppkey = S.suppkey and C.nationkey = S.nationkey
  and S.nationkey = N.nationkey and N.regionkey = R.regionkey
  and R.name = 'ASIA'
  and O.orderdate >= '1994-01-01' and O.orderdate < '1995-01-01'
group by N.name
order by revenue desc
"""

QUERIES["q6"] = """
select sum(L.extendedprice * L.discount) as revenue
from LINEITEM L
where L.shipdate >= '1994-01-01' and L.shipdate < '1995-01-01'
  and L.discount between 0.05 and 0.07 and L.quantity < 24
"""

QUERIES["q7"] = """
select N1.name as supp_nation, N2.name as cust_nation,
       sum(L.extendedprice * (1 - L.discount)) as revenue
from SUPPLIER S, LINEITEM L, ORDERS O, CUSTOMER C, NATION N1, NATION N2
where S.suppkey = L.suppkey and O.orderkey = L.orderkey
  and C.custkey = O.custkey and S.nationkey = N1.nationkey
  and C.nationkey = N2.nationkey
  and N1.name = 'FRANCE' and N2.name = 'GERMANY'
  and L.shipdate between '1995-01-01' and '1996-12-31'
group by N1.name, N2.name
order by revenue desc
"""

QUERIES["q8"] = """
select O.orderdate, sum(L.extendedprice * (1 - L.discount)) as volume
from PART P, SUPPLIER S, LINEITEM L, ORDERS O, CUSTOMER C, NATION N, REGION R
where P.partkey = L.partkey and S.suppkey = L.suppkey
  and L.orderkey = O.orderkey and O.custkey = C.custkey
  and C.nationkey = N.nationkey and N.regionkey = R.regionkey
  and R.name = 'AMERICA'
  and O.orderdate between '1995-01-01' and '1996-12-31'
  and P.type = 'ECONOMY ANODIZED STEEL'
group by O.orderdate
order by O.orderdate
limit 20
"""

QUERIES["q9"] = """
select N.name as nation,
       sum(L.extendedprice * (1 - L.discount) - PS.supplycost * L.quantity)
           as sum_profit
from PART P, SUPPLIER S, LINEITEM L, PARTSUPP PS, ORDERS O, NATION N
where S.suppkey = L.suppkey and PS.suppkey = L.suppkey
  and PS.partkey = L.partkey and P.partkey = L.partkey
  and O.orderkey = L.orderkey and S.nationkey = N.nationkey
  and P.name like '%green%'
group by N.name
order by N.name
"""

QUERIES["q10"] = """
select C.custkey, C.name as c_name,
       sum(L.extendedprice * (1 - L.discount)) as revenue,
       C.acctbal, N.name as n_name
from CUSTOMER C, ORDERS O, LINEITEM L, NATION N
where C.custkey = O.custkey and L.orderkey = O.orderkey
  and O.orderdate >= '1993-10-01' and O.orderdate < '1994-01-01'
  and L.returnflag = 'R' and C.nationkey = N.nationkey
group by C.custkey, C.name, C.acctbal, N.name
order by revenue desc
limit 20
"""

QUERIES["q11"] = """
select PS.partkey, sum(PS.supplycost * PS.availqty) as value
from PARTSUPP PS, SUPPLIER S, NATION N
where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
  and N.name = 'GERMANY'
group by PS.partkey
having sum(PS.supplycost * PS.availqty) > 1000.0
order by value desc
"""

QUERIES["q12"] = """
select L.shipmode, count(*) as count_orders
from ORDERS O, LINEITEM L
where O.orderkey = L.orderkey and L.shipmode in ('MAIL', 'SHIP')
  and L.commitdate < L.receiptdate and L.shipdate < L.commitdate
  and L.receiptdate >= '1994-01-01' and L.receiptdate < '1995-01-01'
group by L.shipmode
order by L.shipmode
"""

QUERIES["q13"] = """
select C.custkey, count(*) as c_count
from CUSTOMER C, ORDERS O
where C.custkey = O.custkey
group by C.custkey
order by c_count desc, C.custkey
limit 100
"""

QUERIES["q14"] = """
select sum(L.extendedprice * (1 - L.discount)) as promo_revenue
from LINEITEM L, PART P
where L.partkey = P.partkey and P.type like 'PROMO%'
  and L.shipdate >= '1995-09-01' and L.shipdate < '1995-10-01'
"""

QUERIES["q15"] = """
select L.suppkey, sum(L.extendedprice * (1 - L.discount)) as total_revenue
from LINEITEM L
where L.shipdate >= '1996-01-01' and L.shipdate < '1996-04-01'
group by L.suppkey
order by total_revenue desc
limit 1
"""

QUERIES["q16"] = """
select P.brand, P.type, P.size, count(distinct PS.suppkey) as supplier_cnt
from PARTSUPP PS, PART P
where P.partkey = PS.partkey and P.brand <> 'Brand#45'
  and P.size in (49, 14, 23, 45, 19, 3, 36, 9)
group by P.brand, P.type, P.size
order by supplier_cnt desc, P.brand, P.type, P.size
limit 50
"""

QUERIES["q17"] = """
select sum(L.extendedprice) as total
from LINEITEM L, PART P
where P.partkey = L.partkey and P.brand = 'Brand#23'
  and P.container = 'MED BOX' and L.quantity < 5
"""

QUERIES["q18"] = """
select C.name as c_name, C.custkey, O.orderkey, O.orderdate, O.totalprice,
       sum(L.quantity) as total_qty
from CUSTOMER C, ORDERS O, LINEITEM L
where C.custkey = O.custkey and O.orderkey = L.orderkey
group by C.name, C.custkey, O.orderkey, O.orderdate, O.totalprice
having sum(L.quantity) > 250
order by O.totalprice desc, O.orderdate
limit 100
"""

QUERIES["q19"] = """
select sum(L.extendedprice * (1 - L.discount)) as revenue
from LINEITEM L, PART P
where P.partkey = L.partkey and P.brand = 'Brand#12'
  and P.container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
  and L.quantity between 1 and 11 and P.size between 1 and 5
  and L.shipmode in ('AIR', 'REG AIR')
  and L.shipinstruct = 'DELIVER IN PERSON'
"""

QUERIES["q20"] = """
select S.name as s_name, S.address
from SUPPLIER S, NATION N, PARTSUPP PS, PART P
where S.nationkey = N.nationkey and N.name = 'CANADA'
  and PS.suppkey = S.suppkey and PS.partkey = P.partkey
  and P.name like 'forest%' and PS.availqty > 100
order by S.name
"""

QUERIES["q21"] = """
select S.name as s_name, count(*) as numwait
from SUPPLIER S, LINEITEM L1, ORDERS O, NATION N
where S.suppkey = L1.suppkey and O.orderkey = L1.orderkey
  and O.orderstatus = 'F' and L1.receiptdate > L1.commitdate
  and S.nationkey = N.nationkey and N.name = 'SAUDI ARABIA'
group by S.name
order by numwait desc, S.name
limit 100
"""

QUERIES["q22"] = """
select C.mktsegment, count(*) as numcust, sum(C.acctbal) as totacctbal
from CUSTOMER C
where C.acctbal > 0.0 and C.nationkey in (13, 31, 23, 29, 30, 18, 17)
group by C.mktsegment
order by C.mktsegment
"""

#: classification measured on the reference BaaV schema below
EXPECTED_SCAN_FREE = (
    "q2", "q3", "q5", "q7", "q8", "q10", "q11", "q12", "q16", "q17",
    "q19", "q20", "q21", "q22",
)
EXPECTED_NON_SCAN_FREE = (
    "q1", "q4", "q6", "q9", "q13", "q14", "q15", "q18",
)


def query_names() -> List[str]:
    return sorted(QUERIES, key=lambda q: int(q[1:]))


def tpch_baav_schema() -> BaaVSchema:
    """The reference BaaV schema for TPC-H (hand-tuned T2B output).

    Full ⟨pk | rest⟩ schemas per relation make it data preserving
    (Condition I); the secondary-keyed schemas realize the access patterns
    of the 22 queries. The paper extracted 64 KV schemas with T2B; this
    distilled set covers the same patterns.
    """
    def rest(rel, *key):
        return [a for a in rel.attribute_names if a not in set(key)]

    schemas = [
        KVSchema("region_by_name", ts.REGION, ["name"],
                 rest(ts.REGION, "name")),
        KVSchema("nation_by_key", ts.NATION, ["nationkey"],
                 rest(ts.NATION, "nationkey")),
        KVSchema("nation_by_name", ts.NATION, ["name"],
                 ["nationkey", "regionkey"]),
        KVSchema("nation_by_region", ts.NATION, ["regionkey"],
                 ["nationkey", "name"]),
        KVSchema("supplier_by_key", ts.SUPPLIER, ["suppkey"],
                 rest(ts.SUPPLIER, "suppkey")),
        KVSchema("supplier_by_nation", ts.SUPPLIER, ["nationkey"],
                 ["suppkey", "name", "address", "phone", "acctbal"]),
        KVSchema("customer_by_key", ts.CUSTOMER, ["custkey"],
                 rest(ts.CUSTOMER, "custkey")),
        KVSchema("customer_by_segment", ts.CUSTOMER, ["mktsegment"],
                 ["custkey", "name", "nationkey", "acctbal"]),
        KVSchema("customer_by_nation", ts.CUSTOMER, ["nationkey"],
                 ["custkey", "acctbal", "mktsegment", "name"]),
        KVSchema("part_by_key", ts.PART, ["partkey"],
                 rest(ts.PART, "partkey")),
        KVSchema("part_by_size", ts.PART, ["size"],
                 ["partkey", "brand", "type", "mfgr", "name", "container"]),
        KVSchema("part_by_brand", ts.PART, ["brand"],
                 ["partkey", "container", "size", "type", "name"]),
        KVSchema("part_by_type", ts.PART, ["type"],
                 ["partkey", "mfgr", "brand"]),
        KVSchema("part_by_brand_container", ts.PART, ["brand", "container"],
                 ["partkey", "name", "size"]),
        KVSchema("partsupp_by_suppkey", ts.PARTSUPP, ["suppkey"],
                 rest(ts.PARTSUPP, "suppkey")),
        KVSchema("partsupp_by_partkey", ts.PARTSUPP, ["partkey"],
                 ["suppkey", "availqty", "supplycost"]),
        KVSchema("orders_by_key", ts.ORDERS, ["orderkey"],
                 rest(ts.ORDERS, "orderkey")),
        KVSchema("orders_by_custkey", ts.ORDERS, ["custkey"],
                 ["orderkey", "orderdate", "orderstatus", "totalprice",
                  "orderpriority", "shippriority"]),
        KVSchema("lineitem_by_orderkey", ts.LINEITEM, ["orderkey"],
                 rest(ts.LINEITEM, "orderkey")),
        KVSchema("lineitem_by_partkey", ts.LINEITEM, ["partkey"],
                 ["orderkey", "linenumber", "suppkey", "quantity",
                  "extendedprice", "discount", "shipdate", "shipmode",
                  "shipinstruct"]),
        KVSchema("lineitem_by_suppkey", ts.LINEITEM, ["suppkey"],
                 ["orderkey", "linenumber", "partkey", "extendedprice",
                  "discount", "quantity", "shipdate", "receiptdate",
                  "commitdate"]),
        KVSchema("lineitem_by_returnflag", ts.LINEITEM, ["returnflag"],
                 ["orderkey", "linenumber", "extendedprice", "discount",
                  "shipdate"]),
        KVSchema("lineitem_by_shipmode", ts.LINEITEM, ["shipmode"],
                 ["orderkey", "linenumber", "receiptdate", "commitdate",
                  "shipdate"]),
    ]
    return BaaVSchema(schemas)
