"""TPC-H relational schema: the 8 standard relations, 61 attributes.

Attribute names follow the spec without the ``l_``/``o_`` prefixes (the
prefix role is played by query aliases). Dates are ISO strings.
"""

from __future__ import annotations

from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import AttrType as T

REGION = RelationSchema.of(
    "REGION",
    {"regionkey": T.INT, "name": T.STR, "comment": T.STR},
    ["regionkey"],
)

NATION = RelationSchema.of(
    "NATION",
    {
        "nationkey": T.INT,
        "name": T.STR,
        "regionkey": T.INT,
        "comment": T.STR,
    },
    ["nationkey"],
)

SUPPLIER = RelationSchema.of(
    "SUPPLIER",
    {
        "suppkey": T.INT,
        "name": T.STR,
        "address": T.STR,
        "nationkey": T.INT,
        "phone": T.STR,
        "acctbal": T.FLOAT,
        "comment": T.STR,
    },
    ["suppkey"],
)

CUSTOMER = RelationSchema.of(
    "CUSTOMER",
    {
        "custkey": T.INT,
        "name": T.STR,
        "address": T.STR,
        "nationkey": T.INT,
        "phone": T.STR,
        "acctbal": T.FLOAT,
        "mktsegment": T.STR,
        "comment": T.STR,
    },
    ["custkey"],
)

PART = RelationSchema.of(
    "PART",
    {
        "partkey": T.INT,
        "name": T.STR,
        "mfgr": T.STR,
        "brand": T.STR,
        "type": T.STR,
        "size": T.INT,
        "container": T.STR,
        "retailprice": T.FLOAT,
        "comment": T.STR,
    },
    ["partkey"],
)

PARTSUPP = RelationSchema.of(
    "PARTSUPP",
    {
        "partkey": T.INT,
        "suppkey": T.INT,
        "availqty": T.INT,
        "supplycost": T.FLOAT,
        "comment": T.STR,
    },
    ["partkey", "suppkey"],
)

ORDERS = RelationSchema.of(
    "ORDERS",
    {
        "orderkey": T.INT,
        "custkey": T.INT,
        "orderstatus": T.STR,
        "totalprice": T.FLOAT,
        "orderdate": T.DATE,
        "orderpriority": T.STR,
        "clerk": T.STR,
        "shippriority": T.INT,
        "comment": T.STR,
    },
    ["orderkey"],
)

LINEITEM = RelationSchema.of(
    "LINEITEM",
    {
        "orderkey": T.INT,
        "partkey": T.INT,
        "suppkey": T.INT,
        "linenumber": T.INT,
        "quantity": T.FLOAT,
        "extendedprice": T.FLOAT,
        "discount": T.FLOAT,
        "tax": T.FLOAT,
        "returnflag": T.STR,
        "linestatus": T.STR,
        "shipdate": T.DATE,
        "commitdate": T.DATE,
        "receiptdate": T.DATE,
        "shipinstruct": T.STR,
        "shipmode": T.STR,
        "comment": T.STR,
    },
    ["orderkey", "linenumber"],
)

ALL_RELATIONS = (
    REGION,
    NATION,
    SUPPLIER,
    CUSTOMER,
    PART,
    PARTSUPP,
    ORDERS,
    LINEITEM,
)


def tpch_schema() -> DatabaseSchema:
    """The TPC-H database schema (8 relations, 61 attributes)."""
    return DatabaseSchema(ALL_RELATIONS)
