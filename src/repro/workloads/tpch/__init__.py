"""TPC-H workload: schema, dbgen and the 22 simplified queries."""

from repro.workloads.tpch.dbgen import TPCHGenerator, generate_tpch
from repro.workloads.tpch.queries import (
    EXPECTED_NON_SCAN_FREE,
    EXPECTED_SCAN_FREE,
    QUERIES,
    query_names,
    tpch_baav_schema,
)
from repro.workloads.tpch.schema import tpch_schema

__all__ = [
    "EXPECTED_NON_SCAN_FREE",
    "EXPECTED_SCAN_FREE",
    "QUERIES",
    "TPCHGenerator",
    "generate_tpch",
    "query_names",
    "tpch_baav_schema",
    "tpch_schema",
]
