"""Workloads: TPC-H, synthetic MOT / AIRCA, query and KV-load generators."""

from repro.workloads.generator import (
    GeneratedQuery,
    QueryGenerator,
    airca_generator,
    mot_generator,
)

__all__ = [
    "GeneratedQuery",
    "QueryGenerator",
    "airca_generator",
    "mot_generator",
]
