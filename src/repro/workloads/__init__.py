"""Workloads: TPC-H, synthetic MOT / AIRCA, query and KV-load generators."""

from repro.workloads.generator import (
    GeneratedQuery,
    QueryGenerator,
    airca_generator,
    mot_generator,
)
from repro.workloads.traffic import (
    QueryClass,
    TrafficDriver,
    TrafficReport,
    UpdateStream,
    airca_delay_writer,
    airca_traffic_mix,
)

__all__ = [
    "GeneratedQuery",
    "QueryClass",
    "QueryGenerator",
    "TrafficDriver",
    "TrafficReport",
    "UpdateStream",
    "airca_delay_writer",
    "airca_generator",
    "airca_traffic_mix",
    "mot_generator",
]
