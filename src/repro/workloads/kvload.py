"""KV read/write workloads — Exp-4 of §9.

Throughput is measured as **Tpms**: values processed per millisecond of
simulated time across all workers, exactly as the paper defines it ("we
did not use # of gets/puts processed because a get under BaaV retrieves
values involving multiple gets under TaaV").

* Read workload: bulk point gets. Under TaaV, one get returns one tuple;
  under BaaV, one get returns a whole block — higher Tpms.
* Write workload: bulk puts. Under BaaV a put on an existing key is a
  read-modify-write of the block — lower (but comparable) Tpms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baav.maintenance import Maintainer
from repro.baav.store import BaaVStore, KVInstance
from repro.kv.backends import BackendProfile
from repro.kv.cluster import KVCluster
from repro.kv.taav import TaaVRelation
from repro.relational.types import Row


@dataclass
class WorkloadResult:
    """Outcome of one bulk KV workload run."""

    kind: str               # "read" or "write"
    layout: str             # "taav" or "baav"
    operations: int         # gets or puts issued
    values: int             # logical values processed
    sim_time_ms: float
    storage_nodes: int

    @property
    def tpms(self) -> float:
        """Values processed per millisecond (the paper's throughput)."""
        if self.sim_time_ms <= 0:
            return 0.0
        return self.values / self.sim_time_ms


def _read_time(profile: BackendProfile, nodes: int, gets: int,
               values: int) -> float:
    return profile.get_cost_ms(gets, values) / max(1, nodes)


def _write_time(profile: BackendProfile, nodes: int, puts: int,
                values: int, fsyncs: int = 0) -> float:
    """Write service time; ``fsyncs`` adds the WAL barriers a durable
    cluster paid (they run on the nodes in parallel, like the puts)."""
    return (
        profile.put_cost_ms(puts, values) + profile.fsync_cost_ms(fsyncs)
    ) / max(1, nodes)


def _read_workload(
    cluster: KVCluster,
    layout: str,
    issue_reads,
    profile: BackendProfile,
) -> WorkloadResult:
    """Meter ``issue_reads()`` against ``cluster`` and price the diff.

    ``batched_get_cost_ms(rt, gets, values)`` degrades to the per-key
    ``get_cost_ms`` when every get is its own round trip, so one formula
    serves both the per-key and the coalesced workloads.
    """
    before = cluster.total_counters()
    issue_reads()
    after = cluster.total_counters()
    gets = after.gets - before.gets
    values = after.values_read - before.values_read
    round_trips = after.round_trips - before.round_trips
    time_ms = profile.batched_get_cost_ms(round_trips, gets, values) / max(
        1, cluster.num_live_nodes
    )
    return WorkloadResult(
        "read", layout, gets, values, time_ms, cluster.num_live_nodes
    )


def taav_read_workload(
    taav: TaaVRelation,
    keys: Sequence[Row],
    profile: BackendProfile,
) -> WorkloadResult:
    """Bulk point reads against the TaaV layout."""

    def issue():
        for key in keys:
            taav.get(tuple(key))

    return _read_workload(taav.cluster, "taav", issue, profile)


def baav_read_workload(
    instance: KVInstance,
    keys: Sequence[Row],
    profile: BackendProfile,
) -> WorkloadResult:
    """Bulk point reads against the BaaV layout (block per get)."""

    def issue():
        for key in keys:
            instance.get(tuple(key))

    return _read_workload(instance.cluster, "baav", issue, profile)


def taav_batched_read_workload(
    taav: TaaVRelation,
    keys: Sequence[Row],
    profile: BackendProfile,
    batch_size: int = 64,
) -> WorkloadResult:
    """Bulk point reads against TaaV, coalesced into multi-get batches.

    Same #get as :func:`taav_read_workload` on the same distinct keys,
    but one round trip per owning node per batch — the amortization the
    batched pipeline buys.
    """

    def issue():
        for start in range(0, len(keys), batch_size):
            taav.multi_get(
                [tuple(k) for k in keys[start:start + batch_size]]
            )

    return _read_workload(taav.cluster, "taav-batched", issue, profile)


def baav_batched_read_workload(
    instance: KVInstance,
    keys: Sequence[Row],
    profile: BackendProfile,
    batch_size: int = 64,
) -> WorkloadResult:
    """Bulk block reads against BaaV, coalesced into multi-get batches."""

    def issue():
        for start in range(0, len(keys), batch_size):
            instance.multi_get(
                [tuple(k) for k in keys[start:start + batch_size]]
            )

    return _read_workload(instance.cluster, "baav-batched", issue, profile)


def taav_write_workload(
    taav: TaaVRelation,
    rows: Sequence[Row],
    profile: BackendProfile,
) -> WorkloadResult:
    """Bulk inserts into the TaaV layout: one blind put per tuple.

    Simulated time prices the full replicated work (R× puts and values
    under ``replication_factor=R``), but the workload SIZE is logical —
    the inserted tuples' values — so replication honestly lowers write
    Tpms instead of cancelling out of it.
    """
    cluster = taav.cluster
    before = cluster.total_counters()
    fsyncs_before = cluster.wal_stats()["fsyncs"]
    for row in rows:
        taav.insert(tuple(row))
    after = cluster.total_counters()
    fsyncs = cluster.wal_stats()["fsyncs"] - fsyncs_before
    puts = after.puts - before.puts
    values = after.values_written - before.values_written
    logical_values = len(rows) * taav.schema.arity
    return WorkloadResult(
        "write", "taav", puts, logical_values,
        _write_time(
            profile, cluster.num_live_nodes, puts, values, fsyncs=fsyncs
        ),
        cluster.num_live_nodes,
    )


def baav_write_workload(
    store: BaaVStore,
    relation: str,
    rows: Sequence[Row],
    profile: BackendProfile,
) -> WorkloadResult:
    """Bulk inserts through the maintainer: read-modify-write per key."""
    cluster = store.cluster
    maintainer = Maintainer(store)
    before = cluster.total_counters()
    fsyncs_before = cluster.wal_stats()["fsyncs"]
    maintainer.insert(relation, [tuple(r) for r in rows])
    after = cluster.total_counters()
    fsyncs = cluster.wal_stats()["fsyncs"] - fsyncs_before
    puts = after.puts - before.puts
    # values *processed* includes re-encoded block contents
    values = after.values_written - before.values_written
    reads = after.gets - before.gets
    time_ms = _write_time(
        profile, cluster.num_live_nodes, puts, values, fsyncs=fsyncs
    ) + _read_time(profile, cluster.num_live_nodes, reads,
                   after.values_read - before.values_read)
    # logical workload size is the inserted tuples' values
    arity = store.schema.over_relation(relation)[0].relation.arity
    logical_values = len(rows) * arity
    return WorkloadResult(
        "write", "baav", puts, logical_values, time_ms, cluster.num_live_nodes
    )
