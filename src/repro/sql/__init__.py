"""SQL front-end: lexer, parser, AST, planner, algebra and executor."""

from repro.sql.ast import SelectStmt
from repro.sql.executor import execute, run
from repro.sql.minimize import minimize
from repro.sql.parser import parse
from repro.sql.planner import (
    BoundCompound,
    BoundQuery,
    bind,
    bind_any,
    build_plan,
    build_plan_any,
    plan_sql,
)
from repro.sql.spc import SPCAnalysis, analyze

__all__ = [
    "BoundCompound",
    "BoundQuery",
    "SPCAnalysis",
    "SelectStmt",
    "analyze",
    "bind",
    "bind_any",
    "build_plan",
    "build_plan_any",
    "execute",
    "minimize",
    "parse",
    "plan_sql",
    "run",
]
