"""SPC query minimization (``min(Q)`` of §5.2).

Conditions (II) and (III) of the paper are stated over the minimal
equivalent query. We implement the classic fold-based minimization of
conjunctive queries: repeatedly remove an atom ``a`` when mapping ``a`` to
another atom of the same relation (identity elsewhere) is a homomorphism
that fixes distinguished terms and constants. Single-atom folds applied to
a fixpoint compute the retract for the query shapes in our workloads
(self-join redundancy à la Example 5); the procedure is always *sound* —
it only removes genuinely redundant atoms — which is what the downstream
decision procedures need to stay correct.

Atoms carrying non-CQ predicates (ranges, LIKE, IN, disjunctions) are
frozen: their attributes are registered as residuals by the SPC analysis,
which anchors their terms and blocks both their removal and folds onto
atoms with different residual structure (a conservative, sound choice).

Queries whose WHERE clause is not purely conjunctive are returned as-is
(``minimize`` is the identity), again conservative and sound.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.sql.spc import SPCAnalysis, Term, _NO_CONST


def minimize(analysis: SPCAnalysis) -> SPCAnalysis:
    """Return the minimized SPC structure (a new object; input unchanged)."""
    if not analysis.conjunctive or analysis.unsatisfiable:
        return analysis
    minimized = _clone(analysis)
    changed = True
    while changed:
        changed = False
        for alias in sorted(minimized.atoms):
            target = _fold_target(minimized, alias)
            if target is not None:
                _remove_atom(minimized, alias)
                changed = True
                break
    return minimized


def _clone(analysis: SPCAnalysis) -> SPCAnalysis:
    clone = object.__new__(SPCAnalysis)
    clone.bound = analysis.bound
    clone.atoms = dict(analysis.atoms)
    clone.terms = [
        Term(t.term_id, set(t.attrs), t.constant, t.in_values)
        for t in analysis.terms
    ]
    clone._term_of = dict(analysis._term_of)
    clone.residuals = list(analysis.residuals)
    clone.residual_attrs = set(analysis.residual_attrs)
    clone.output_attrs = set(analysis.output_attrs)
    clone.conjunctive = analysis.conjunctive
    clone.unsatisfiable = analysis.unsatisfiable
    return clone


def _fold_target(cq: SPCAnalysis, alias: str) -> Optional[str]:
    """Find an atom onto which ``alias`` folds, or None."""
    if len(cq.atoms) <= 1:
        return None
    relation = cq.atoms[alias]
    # frozen: atoms with residual predicates cannot be removed; atoms owning
    # output attributes are kept too so that downstream X-attribute
    # bookkeeping (Conditions II/III) stays sound — folding them would be
    # semantically valid but would orphan the projection's references
    prefix = alias + "."
    if any(attr.startswith(prefix) for attr in cq.residual_attrs):
        return None
    if any(attr.startswith(prefix) for attr in cq.output_attrs):
        return None
    for candidate in sorted(cq.atoms):
        if candidate == alias or cq.atoms[candidate] != relation:
            continue
        if _fold_ok(cq, alias, candidate):
            return candidate
    return None


def _fold_ok(cq: SPCAnalysis, source: str, target: str) -> bool:
    """Check that mapping atom ``source`` onto ``target`` (identity on all
    other atoms) is a homomorphism."""
    prefix = source + "."
    theta: Dict[int, Optional[int]] = {}
    mentioned = sorted(cq.attrs_of_alias(source))
    for attr in mentioned:
        name = attr[len(prefix):]
        term = cq.term_of(attr)
        assert term is not None
        target_attr = f"{target}.{name}"
        target_term = cq.term_of(target_attr)

        if _anchored(cq, term, source):
            # term is pinned (shared with kept atoms, output or residual):
            # the image must be the very same term
            if target_term is None or target_term.term_id != term.term_id:
                return False
            continue

        if term.constant is not _NO_CONST:
            if target_term is None or target_term.constant != term.constant:
                return False
            # also record for local-consistency below
        # local existential term: all of its attributes (all on `source`)
        # must land in one target term
        known = theta.get(term.term_id, _UNSEEN)
        target_id = None if target_term is None else target_term.term_id
        if known is _UNSEEN:
            theta[term.term_id] = target_id
        elif known != target_id:
            return False
        if target_id is None and len(term.attrs) > 1:
            # an equality among source attributes cannot map onto fresh,
            # unconstrained target variables
            return False
    return True


_UNSEEN = object()


def _anchored(cq: SPCAnalysis, term: Term, source: str) -> bool:
    prefix = source + "."
    for attr in term.attrs:
        if not attr.startswith(prefix):
            return True
        if attr in cq.output_attrs or attr in cq.residual_attrs:
            return True
    return False


def _remove_atom(cq: SPCAnalysis, alias: str) -> None:
    prefix = alias + "."
    for attr in list(cq._term_of):
        if attr.startswith(prefix):
            term = cq.term_of(attr)
            if term is not None:
                term.attrs.discard(attr)
            del cq._term_of[attr]
    del cq.atoms[alias]


def minimal_aliases(analysis: SPCAnalysis) -> Set[str]:
    """Aliases surviving minimization."""
    return set(minimize(analysis).atoms)
