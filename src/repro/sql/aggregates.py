"""Aggregate accumulators with bag-multiplicity support.

KBA intermediates carry multiplicity counts (block compression, §8.2), so
every accumulator takes ``(value, count)``: adding value ``v`` with count
``c`` behaves like adding ``v`` ``c`` times.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.errors import ExecutionError


class Accumulator:
    """Base aggregate accumulator."""

    def add(self, value: object, count: int = 1) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class SumAcc(Accumulator):
    def __init__(self) -> None:
        self._total: Optional[float] = None

    def add(self, value: object, count: int = 1) -> None:
        if value is None:
            return
        increment = value * count
        self._total = increment if self._total is None else self._total + increment

    def result(self) -> object:
        return self._total


class CountAcc(Accumulator):
    """COUNT(expr): counts non-NULL values; COUNT(*) passes value=True."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: object, count: int = 1) -> None:
        if value is not None:
            self._count += count

    def result(self) -> object:
        return self._count


class AvgAcc(Accumulator):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: object, count: int = 1) -> None:
        if value is None:
            return
        self._total += value * count
        self._count += count

    def result(self) -> object:
        if self._count == 0:
            return None
        return self._total / self._count

    def merge_sum_count(self, total: float, count: int) -> None:
        """Merge pre-aggregated (sum, count) — used by block statistics."""
        self._total += total
        self._count += count


class MinAcc(Accumulator):
    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object, count: int = 1) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> object:
        return self._best


class MaxAcc(Accumulator):
    def __init__(self) -> None:
        self._best: object = None

    def add(self, value: object, count: int = 1) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> object:
        return self._best


class DistinctAcc(Accumulator):
    """Wrapper implementing DISTINCT: forwards each distinct value once."""

    def __init__(self, inner: Accumulator) -> None:
        self._inner = inner
        self._seen: Set[object] = set()

    def add(self, value: object, count: int = 1) -> None:
        if value is None or value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value, 1)

    def result(self) -> object:
        return self._inner.result()


_FACTORIES: dict = {
    "SUM": SumAcc,
    "COUNT": CountAcc,
    "AVG": AvgAcc,
    "MIN": MinAcc,
    "MAX": MaxAcc,
}


def make_accumulator(func: str, distinct: bool = False) -> Accumulator:
    """Create an accumulator for aggregate ``func`` (upper-case name)."""
    try:
        factory: Callable[[], Accumulator] = _FACTORIES[func]
    except KeyError:
        raise ExecutionError(f"unknown aggregate function {func!r}") from None
    acc = factory()
    if distinct:
        return DistinctAcc(acc)
    return acc
