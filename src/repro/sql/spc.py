"""Conjunctive (SPC) analysis of bound queries.

Zidian's decision procedures (§5.2 result preservability, §6.1 scan-free
checking) reason over the SPC structure of a query: its atoms (relation
occurrences), equality classes (terms), constant bindings, residual
(non-CQ) predicates and output attributes. :func:`analyze` extracts that
structure from a :class:`repro.sql.planner.BoundQuery`.

Terms follow the tableau view of CQs: every qualified attribute maps to a
term; equality conjuncts unify terms; a term may carry a constant. The
paper's ``X_R^Q`` ("attributes of R appearing in selection/join predicates
or the final projection") is exposed per alias via :meth:`SPCAnalysis.x_attrs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sql import ast
from repro.sql.planner import BoundQuery

_NO_CONST = object()


@dataclass
class Term:
    """An equivalence class of attributes, optionally bound to a constant."""

    term_id: int
    attrs: Set[str] = field(default_factory=set)
    constant: object = _NO_CONST
    # attributes bound to a finite set of constants (IN lists)
    in_values: Optional[Tuple[object, ...]] = None

    @property
    def has_constant(self) -> bool:
        return self.constant is not _NO_CONST

    @property
    def is_bound(self) -> bool:
        """Bound to finitely many constants (= or IN)."""
        return self.has_constant or self.in_values is not None

    def __repr__(self) -> str:
        const = f"={self.constant!r}" if self.has_constant else ""
        if self.in_values is not None:
            const += f" IN {self.in_values!r}"
        return f"Term({sorted(self.attrs)}{const})"


class SPCAnalysis:
    """SPC structure of a bound query."""

    def __init__(self, bound: BoundQuery) -> None:
        self.bound = bound
        #: alias -> relation name
        self.atoms: Dict[str, str] = dict(bound.alias_relations)
        self.terms: List[Term] = []
        self._term_of: Dict[str, int] = {}
        #: conjuncts that are not CQ equalities (ranges, LIKE, OR, ...)
        self.residuals: List[ast.Expr] = []
        #: attributes referenced by residual conjuncts
        self.residual_attrs: Set[str] = set()
        #: attributes needed above the SPC core (projection, group keys,
        #: aggregate arguments, HAVING, ORDER BY)
        self.output_attrs: Set[str] = set()
        #: True when the WHERE clause is a pure conjunction of CQ equalities
        #: and simple residuals (no OR / NOT at top level)
        self.conjunctive = True
        #: True when the query is unsatisfiable (term with two constants)
        self.unsatisfiable = False
        self._build()

    # -- construction -----------------------------------------------------

    def _term(self, attr: str) -> Term:
        term_id = self._term_of.get(attr)
        if term_id is None:
            term = Term(len(self.terms), {attr})
            self.terms.append(term)
            self._term_of[attr] = term.term_id
            return term
        return self.terms[term_id]

    def _unify(self, a: str, b: str) -> None:
        term_a = self._term(a)
        term_b = self._term(b)
        if term_a.term_id == term_b.term_id:
            return
        self._merge(term_a, term_b)

    def _merge(self, into: Term, other: Term) -> None:
        if other.has_constant:
            if into.has_constant and into.constant != other.constant:
                self.unsatisfiable = True
            elif not into.has_constant:
                into.constant = other.constant
        if other.in_values is not None and into.in_values is None:
            into.in_values = other.in_values
        into.attrs |= other.attrs
        for attr in other.attrs:
            self._term_of[attr] = into.term_id
        other.attrs = set()

    def _bind_constant(self, attr: str, value: object) -> None:
        term = self._term(attr)
        if term.has_constant and term.constant != value:
            self.unsatisfiable = True
        term.constant = value

    def _bind_in(self, attr: str, values: Sequence[object]) -> None:
        term = self._term(attr)
        if term.in_values is None:
            term.in_values = tuple(values)

    def _build(self) -> None:
        stmt = self.bound.stmt

        for conj in ast.conjuncts(stmt.where):
            self._classify(conj)

        # every attribute mentioned anywhere gets a term
        for item in stmt.items:
            self._note_output(item.expr)
        for column in stmt.group_by:
            self._note_output(column)
        if stmt.having is not None:
            self._note_output(stmt.having)
        for order in stmt.order_by:
            self._note_output(order.expr)

    def _note_output(self, expr: ast.Expr) -> None:
        for attr in expr.columns():
            if "." in attr:  # skip references to derived output columns
                self._term(attr)
                self.output_attrs.add(attr)

    def _classify(self, conj: ast.Expr) -> None:
        if isinstance(conj, ast.Cmp) and conj.op == "=":
            left, right = conj.left, conj.right
            if isinstance(left, ast.Column) and isinstance(right, ast.Column):
                self._unify(left.name, right.name)
                return
            if isinstance(left, ast.Column) and isinstance(right, ast.Lit):
                self._bind_constant(left.name, right.value)
                return
            if isinstance(left, ast.Lit) and isinstance(right, ast.Column):
                self._bind_constant(right.name, left.value)
                return
        if isinstance(conj, ast.InList) and isinstance(conj.operand, ast.Column):
            self._bind_in(conj.operand.name, conj.values)
            self._add_residual(conj)
            return
        if isinstance(conj, (ast.Or, ast.Not)):
            self.conjunctive = False
        self._add_residual(conj)

    def _add_residual(self, conj: ast.Expr) -> None:
        self.residuals.append(conj)
        for attr in conj.columns():
            if "." in attr:
                self._term(attr)
                self.residual_attrs.add(attr)

    # -- accessors ----------------------------------------------------------

    def term_of(self, attr: str) -> Optional[Term]:
        term_id = self._term_of.get(attr)
        return None if term_id is None else self.terms[term_id]

    def live_terms(self) -> List[Term]:
        return [t for t in self.terms if t.attrs]

    def alias_of(self, attr: str) -> str:
        return attr.split(".", 1)[0]

    def attrs_of_alias(self, alias: str) -> Set[str]:
        prefix = alias + "."
        return {a for a in self._term_of if a.startswith(prefix)}

    def constant_bound_attrs(self) -> Set[str]:
        """The paper's X_C^Q plus IN-bound attributes (finitely many gets)."""
        out: Set[str] = set()
        for term in self.live_terms():
            if term.is_bound:
                out |= term.attrs
        return out

    def x_attrs(self, alias: str) -> Set[str]:
        """The paper's X_R^Q for the atom ``alias``.

        An attribute of the alias is in X when it occurs in the final
        projection (or group keys / aggregate arguments / HAVING / ORDER),
        in a residual predicate, or in an equality with another attribute
        or a constant (i.e. its term has more members or is bound).
        """
        out: Set[str] = set()
        prefix = alias + "."
        for attr in self.attrs_of_alias(alias):
            if not attr.startswith(prefix):
                continue
            if attr in self.output_attrs or attr in self.residual_attrs:
                out.add(attr)
                continue
            term = self.term_of(attr)
            if term is not None and (term.is_bound or len(term.attrs) > 1):
                out.add(attr)
        return out

    def join_edges(self) -> List[Tuple[str, str]]:
        """Pairs of aliases connected by some equality term."""
        edges: Set[Tuple[str, str]] = set()
        for term in self.live_terms():
            aliases = sorted({self.alias_of(a) for a in term.attrs})
            for i, left in enumerate(aliases):
                for right in aliases[i + 1:]:
                    edges.add((left, right))
        return sorted(edges)

    def describe(self) -> str:
        lines = [f"atoms: {self.atoms}"]
        for term in self.live_terms():
            lines.append(f"  {term}")
        if self.residuals:
            lines.append(f"residuals: {[str(r) for r in self.residuals]}")
        lines.append(f"outputs: {sorted(self.output_attrs)}")
        return "\n".join(lines)


def analyze(bound: BoundQuery) -> SPCAnalysis:
    """Extract the SPC structure of a bound query."""
    return SPCAnalysis(bound)
