"""Reference in-memory executor for RA plans.

This executor runs directly on a :class:`repro.relational.Database` with no
KV storage involved. It is the *golden* semantics: every other execution
path (baseline SQL-over-NoSQL, Zidian KBA plans, parallel variants) is
tested for bag-equivalence against it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttrType, Row
from repro.sql import algebra, ast
from repro.sql.aggregates import make_accumulator


class Table:
    """An intermediate result: attribute names plus rows."""

    __slots__ = ("attrs", "rows")

    def __init__(self, attrs: Sequence[str], rows: List[Row]) -> None:
        self.attrs = tuple(attrs)
        self.rows = rows

    def env(self, row: Row) -> dict:
        return dict(zip(self.attrs, row))

    def position(self, attr: str) -> int:
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise ExecutionError(
                f"attribute {attr!r} not in {self.attrs}"
            ) from None


def unique_names(names) -> list:
    """Deduplicate output column names ("a", "a" -> "a", "a#2")."""
    seen = {}
    out = []
    for name in names:
        count = seen.get(name, 0) + 1
        seen[name] = count
        out.append(name if count == 1 else f"{name}#{count}")
    return out


def execute(plan: algebra.PlanNode, database: Database) -> Relation:
    """Execute ``plan`` against ``database`` and return a Relation."""
    table = run(plan, database)
    schema = RelationSchema(
        "result",
        [Attribute(name, AttrType.STR) for name in unique_names(table.attrs)],
    )
    return Relation(schema, table.rows)


def run(plan: algebra.PlanNode, database: Database) -> Table:
    """Execute ``plan`` and return the raw :class:`Table`."""
    handler = _HANDLERS.get(type(plan))
    if handler is None:
        raise ExecutionError(f"no handler for plan node {type(plan).__name__}")
    return handler(plan, database)


def _run_scan(plan: algebra.ScanNode, database: Database) -> Table:
    relation = database.relation(plan.relation)
    attrs = [f"{plan.alias}.{a}" for a in relation.schema.attribute_names]
    return Table(attrs, list(relation.rows))


def _run_select(plan: algebra.SelectNode, database: Database) -> Table:
    child = run(plan.child, database)
    predicate = plan.predicate
    attrs = child.attrs
    rows = [
        row for row in child.rows if predicate.eval(dict(zip(attrs, row)))
    ]
    return Table(attrs, rows)


def _run_project(plan: algebra.ProjectNode, database: Database) -> Table:
    child = run(plan.child, database)
    attrs = child.attrs
    names = [name for name, _ in plan.items]
    exprs = [expr for _, expr in plan.items]
    # Fast path: pure column projection avoids dict envs.
    if all(isinstance(e, ast.Column) for e in exprs):
        positions = [child.position(e.name) for e in exprs]  # type: ignore[attr-defined]
        rows = [tuple(row[p] for p in positions) for row in child.rows]
        return Table(names, rows)
    rows = []
    for row in child.rows:
        env = dict(zip(attrs, row))
        rows.append(tuple(expr.eval(env) for expr in exprs))
    return Table(names, rows)


def _run_join(plan: algebra.JoinNode, database: Database) -> Table:
    left = run(plan.left, database)
    right = run(plan.right, database)
    return join_tables(left, right, plan.equi, plan.residual)


def join_tables(
    left: Table,
    right: Table,
    equi: Sequence[Tuple[str, str]],
    residual: Optional[ast.Expr] = None,
) -> Table:
    """Hash join of two tables on ``equi`` with an optional residual filter."""
    attrs = left.attrs + right.attrs
    if not equi:
        rows = [l + r for l in left.rows for r in right.rows]
    else:
        left_pos = [left.position(l) for l, _ in equi]
        right_pos = [right.position(r) for _, r in equi]
        index: Dict[Row, List[Row]] = defaultdict(list)
        for row in right.rows:
            index[tuple(row[p] for p in right_pos)].append(row)
        rows = []
        for lrow in left.rows:
            key = tuple(lrow[p] for p in left_pos)
            if None in key:
                continue
            for rrow in index.get(key, ()):
                rows.append(lrow + rrow)
    if residual is not None:
        rows = [row for row in rows if residual.eval(dict(zip(attrs, row)))]
    return Table(attrs, rows)


def _run_cross(plan: algebra.CrossNode, database: Database) -> Table:
    left = run(plan.left, database)
    right = run(plan.right, database)
    return join_tables(left, right, [])


def _run_groupby(plan: algebra.GroupByNode, database: Database) -> Table:
    child = run(plan.child, database)
    return group_table(child, plan.keys, plan.key_names, plan.aggs)


def group_table(
    child: Table,
    keys: Sequence[str],
    key_names: Sequence[str],
    aggs: Sequence[algebra.AggSpec],
) -> Table:
    """Group ``child`` by ``keys`` computing ``aggs``; bag semantics."""
    key_pos = [child.position(k) for k in keys]
    groups: Dict[Row, List] = {}
    attrs = child.attrs
    for row in child.rows:
        key = tuple(row[p] for p in key_pos)
        accs = groups.get(key)
        if accs is None:
            accs = [make_accumulator(a.func, a.distinct) for a in aggs]
            groups[key] = accs
        env = None
        for spec, acc in zip(aggs, accs):
            if spec.arg is None:
                acc.add(True)
            else:
                if env is None:
                    env = dict(zip(attrs, row))
                acc.add(spec.arg.eval(env))
    if not keys and not groups:
        # Global aggregate of an empty input still yields one row.
        groups[()] = [make_accumulator(a.func, a.distinct) for a in aggs]
    rows = [
        key + tuple(acc.result() for acc in accs)
        for key, accs in groups.items()
    ]
    return Table(tuple(key_names) + tuple(a.name for a in aggs), rows)


def _run_distinct(plan: algebra.DistinctNode, database: Database) -> Table:
    child = run(plan.child, database)
    seen = set()
    rows = []
    for row in child.rows:
        if row not in seen:
            seen.add(row)
            rows.append(row)
    return Table(child.attrs, rows)


def _run_orderby(plan: algebra.OrderByNode, database: Database) -> Table:
    child = run(plan.child, database)
    rows = sort_rows(child, plan.keys)
    return Table(child.attrs, rows)


def sort_rows(
    table: Table, keys: Sequence[Tuple[ast.Expr, bool]]
) -> List[Row]:
    """Stable multi-key sort honoring ASC/DESC and NULLs-last."""
    rows = list(table.rows)
    attrs = table.attrs
    for expr, ascending in reversed(list(keys)):
        def sort_key(row: Row):
            value = expr.eval(dict(zip(attrs, row)))
            return (value is None, value)
        rows.sort(key=sort_key, reverse=not ascending)
    return rows


def _run_limit(plan: algebra.LimitNode, database: Database) -> Table:
    child = run(plan.child, database)
    return Table(child.attrs, child.rows[: plan.limit])


def _run_union(plan: algebra.UnionNode, database: Database) -> Table:
    left = run(plan.left, database)
    right = run(plan.right, database)
    return Table(left.attrs, left.rows + right.rows)


def _run_difference(plan: algebra.DifferenceNode, database: Database) -> Table:
    left = run(plan.left, database)
    right = run(plan.right, database)
    remaining = Counter(right.rows)
    rows = []
    for row in left.rows:
        if remaining.get(row, 0) > 0:
            remaining[row] -= 1
        else:
            rows.append(row)
    return Table(left.attrs, rows)


def _run_table(plan: algebra.TableNode, database: Database) -> Table:
    return plan.table  # type: ignore[return-value]


_HANDLERS = {
    algebra.TableNode: _run_table,
    algebra.ScanNode: _run_scan,
    algebra.SelectNode: _run_select,
    algebra.ProjectNode: _run_project,
    algebra.JoinNode: _run_join,
    algebra.CrossNode: _run_cross,
    algebra.GroupByNode: _run_groupby,
    algebra.DistinctNode: _run_distinct,
    algebra.OrderByNode: _run_orderby,
    algebra.LimitNode: _run_limit,
    algebra.UnionNode: _run_union,
    algebra.DifferenceNode: _run_difference,
}
