"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "LIMIT", "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE",
    "UNION", "EXCEPT", "ALL",
    "ASC", "DESC", "JOIN", "INNER", "ON", "IS", "NULL", "TRUE", "FALSE",
    "COUNT", "SUM", "AVG", "MIN", "MAX",
}

PUNCT = {
    "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-",
    "/", ".",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: object
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def is_punct(self, *symbols: str) -> bool:
        return self.type is TokenType.PUNCT and self.value in symbols

    def __str__(self) -> str:
        return f"{self.value}"


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        two = text[i:i + 2]
        if two in PUNCT:
            symbol = "<>" if two == "!=" else two
            tokens.append(Token(TokenType.PUNCT, symbol, i))
            i += 2
            continue
        if ch in PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, None, n))
    return tokens


def _read_string(text: str, i: int) -> tuple:
    # i points at the opening quote
    out: List[str] = []
    i += 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", i)


def _read_number(text: str, i: int) -> tuple:
    start = i
    n = len(text)
    seen_dot = False
    while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            # a trailing dot followed by non-digit belongs to punctuation
            if i + 1 >= n or not text[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    raw = text[start:i]
    value = float(raw) if "." in raw else int(raw)
    return value, i
