"""AST for the supported SQL subset.

The subset covers what the paper's evaluation needs: select-project-join
queries with conjunctive (and disjunctive) predicates, arithmetic in the
select list, group-by aggregates (SUM/COUNT/AVG/MIN/MAX), HAVING, ORDER BY,
LIMIT, DISTINCT, IN-lists, BETWEEN and LIKE.

Column references are created unqualified or ``alias.attr`` by the parser;
the planner *binds* them, rewriting every reference to its qualified
``alias.attr`` form in place of ambiguity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ExecutionError, SQLAnalysisError

Env = dict  # qualified attribute name -> value


class Expr:
    """Base class of scalar expressions."""

    def eval(self, env: Env) -> object:
        raise NotImplementedError

    def columns(self) -> Set[str]:
        """Qualified column names referenced by this expression."""
        out: Set[str] = set()
        self._collect(out)
        return out

    def _collect(self, out: Set[str]) -> None:
        raise NotImplementedError

    def contains_aggregate(self) -> bool:
        return any(isinstance(e, AggCall) for e in walk(self))

    def children(self) -> Tuple["Expr", ...]:
        return ()


def walk(expr: Expr) -> Iterable[Expr]:
    """Yield ``expr`` and all its descendants."""
    yield expr
    for child in expr.children():
        yield from walk(child)


@dataclass
class Column(Expr):
    """A column reference; ``name`` is qualified after binding."""

    name: str

    def eval(self, env: Env) -> object:
        try:
            return env[self.name]
        except KeyError:
            raise ExecutionError(f"unbound column {self.name!r}") from None

    def _collect(self, out: Set[str]) -> None:
        out.add(self.name)

    def __str__(self) -> str:
        return self.name


@dataclass
class Lit(Expr):
    """A literal constant."""

    value: object

    def eval(self, env: Env) -> object:
        return self.value

    def _collect(self, out: Set[str]) -> None:
        pass

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass
class Arith(Expr):
    """Binary arithmetic: ``+ - * /``. NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        if left is None or right is None:
            return None
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                return None
            return left / right
        raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def _collect(self, out: Set[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def eval(self, env: Env) -> object:
        value = self.operand.eval(env)
        return None if value is None else -value

    def _collect(self, out: Set[str]) -> None:
        self.operand._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"(-{self.operand})"


_CMP_OPS = {"=", "<>", "<", "<=", ">", ">="}


@dataclass
class Cmp(Expr):
    """Comparison; SQL three-valued logic collapsed to False on NULL."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise SQLAnalysisError(f"unknown comparison operator {self.op!r}")

    def eval(self, env: Env) -> object:
        left = self.left.eval(env)
        right = self.right.eval(env)
        if left is None or right is None:
            return False
        if self.op == "=":
            return left == right
        if self.op == "<>":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def _collect(self, out: Set[str]) -> None:
        self.left._collect(out)
        self.right._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass
class And(Expr):
    items: List[Expr]

    def eval(self, env: Env) -> object:
        return all(item.eval(env) for item in self.items)

    def _collect(self, out: Set[str]) -> None:
        for item in self.items:
            item._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.items)

    def __str__(self) -> str:
        return " AND ".join(f"({i})" for i in self.items)


@dataclass
class Or(Expr):
    items: List[Expr]

    def eval(self, env: Env) -> object:
        return any(item.eval(env) for item in self.items)

    def _collect(self, out: Set[str]) -> None:
        for item in self.items:
            item._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return tuple(self.items)

    def __str__(self) -> str:
        return " OR ".join(f"({i})" for i in self.items)


@dataclass
class Not(Expr):
    operand: Expr

    def eval(self, env: Env) -> object:
        return not self.operand.eval(env)

    def _collect(self, out: Set[str]) -> None:
        self.operand._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass
class InList(Expr):
    """``expr IN (v1, ..., vn)`` over literal values."""

    operand: Expr
    values: List[object]

    def eval(self, env: Env) -> object:
        value = self.operand.eval(env)
        if value is None:
            return False
        return value in self.values

    def _collect(self, out: Set[str]) -> None:
        self.operand._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        inner = ", ".join(str(Lit(v)) for v in self.values)
        return f"{self.operand} IN ({inner})"


@dataclass
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive)."""

    operand: Expr
    low: Expr
    high: Expr

    def eval(self, env: Env) -> object:
        value = self.operand.eval(env)
        low = self.low.eval(env)
        high = self.high.eval(env)
        if value is None or low is None or high is None:
            return False
        return low <= value <= high

    def _collect(self, out: Set[str]) -> None:
        self.operand._collect(out)
        self.low._collect(out)
        self.high._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclass
class Like(Expr):
    """``expr LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expr
    pattern: str
    _regex: Optional[re.Pattern] = field(default=None, repr=False, compare=False)

    def _compiled(self) -> re.Pattern:
        if self._regex is None:
            regex = re.escape(self.pattern).replace("%", ".*").replace("_", ".")
            self._regex = re.compile(f"^{regex}$", re.DOTALL)
        return self._regex

    def eval(self, env: Env) -> object:
        value = self.operand.eval(env)
        if value is None:
            return False
        return bool(self._compiled().match(str(value)))

    def _collect(self, out: Set[str]) -> None:
        self.operand._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.operand} LIKE '{self.pattern}'"


AGG_FUNCS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


@dataclass
class AggCall(Expr):
    """An aggregate call; ``arg=None`` means ``COUNT(*)``."""

    func: str
    arg: Optional[Expr]
    distinct: bool = False

    def __post_init__(self) -> None:
        self.func = self.func.upper()
        if self.func not in AGG_FUNCS:
            raise SQLAnalysisError(f"unknown aggregate {self.func!r}")
        if self.arg is None and self.func != "COUNT":
            raise SQLAnalysisError(f"{self.func}(*) is not valid")

    def eval(self, env: Env) -> object:
        # Aggregates are evaluated by the group-by operator, which binds
        # their result under their output name; direct eval looks it up.
        try:
            return env[str(self)]
        except KeyError:
            raise ExecutionError(
                f"aggregate {self} evaluated outside GROUP BY"
            ) from None

    def _collect(self, out: Set[str]) -> None:
        if self.arg is not None:
            self.arg._collect(out)

    def children(self) -> Tuple[Expr, ...]:
        return (self.arg,) if self.arg is not None else ()

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


# --- statements ---------------------------------------------------------


@dataclass
class TableRef:
    """``relation [AS] alias`` in the FROM clause."""

    relation: str
    alias: str

    def __str__(self) -> str:
        if self.relation == self.alias:
            return self.relation
        return f"{self.relation} AS {self.alias}"


@dataclass
class SelectItem:
    """One item of the select list."""

    expr: Expr
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Column):
            return self.expr.name.split(".")[-1]
        return str(self.expr)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.expr} {'ASC' if self.ascending else 'DESC'}"


@dataclass
class SelectStmt:
    """A parsed SELECT statement."""

    items: List[SelectItem]
    tables: List[TableRef]
    where: Optional[Expr] = None
    group_by: List[Column] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    star: bool = False

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append("*" if self.star else ", ".join(str(i) for i in self.items))
        parts.append("FROM")
        parts.append(", ".join(str(t) for t in self.tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass
class CompoundSelect:
    """``left UNION ALL right`` or ``left EXCEPT ALL right``.

    Bag semantics only (ALL is mandatory), matching KBA's ∪ and −.
    """

    op: str  # "union" | "except"
    left: "Union[SelectStmt, CompoundSelect]"
    right: SelectStmt

    def __str__(self) -> str:
        keyword = "UNION ALL" if self.op == "union" else "EXCEPT ALL"
        return f"{self.left} {keyword} {self.right}"


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten an expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: List[Expr] = []
        for item in expr.items:
            out.extend(conjuncts(item))
        return out
    return [expr]


def make_and(items: Sequence[Expr]) -> Optional[Expr]:
    """Combine predicates with AND; None for the empty list."""
    items = [i for i in items if i is not None]
    if not items:
        return None
    if len(items) == 1:
        return items[0]
    return And(list(items))
