"""Recursive-descent parser producing :mod:`repro.sql.ast` trees.

Grammar (informal)::

    select   := SELECT [DISTINCT] items FROM tables [WHERE expr]
                [GROUP BY cols] [HAVING expr] [ORDER BY order_items]
                [LIMIT int]
    items    := '*' | item (',' item)*
    item     := expr [[AS] ident]
    tables   := table (',' table)* | table (JOIN table ON expr)*
    table    := ident [[AS] ident]
    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := [NOT] predicate
    predicate:= additive [cmp additive | BETWEEN .. AND .. | IN (...)
                | LIKE string | IS [NOT] NULL]
    additive := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/') unary)*
    unary    := ['-'] primary
    primary  := literal | aggregate | column | '(' expr ')'

Explicit ``JOIN ... ON`` clauses are normalized into the table list plus
WHERE conjuncts, so downstream analysis sees one canonical form.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


def parse(text: str):
    """Parse a SELECT statement, possibly compound (UNION/EXCEPT ALL).

    Returns :class:`ast.SelectStmt` or :class:`ast.CompoundSelect`.
    """
    parser = _Parser(tokenize(text))
    stmt = parser.parse_compound()
    parser.expect_eof()
    return stmt


def parse_select(text: str) -> ast.SelectStmt:
    """Parse a single (non-compound) SELECT statement."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_select()
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(f"{message}, found {token.value!r}", token.position)

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise self._error(f"expected {name}")
        return self._advance()

    def _expect_punct(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_punct(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _accept_punct(self, *symbols: str) -> Optional[Token]:
        if self._peek().is_punct(*symbols):
            return self._advance()
        return None

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected identifier")
        self._advance()
        return str(token.value)

    # -- statement ----------------------------------------------------------

    def expect_eof(self) -> None:
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    def parse_compound(self):
        stmt = self.parse_select()
        while self._peek().is_keyword("UNION", "EXCEPT"):
            op = "union" if self._advance().value == "UNION" else "except"
            if not self._accept_keyword("ALL"):
                raise self._error(
                    "only bag semantics are supported: write UNION ALL "
                    "or EXCEPT ALL"
                )
            right = self.parse_select()
            stmt = ast.CompoundSelect(op, stmt, right)
        return stmt

    def parse_select(self, top_level: bool = False) -> ast.SelectStmt:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None

        star = False
        items: List[ast.SelectItem] = []
        if self._accept_punct("*"):
            star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())

        self._expect_keyword("FROM")
        tables, join_conds = self._parse_from()

        where: Optional[ast.Expr] = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()
        if join_conds:
            where = ast.make_and(join_conds + ([where] if where else []))

        group_by: List[ast.Column] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_column())
            while self._accept_punct(","):
                group_by.append(self._parse_column())

        having: Optional[ast.Expr] = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expr()

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise self._error("expected integer after LIMIT")
            self._advance()
            limit = int(token.value)

        return ast.SelectStmt(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            star=star,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        expr = self._parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return ast.SelectItem(expr, alias)

    def _parse_from(self):
        tables = [self._parse_table_ref()]
        join_conds: List[ast.Expr] = []
        while True:
            if self._accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            if self._peek().is_keyword("JOIN", "INNER"):
                self._accept_keyword("INNER")
                self._expect_keyword("JOIN")
                tables.append(self._parse_table_ref())
                self._expect_keyword("ON")
                join_conds.append(self._parse_expr())
                continue
            break
        return tables, join_conds

    def _parse_table_ref(self) -> ast.TableRef:
        relation = self._expect_ident()
        alias = relation
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return ast.TableRef(relation, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        items = [left]
        while self._accept_keyword("OR"):
            items.append(self._parse_and())
        return items[0] if len(items) == 1 else ast.Or(items)

    def _parse_and(self) -> ast.Expr:
        items = [self._parse_not()]
        while self._accept_keyword("AND"):
            items.append(self._parse_not())
        return items[0] if len(items) == 1 else ast.And(items)

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.is_punct("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            right = self._parse_additive()
            return ast.Cmp(str(token.value), left, right)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_literal_value()]
            while self._accept_punct(","):
                values.append(self._parse_literal_value())
            self._expect_punct(")")
            return ast.InList(left, values)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._peek()
            if pattern.type is not TokenType.STRING:
                raise self._error("expected string pattern after LIKE")
            self._advance()
            return ast.Like(left, str(pattern.value))
        if token.is_keyword("NOT"):
            # NOT BETWEEN / NOT IN / NOT LIKE
            next_token = self._tokens[self._pos + 1]
            if next_token.is_keyword("BETWEEN", "IN", "LIKE"):
                self._advance()  # consume NOT
                return ast.Not(self._parse_predicate_tail(left))
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            check: ast.Expr = _IsNull(left)
            return ast.Not(check) if negated else check
        return left

    def _parse_predicate_tail(self, left: ast.Expr) -> ast.Expr:
        token = self._peek()
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_literal_value()]
            while self._accept_punct(","):
                values.append(self._parse_literal_value())
            self._expect_punct(")")
            return ast.InList(left, values)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._peek()
            if pattern.type is not TokenType.STRING:
                raise self._error("expected string pattern after LIKE")
            self._advance()
            return ast.Like(left, str(pattern.value))
        raise self._error("expected BETWEEN, IN or LIKE after NOT")

    def _parse_literal_value(self) -> object:
        token = self._peek()
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            self._advance()
            return token.value
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.is_keyword("NULL"):
            self._advance()
            return None
        if token.is_punct("-"):
            self._advance()
            number = self._peek()
            if number.type is not TokenType.NUMBER:
                raise self._error("expected number after '-'")
            self._advance()
            return -number.value
        raise self._error("expected literal")

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_punct("+", "-")
            if token is None:
                return left
            right = self._parse_multiplicative()
            left = ast.Arith(str(token.value), left, right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._accept_punct("*", "/")
            if token is None:
                return left
            right = self._parse_unary()
            left = ast.Arith(str(token.value), left, right)

    def _parse_unary(self) -> ast.Expr:
        if self._accept_punct("-"):
            return ast.Neg(self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self._advance()
            return ast.Lit(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Lit(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Lit(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Lit(None)
        if token.is_keyword(*ast.AGG_FUNCS):
            return self._parse_aggregate()
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_column()
        raise self._error("expected expression")

    def _parse_aggregate(self) -> ast.Expr:
        func = str(self._advance().value)
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT") is not None
        if self._accept_punct("*"):
            arg: Optional[ast.Expr] = None
        else:
            arg = self._parse_expr()
        self._expect_punct(")")
        return ast.AggCall(func, arg, distinct)

    def _parse_column(self) -> ast.Column:
        first = self._expect_ident()
        if self._accept_punct("."):
            second = self._expect_ident()
            return ast.Column(f"{first}.{second}")
        return ast.Column(first)


class _IsNull(ast.Expr):
    """Internal IS NULL predicate."""

    def __init__(self, operand: ast.Expr) -> None:
        self.operand = operand

    def eval(self, env: ast.Env) -> object:
        return self.operand.eval(env) is None

    def _collect(self, out) -> None:
        self.operand._collect(out)

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.operand} IS NULL"
