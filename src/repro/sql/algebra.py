"""Logical relational-algebra plan nodes (RAaggr, §5.2).

A plan is a tree of :class:`PlanNode`. Every node knows its output
attribute names: qualified ``alias.attr`` strings below the first
projection/aggregation, plain output names above it. Plans are executed by
:mod:`repro.sql.executor` (reference, in-memory) and translated by Zidian
into KBA plans (:mod:`repro.core.plangen`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PlanError
from repro.sql import ast


class PlanNode:
    """Base class of logical plan nodes."""

    output: Tuple[str, ...] = ()

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Leaf: scan relation ``relation`` under alias ``alias``."""

    relation: str
    alias: str
    output: Tuple[str, ...] = ()

    def _label(self) -> str:
        return f"Scan({self.relation} AS {self.alias})"


@dataclass
class SelectNode(PlanNode):
    """σ: filter rows by a predicate."""

    child: PlanNode
    predicate: ast.Expr
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.output:
            self.output = self.child.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Select({self.predicate})"


@dataclass
class ProjectNode(PlanNode):
    """π with computation: items are (output name, expression)."""

    child: PlanNode
    items: List[Tuple[str, ast.Expr]]
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = tuple(name for name, _ in self.items)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        inner = ", ".join(f"{e} AS {n}" for n, e in self.items)
        return f"Project({inner})"


@dataclass
class JoinNode(PlanNode):
    """Equi-join with an optional residual predicate."""

    left: PlanNode
    right: PlanNode
    equi: List[Tuple[str, str]]  # (left attr, right attr) pairs
    residual: Optional[ast.Expr] = None
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = tuple(self.left.output) + tuple(self.right.output)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _label(self) -> str:
        conds = " AND ".join(f"{l} = {r}" for l, r in self.equi) or "TRUE"
        if self.residual is not None:
            conds += f" AND {self.residual}"
        return f"Join({conds})"


@dataclass
class CrossNode(PlanNode):
    """Cartesian product (joins with no equi condition)."""

    left: PlanNode
    right: PlanNode
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = tuple(self.left.output) + tuple(self.right.output)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class AggSpec:
    """One aggregate of a group-by: output name, function, argument."""

    name: str
    func: str
    arg: Optional[ast.Expr]  # None for COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner}) AS {self.name}"


@dataclass
class GroupByNode(PlanNode):
    """group_by(Q, X, agg1(V1), ..., aggm(Vm)) of RAaggr (§5.2).

    ``keys`` are input attribute names; ``key_names`` their output names.
    """

    child: PlanNode
    keys: List[str]
    key_names: List[str]
    aggs: List[AggSpec]
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.key_names):
            raise PlanError("keys and key_names must align")
        self.output = tuple(self.key_names) + tuple(a.name for a in self.aggs)

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"GroupBy([{', '.join(self.keys)}]; {aggs})"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class OrderByNode(PlanNode):
    child: PlanNode
    keys: List[Tuple[ast.Expr, bool]]  # (expression over output, ascending)
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(
            f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys
        )
        return f"OrderBy({keys})"


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Limit({self.limit})"


@dataclass
class UnionNode(PlanNode):
    """Bag union (UNION ALL)."""

    left: PlanNode
    right: PlanNode
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.left.output) != len(self.right.output):
            raise PlanError("UNION operands must have equal arity")
        self.output = self.left.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class DifferenceNode(PlanNode):
    """Bag difference (EXCEPT ALL)."""

    left: PlanNode
    right: PlanNode
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.left.output) != len(self.right.output):
            raise PlanError("EXCEPT operands must have equal arity")
        self.output = self.left.output

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass
class TableNode(PlanNode):
    """Leaf wrapping a pre-computed table (Zidian's KBA core substitution).

    ``table`` is a :class:`repro.sql.executor.Table`; typed loosely here to
    avoid a circular import.
    """

    table: object
    output: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.output = tuple(self.table.attrs)

    def _label(self) -> str:
        return f"Table({len(self.output)} cols)"


def leaves(plan: PlanNode) -> List[ScanNode]:
    """All scan leaves of a plan, left to right."""
    if isinstance(plan, ScanNode):
        return [plan]
    out: List[ScanNode] = []
    for child in plan.children():
        out.extend(leaves(child))
    return out
