"""Name binding and logical plan construction.

``bind`` resolves every column reference of a parsed statement to its
qualified ``alias.attr`` form (rewriting the AST in place) and returns a
:class:`BoundQuery`. ``build_plan`` turns a bound query into an RA plan:
selections pushed below joins, a greedy left-deep join order driven by the
equality graph, then group-by / having / order / limit / projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SQLAnalysisError, UnsupportedSQLError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.sql import algebra, ast
from repro.sql.parser import parse


@dataclass
class BoundQuery:
    """A parsed statement with all column references qualified."""

    stmt: ast.SelectStmt
    schema: DatabaseSchema
    aliases: Dict[str, RelationSchema]  # alias -> relation schema

    @property
    def alias_relations(self) -> Dict[str, str]:
        return {a: s.name for a, s in self.aliases.items()}

    def attr_alias(self, qualified: str) -> str:
        return qualified.split(".", 1)[0]


def bind(stmt: ast.SelectStmt, schema: DatabaseSchema) -> BoundQuery:
    """Resolve names in ``stmt`` against ``schema`` (mutates the AST)."""
    aliases: Dict[str, RelationSchema] = {}
    for table in stmt.tables:
        if table.alias in aliases:
            raise SQLAnalysisError(f"duplicate alias {table.alias!r}")
        aliases[table.alias] = schema.relation(table.relation)

    binder = _Binder(aliases)
    if stmt.star:
        stmt.items = [
            ast.SelectItem(ast.Column(f"{alias}.{attr}"), None)
            for alias, rel in aliases.items()
            for attr in rel.attribute_names
        ]
        stmt.star = False

    for item in stmt.items:
        binder.bind_expr(item.expr)
    if stmt.where is not None:
        binder.bind_expr(stmt.where)
    for column in stmt.group_by:
        binder.bind_expr(column)

    output_names = [item.output_name() for item in stmt.items]
    if stmt.having is not None:
        binder.bind_expr(stmt.having, select_items=stmt.items)
    for order in stmt.order_by:
        binder.bind_expr(order.expr, select_items=stmt.items)

    # Duplicate output names (e.g. "select r1.a, r2.a") are allowed, as in
    # SQL; later clauses resolving such a name bind its first occurrence.
    del output_names
    return BoundQuery(stmt, schema, aliases)


class _Binder:
    def __init__(self, aliases: Dict[str, RelationSchema]) -> None:
        self._aliases = aliases

    def bind_expr(
        self,
        expr: ast.Expr,
        select_items: Optional[List[ast.SelectItem]] = None,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Column):
                node.name = self._resolve(node.name, select_items)

    def _resolve(
        self,
        name: str,
        select_items: Optional[List[ast.SelectItem]],
    ) -> str:
        if "." in name:
            alias, attr = name.split(".", 1)
            rel = self._aliases.get(alias)
            if rel is None:
                raise SQLAnalysisError(f"unknown alias {alias!r} in {name!r}")
            if attr not in rel:
                raise SQLAnalysisError(
                    f"relation {rel.name!r} has no attribute {attr!r}"
                )
            return name
        # select-list aliases win in HAVING / ORDER BY contexts
        if select_items is not None:
            for item in select_items:
                if item.alias == name:
                    if isinstance(item.expr, ast.Column):
                        return item.expr.name
                    # refer to the computed output column by its alias
                    return name
        candidates = [
            alias for alias, rel in self._aliases.items() if name in rel
        ]
        if len(candidates) == 1:
            return f"{candidates[0]}.{name}"
        if not candidates:
            if select_items is not None and any(
                item.output_name() == name for item in select_items
            ):
                return name
            raise SQLAnalysisError(f"unknown column {name!r}")
        raise SQLAnalysisError(
            f"ambiguous column {name!r} (candidates: {sorted(candidates)})"
        )


@dataclass
class BoundCompound:
    """A bound UNION ALL / EXCEPT ALL chain."""

    op: str  # "union" | "except"
    left: "Union[BoundQuery, BoundCompound]"
    right: BoundQuery


def bind_any(stmt, schema: DatabaseSchema):
    """Bind a SelectStmt or CompoundSelect."""
    if isinstance(stmt, ast.CompoundSelect):
        return BoundCompound(
            stmt.op, bind_any(stmt.left, schema), bind(stmt.right, schema)
        )
    return bind(stmt, schema)


def build_plan_any(bound) -> algebra.PlanNode:
    """Build the RA plan of a bound (possibly compound) query."""
    if isinstance(bound, BoundCompound):
        left = build_plan_any(bound.left)
        right = build_plan(bound.right)
        if bound.op == "union":
            return algebra.UnionNode(left, right)
        return algebra.DifferenceNode(left, right)
    return build_plan(bound)


def plan_sql(sql: str, schema: DatabaseSchema):
    """Parse, bind and plan a SQL string (compound selects included)."""
    bound = bind_any(parse(sql), schema)
    return build_plan_any(bound), bound


# --- plan construction ----------------------------------------------------


def build_plan(bound: BoundQuery) -> algebra.PlanNode:
    stmt = bound.stmt
    conjunct_list = ast.conjuncts(stmt.where)

    per_alias: Dict[str, List[ast.Expr]] = {a: [] for a in bound.aliases}
    join_equalities: List[Tuple[str, str]] = []
    residuals: List[ast.Expr] = []

    for conj in conjunct_list:
        cols = conj.columns()
        involved = {c.split(".", 1)[0] for c in cols}
        if _is_join_equality(conj):
            left, right = conj.left.name, conj.right.name  # type: ignore[attr-defined]
            if left.split(".", 1)[0] != right.split(".", 1)[0]:
                join_equalities.append((left, right))
            else:
                per_alias[left.split(".", 1)[0]].append(conj)
            continue
        if len(involved) == 1:
            per_alias[involved.pop()].append(conj)
        else:
            residuals.append(conj)

    plan = _build_join_tree(bound, per_alias, join_equalities, residuals)
    plan = _apply_late_residuals(plan, residuals)
    return _build_top(bound, plan)


def _is_join_equality(expr: ast.Expr) -> bool:
    return (
        isinstance(expr, ast.Cmp)
        and expr.op == "="
        and isinstance(expr.left, ast.Column)
        and isinstance(expr.right, ast.Column)
    )


def _equivalence_classes(
    aliases: Sequence[str], equalities: Sequence[Tuple[str, str]]
) -> Dict[str, Set[str]]:
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for left, right in equalities:
        parent.setdefault(left, left)
        parent.setdefault(right, right)
        union(left, right)

    classes: Dict[str, Set[str]] = {}
    for member in parent:
        classes.setdefault(find(member), set()).add(member)
    return classes


def _build_join_tree(
    bound: BoundQuery,
    per_alias: Dict[str, List[ast.Expr]],
    equalities: List[Tuple[str, str]],
    residuals: List[ast.Expr],
) -> algebra.PlanNode:
    aliases = list(bound.aliases)
    classes = _equivalence_classes(aliases, equalities)
    attr_class: Dict[str, Set[str]] = {}
    for members in classes.values():
        for member in members:
            attr_class[member] = members

    def score(alias: str) -> Tuple[int, int, str]:
        preds = per_alias.get(alias, [])
        n_const = sum(1 for p in preds if _binds_constant(p))
        return (n_const, len(preds), alias)

    remaining = sorted(aliases, key=score, reverse=True)
    first = remaining.pop(0)
    plan = _leaf(bound, first, per_alias)
    joined = {first}
    covered_attrs = set(plan.output)

    while remaining:
        chosen = None
        for alias in remaining:
            if _connected(alias, covered_attrs, attr_class, bound):
                chosen = alias
                break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        right = _leaf(bound, chosen, per_alias)
        equi = _equi_pairs(covered_attrs, set(right.output), attr_class)
        if equi:
            plan = algebra.JoinNode(plan, right, equi)
        else:
            plan = algebra.CrossNode(plan, right)
        joined.add(chosen)
        covered_attrs |= set(right.output)
    return plan


def _binds_constant(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Cmp) and expr.op == "=":
        sides = (expr.left, expr.right)
        return any(isinstance(s, ast.Column) for s in sides) and any(
            isinstance(s, ast.Lit) for s in sides
        )
    return isinstance(expr, ast.InList) and isinstance(expr.operand, ast.Column)


def _leaf(
    bound: BoundQuery,
    alias: str,
    per_alias: Dict[str, List[ast.Expr]],
) -> algebra.PlanNode:
    rel = bound.aliases[alias]
    scan = algebra.ScanNode(rel.name, alias)
    scan.output = tuple(f"{alias}.{a}" for a in rel.attribute_names)
    predicate = ast.make_and(per_alias.get(alias, []))
    if predicate is None:
        return scan
    return algebra.SelectNode(scan, predicate)


def _connected(
    alias: str,
    covered: Set[str],
    attr_class: Dict[str, Set[str]],
    bound: BoundQuery,
) -> bool:
    prefix = alias + "."
    for attr, members in attr_class.items():
        if attr.startswith(prefix) and any(m in covered for m in members):
            return True
    return False


def _equi_pairs(
    left_attrs: Set[str],
    right_attrs: Set[str],
    attr_class: Dict[str, Set[str]],
) -> List[Tuple[str, str]]:
    pairs: List[Tuple[str, str]] = []
    seen_classes = set()
    for attr in sorted(right_attrs):
        members = attr_class.get(attr)
        if not members:
            continue
        class_id = id(members)
        if class_id in seen_classes:
            continue
        lefts = sorted(m for m in members if m in left_attrs)
        if lefts:
            pairs.append((lefts[0], attr))
            seen_classes.add(class_id)
    return pairs


def _apply_late_residuals(
    plan: algebra.PlanNode, residuals: List[ast.Expr]
) -> algebra.PlanNode:
    predicate = ast.make_and(residuals)
    if predicate is None:
        return plan
    missing = predicate.columns() - set(plan.output)
    if missing:
        raise SQLAnalysisError(f"residual predicate references {missing}")
    return algebra.SelectNode(plan, predicate)


def _build_top(bound: BoundQuery, plan: algebra.PlanNode) -> algebra.PlanNode:
    stmt = bound.stmt
    has_aggs = bool(stmt.group_by) or any(
        item.expr.contains_aggregate() for item in stmt.items
    )
    if has_aggs:
        return _build_aggregate_top(bound, plan)
    return _build_plain_top(bound, plan)


def _build_plain_top(bound: BoundQuery, plan: algebra.PlanNode) -> algebra.PlanNode:
    stmt = bound.stmt
    items = [(item.output_name(), item.expr) for item in stmt.items]
    output_names = [name for name, _ in items]

    if stmt.order_by and _order_needs_input(stmt, set(plan.output)):
        if stmt.distinct:
            raise UnsupportedSQLError(
                "ORDER BY on non-projected columns with DISTINCT"
            )
        plan = algebra.OrderByNode(
            plan, [(o.expr, o.ascending) for o in stmt.order_by]
        )
        plan = algebra.ProjectNode(plan, items)
        if stmt.limit is not None:
            plan = algebra.LimitNode(plan, stmt.limit)
        return plan

    plan = algebra.ProjectNode(plan, items)
    if stmt.distinct:
        plan = algebra.DistinctNode(plan)
    if stmt.order_by:
        keys = [
            (_rewrite_for_output(o.expr, stmt.items), o.ascending)
            for o in stmt.order_by
        ]
        plan = algebra.OrderByNode(plan, keys)
    if stmt.limit is not None:
        plan = algebra.LimitNode(plan, stmt.limit)
    return plan


def _order_needs_input(stmt: ast.SelectStmt, input_attrs: Set[str]) -> bool:
    """True when some ORDER BY expression is not over the select list."""
    outputs = {item.output_name() for item in stmt.items}
    exprs = {str(item.expr) for item in stmt.items}
    for order in stmt.order_by:
        if str(order.expr) in exprs:
            continue
        if isinstance(order.expr, ast.Column) and (
            order.expr.name in outputs
            or any(
                isinstance(i.expr, ast.Column) and i.expr.name == order.expr.name
                for i in stmt.items
            )
        ):
            continue
        return True
    return False


def _rewrite_for_output(
    expr: ast.Expr, items: List[ast.SelectItem]
) -> ast.Expr:
    """Rewrite an ORDER BY expression to reference output column names."""
    for item in items:
        if str(item.expr) == str(expr):
            return ast.Column(item.output_name())
        if (
            isinstance(expr, ast.Column)
            and isinstance(item.expr, ast.Column)
            and item.expr.name == expr.name
        ):
            return ast.Column(item.output_name())
    if isinstance(expr, ast.Column):
        return ast.Column(expr.name)
    return expr


def _build_aggregate_top(
    bound: BoundQuery, plan: algebra.PlanNode
) -> algebra.PlanNode:
    stmt = bound.stmt
    keys = [c.name for c in stmt.group_by]
    key_set = set(keys)
    alias_map: Dict[str, ast.Expr] = {
        item.alias: item.expr for item in stmt.items if item.alias
    }

    agg_specs: Dict[str, algebra.AggSpec] = {}

    def register(agg: ast.AggCall) -> str:
        internal = str(agg)
        if internal not in agg_specs:
            agg_specs[internal] = algebra.AggSpec(
                internal, agg.func, agg.arg, agg.distinct
            )
        return internal

    final_items: List[Tuple[str, ast.Expr]] = []
    for item in stmt.items:
        name = item.output_name()
        expr = item.expr
        if isinstance(expr, ast.Column):
            if expr.name not in key_set:
                raise SQLAnalysisError(
                    f"column {expr.name} must appear in GROUP BY"
                )
            final_items.append((name, ast.Column(expr.name)))
            continue
        rewritten = _lift_aggregates(expr, register, key_set, alias_map)
        final_items.append((name, rewritten))

    for extra in ast.conjuncts(stmt.having):
        _lift_aggregates(extra, register, key_set, alias_map)
    for order in stmt.order_by:
        _lift_aggregates(order.expr, register, key_set, alias_map)

    plan = algebra.GroupByNode(
        plan, keys, list(keys), list(agg_specs.values())
    )

    if stmt.having is not None:
        having = _lift_aggregates(stmt.having, register, key_set, alias_map)
        plan = algebra.SelectNode(plan, having)

    if stmt.order_by:
        order_keys = []
        for order in stmt.order_by:
            expr = _lift_aggregates(order.expr, register, key_set, alias_map)
            order_keys.append((expr, order.ascending))
        plan = algebra.OrderByNode(plan, order_keys)
    if stmt.limit is not None:
        plan = algebra.LimitNode(plan, stmt.limit)
    plan = algebra.ProjectNode(plan, final_items)
    return plan


def _lift_aggregates(
    expr: ast.Expr,
    register,
    key_set: Set[str],
    alias_map: Optional[Dict[str, ast.Expr]] = None,
) -> ast.Expr:
    """Replace AggCall sub-expressions with columns over group-by output.

    Column references naming a select-list alias (e.g. HAVING/ORDER BY on
    ``SUM(x) AS total``) are expanded to the aliased expression first.
    """
    alias_map = alias_map or {}
    if isinstance(expr, ast.AggCall):
        return ast.Column(register(expr))
    if isinstance(expr, ast.Column):
        if expr.name in key_set:
            return expr
        target = alias_map.get(expr.name)
        if target is not None and str(target) != str(expr):
            return _lift_aggregates(target, register, key_set, alias_map)
        raise SQLAnalysisError(
            f"column {expr.name} used outside aggregate must be a group key"
        )
    if isinstance(expr, ast.Lit):
        return expr
    if isinstance(expr, ast.Arith):
        return ast.Arith(
            expr.op,
            _lift_aggregates(expr.left, register, key_set, alias_map),
            _lift_aggregates(expr.right, register, key_set, alias_map),
        )
    if isinstance(expr, ast.Neg):
        return ast.Neg(
            _lift_aggregates(expr.operand, register, key_set, alias_map)
        )
    if isinstance(expr, ast.Cmp):
        return ast.Cmp(
            expr.op,
            _lift_aggregates(expr.left, register, key_set, alias_map),
            _lift_aggregates(expr.right, register, key_set, alias_map),
        )
    if isinstance(expr, ast.And):
        return ast.And(
            [_lift_aggregates(i, register, key_set, alias_map)
             for i in expr.items]
        )
    if isinstance(expr, ast.Or):
        return ast.Or(
            [_lift_aggregates(i, register, key_set, alias_map)
             for i in expr.items]
        )
    if isinstance(expr, ast.Not):
        return ast.Not(
            _lift_aggregates(expr.operand, register, key_set, alias_map)
        )
    raise UnsupportedSQLError(
        f"unsupported expression over aggregates: {expr}"
    )
