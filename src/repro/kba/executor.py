"""Sequential executor for KBA plans over a BaaV (and TaaV) store.

Execution is *logical*: it computes exact results on block sets while the
underlying cluster counts gets / values / bytes. The parallel engine
(:mod:`repro.parallel.engine`) re-walks the same plan to attribute those
costs to workers and stages.
"""

from __future__ import annotations

import os
from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.baav.block import Block
from repro.baav.store import BaaVStore
from repro.errors import ExecutionError, PlanError
from repro.kba import plan as kp
from repro.kba.blockset import BlockSet, Entry
from repro.kv.taav import TaaVStore
from repro.relational.types import Row
from repro.sql.aggregates import make_accumulator
from repro.sql.algebra import AggSpec


#: default number of probe keys coalesced into one multi-get batch
DEFAULT_BATCH_SIZE = 64

#: environment override turning compiled columnar execution on for every
#: ExecContext that does not pass ``vectorized`` explicitly (the CI
#: vectorized rerun sets ``REPRO_VECTORIZED=1``)
VECTORIZED_ENV = "REPRO_VECTORIZED"


def resolve_vectorized(flag: Optional[bool]) -> bool:
    """Resolve the vectorized knob: arg > ``REPRO_VECTORIZED`` > off."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(VECTORIZED_ENV, "0") not in ("", "0")


class ExecContext:
    """Stores available to a KBA plan execution.

    ``batch_size`` is the number of distinct probe keys coalesced into one
    ``multi_get`` round (1 = the per-key baseline: one get, one round trip
    per probe). ``batch_partitions`` models independent batching domains —
    the parallel engine sets it to its worker count so each partition
    coalesces only its own probes, as real workers would. Both knobs must
    be >= 1; out-of-range values raise :class:`ExecutionError`.

    ``vectorized`` selects compiled columnar execution
    (:mod:`repro.kba.compile`): operators evaluate once-compiled
    positional kernels over whole-frame columns instead of per-row
    ``eval`` dicts. ``None`` defers to the ``REPRO_VECTORIZED``
    environment variable (default off). Results and storage counters are
    identical across modes — only wall-clock changes.
    """

    def __init__(
        self,
        baav: Optional[BaaVStore],
        taav: Optional[TaaVStore] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        batch_partitions: int = 1,
        indexes=None,
        vectorized: Optional[bool] = None,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError("batch_size must be >= 1")
        if batch_partitions < 1:
            raise ExecutionError("batch_partitions must be >= 1")
        self.baav = baav
        self.taav = taav
        self.batch_size = batch_size
        self.batch_partitions = batch_partitions
        #: optional repro.index.IndexManager serving IndexProbe leaves
        self.indexes = indexes
        self.vectorized = resolve_vectorized(vectorized)

    def instance(self, name: str):
        if self.baav is None:
            raise ExecutionError("no BaaV store available")
        return self.baav.instance(name)


def execute(node: kp.KBANode, ctx: ExecContext) -> BlockSet:
    """Execute a KBA plan and return its BlockSet result.

    With ``ctx.vectorized`` the plan is compiled once into a chain of
    fused closures (:func:`repro.kba.compile.compile_plan`) and run;
    otherwise each operator is interpreted row-at-a-time.
    """
    if ctx.vectorized:
        from repro.kba.compile import run_compiled

        return run_compiled(node, ctx)
    inputs = [execute(child, ctx) for child in node.children()]
    return execute_node(node, ctx, inputs)


def execute_node(
    node: kp.KBANode, ctx: ExecContext, inputs: List[BlockSet]
) -> BlockSet:
    """Execute one operator given its children's results.

    The parallel engine (M3) drives its own recursion through this entry
    so it can meter storage counters and intermediate sizes per operator.
    With ``ctx.vectorized`` the expression-heavy operators dispatch to
    their compiled columnar handlers (same results, same counters); node
    types without a vectorized form use the row handlers either way.
    """
    if ctx.vectorized:
        from repro.kba.compile import VEC_HANDLERS

        vec_handler = VEC_HANDLERS.get(type(node))
        if vec_handler is not None:
            return vec_handler(node, ctx, inputs)
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise ExecutionError(f"no handler for KBA node {type(node).__name__}")
    return handler(node, ctx, inputs)


# -- leaves -----------------------------------------------------------------


def _run_constant(node: kp.Constant, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    return BlockSet.constant(node.attrs, node.keys)


def _run_scan_kv(node: kp.ScanKV, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    instance = ctx.instance(node.kv_name)
    alias = node.alias
    key_attrs = tuple(f"{alias}.{a}" for a in instance.schema.key)
    value_attrs = tuple(f"{alias}.{a}" for a in instance.schema.value)
    data: Dict[Row, List[Entry]] = {}
    for key, block in instance.scan(batch_size=ctx.batch_size):
        data.setdefault(key, []).extend(block.entries)
    return BlockSet(key_attrs, value_attrs, data)


def _run_taav_scan(node: kp.TaaVScan, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    if ctx.taav is None or node.relation not in ctx.taav:
        raise ExecutionError(
            f"TaaV store has no relation {node.relation!r}"
        )
    taav = ctx.taav.relation(node.relation)
    relation = taav.fetch_all(batch_size=ctx.batch_size)
    attrs = tuple(
        f"{node.alias}.{a}" for a in relation.schema.attribute_names
    )
    entries = [(row, 1) for row in relation.rows]
    return BlockSet((), attrs, {(): entries} if entries else {})


def _run_index_probe(
    node: kp.IndexProbe, ctx: ExecContext, inputs: List[BlockSet]
) -> BlockSet:
    """Index probe → TaaV multi_get: the scan-free non-key access path.

    The index answers with the matching primary keys (its own gets are
    counted on the cluster like any read); the tuples are then fetched
    with the same coalesced per-partition batches an ∝ extend uses.
    """
    if ctx.indexes is None:
        raise ExecutionError("plan has an IndexProbe but no index manager")
    if ctx.taav is None or node.relation not in ctx.taav:
        raise ExecutionError(
            f"TaaV store has no relation {node.relation!r} to probe"
        )
    if node.eq_values:
        pks = ctx.indexes.lookup_eq(
            node.relation, node.attr, node.eq_values
        )
    else:
        pks = ctx.indexes.lookup_range(
            node.relation,
            node.attr,
            lo=node.lo,
            hi=node.hi,
            lo_strict=node.lo_strict,
            hi_strict=node.hi_strict,
        )
    taav = ctx.taav.relation(node.relation)
    rows: List[Row] = []
    for batch in _probe_batches(pks, ctx.batch_size, ctx.batch_partitions):
        for row in taav.multi_get(batch):
            if row is not None:
                rows.append(row)
    attrs = tuple(
        f"{node.alias}.{a}" for a in taav.schema.attribute_names
    )
    entries = [(row, 1) for row in rows]
    return BlockSet((), attrs, {(): entries} if entries else {})


# -- BaaV-specific operators ---------------------------------------------------


def _run_extend(node: kp.Extend, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    instance = ctx.instance(node.kv_name)
    schema = instance.schema
    alias = node.alias

    # order the probe positions by the KV schema's key order
    probe_of: Dict[str, str] = {kv_attr: c_attr for c_attr, kv_attr in node.on}
    if set(probe_of) != set(schema.key):
        raise PlanError(
            f"extend on {schema.name}: probe attrs {sorted(probe_of)} "
            f"must cover key {schema.key}"
        )
    child_attrs = child.attrs
    probe_positions = [
        child_attrs.index(probe_of[kv_attr]) for kv_attr in schema.key
    ]

    exposed_names = tuple(name for _, name in node.expose_key)
    exposed_positions = [
        schema.key.index(kv_attr) for kv_attr, _ in node.expose_key
    ]
    rename = dict(node.value_rename)
    value_attrs = tuple(
        rename.get(a, f"{alias}.{a}") for a in schema.value
    )

    # Pass 1 — collect the distinct probe keys of every entry. This is
    # the single probing path of the executor: key lookups (Constant →
    # Extend), fetch-joins and semijoins all arrive here.
    probes: List[Row] = []
    seen = set()
    for key, value, count in child.iter_entries():
        full = key + value
        probe = tuple(full[p] for p in probe_positions)
        if None in probe or probe in seen:
            continue
        seen.add(probe)
        probes.append(probe)

    # Pass 2 — fetch the deduplicated probe set with coalesced
    # multi-gets: one round trip per owning node per batch, instead of
    # one get invocation (and round trip) per probe.
    fetched: Dict[Row, Optional[Block]] = {}
    for batch in _probe_batches(probes, ctx.batch_size, ctx.batch_partitions):
        fetched.update(instance.multi_get(batch))

    # Pass 3 — the join itself, now purely local on the fetched blocks.
    data: Dict[Row, List[Entry]] = {}
    for key, value, count in child.iter_entries():
        full = key + value
        probe = tuple(full[p] for p in probe_positions)
        if None in probe:
            continue
        block = fetched[probe]
        if block is None:
            continue
        out_key = full + tuple(probe[p] for p in exposed_positions)
        bucket = data.get(out_key)
        if bucket is None:
            bucket = []
            data[out_key] = bucket
        for row, block_count in block.entries:
            bucket.append((row, block_count * count))
    return BlockSet(child_attrs + exposed_names, value_attrs, data)


def _probe_batches(
    probes: List[Row], batch_size: int, partitions: int
) -> Iterator[List[Row]]:
    """Split probe keys into per-partition batches of ``batch_size``.

    Partitions model workers that batch independently; keys are dealt
    round-robin (deterministic, unlike string hashing) so round-trip
    counts are reproducible across runs.
    """
    if partitions <= 1:
        groups = [probes]
    else:
        groups = [probes[start::partitions] for start in range(partitions)]
    for group in groups:
        for start in range(0, len(group), batch_size):
            yield group[start:start + batch_size]


def _run_shift(node: kp.Shift, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    return child.shift(node.new_key)


# -- relational operators over blocks -------------------------------------------


def _run_select(node: kp.SelectK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    predicate = node.predicate
    attrs = child.attrs
    n_key = len(child.key_attrs)
    data: Dict[Row, List[Entry]] = {}
    for key, entries in child.data.items():
        kept: List[Entry] = []
        for row, count in entries:
            env = dict(zip(attrs, key + row))
            if predicate.eval(env):
                kept.append((row, count))
        if kept:
            data[key] = kept
    return BlockSet(child.key_attrs, child.value_attrs, data)


def _run_project(node: kp.ProjectK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    kept = tuple(node.attrs)
    kept_set = set(kept)
    new_key = tuple(a for a in child.key_attrs if a in kept_set)
    new_value = tuple(a for a in kept if a not in set(new_key))
    positions_key = [child.position(a) for a in new_key]
    positions_value = [child.position(a) for a in new_value]
    data: Dict[Row, Dict[Row, int]] = defaultdict(dict)
    for full, count in child.iter_full():
        key = tuple(full[p] for p in positions_key)
        value = tuple(full[p] for p in positions_value)
        bucket = data[key]
        bucket[value] = bucket.get(value, 0) + count
    packed = {key: list(bucket.items()) for key, bucket in data.items()}
    return BlockSet(new_key, new_value, packed)


def _run_copy(node: kp.CopyK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    sources = [child.position(src) for src, _ in node.copies]
    new_names = tuple(dst for _, dst in node.copies)
    n_key = len(child.key_attrs)
    data: Dict[Row, List[Entry]] = {}
    for key, entries in child.data.items():
        out_entries: List[Entry] = []
        for row, count in entries:
            full = key + row
            extra = tuple(full[p] for p in sources)
            out_entries.append((row + extra, count))
        data[key] = out_entries
    return BlockSet(
        child.key_attrs, child.value_attrs + new_names, data
    )


def _run_join(node: kp.JoinK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    left, right = inputs
    return join_blocksets(left, right, node.on, node.residual)


def join_blocksets(
    left: BlockSet,
    right: BlockSet,
    on: Tuple[Tuple[str, str], ...],
    residual=None,
) -> BlockSet:
    """Hash-join two block sets; result keyed by X1 ∪ X2 (§4.2)."""
    left_attrs = left.attrs
    right_attrs = right.attrs
    left_pos = [left.position(l) for l, _ in on]
    right_pos = [right.position(r) for _, r in on]

    index: Dict[Row, List[Entry]] = defaultdict(list)
    for full, count in right.iter_full():
        probe = tuple(full[p] for p in right_pos)
        if None in probe:
            continue
        index[probe].append((full, count))

    out_key_attrs = left.key_attrs + right.key_attrs
    out_value_attrs = left.value_attrs + right.value_attrs
    n_left_key = len(left.key_attrs)
    n_right_key = len(right.key_attrs)

    all_attrs = left_attrs + right_attrs
    data: Dict[Row, List[Entry]] = defaultdict(list)
    for lfull, lcount in left.iter_full():
        probe = tuple(lfull[p] for p in left_pos)
        if None in probe:
            continue
        for rfull, rcount in index.get(probe, ()):
            if residual is not None:
                env = dict(zip(all_attrs, lfull + rfull))
                if not residual.eval(env):
                    continue
            key = lfull[:n_left_key] + rfull[:n_right_key]
            value = lfull[n_left_key:] + rfull[n_right_key:]
            data[key].append((value, lcount * rcount))
    return BlockSet(out_key_attrs, out_value_attrs, dict(data))


def _run_union(node: kp.UnionK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    left, right = inputs
    if left.attrs != right.attrs:
        right = right.shift(left.key_attrs)
        if left.attrs != right.attrs:
            raise ExecutionError(
                f"union operands misaligned: {left.attrs} vs {right.attrs}"
            )
    out = BlockSet(left.key_attrs, left.value_attrs, dict(left.data))
    for key, entries in right.data.items():
        out.merge_key(key, entries)
    return out


def _run_difference(node: kp.DifferenceK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    left, right = inputs
    if left.attrs != right.attrs:
        right = right.shift(left.key_attrs)
        if left.attrs != right.attrs:
            raise ExecutionError(
                f"difference operands misaligned: {left.attrs} vs {right.attrs}"
            )
    data: Dict[Row, List[Entry]] = {}
    for key, entries in left.data.items():
        minus: Dict[Row, int] = defaultdict(int)
        for row, count in right.data.get(key, ()):
            minus[row] += count
        kept: Dict[Row, int] = {}
        for row, count in entries:
            kept[row] = kept.get(row, 0) + count
        out_entries: List[Entry] = []
        for row, count in kept.items():
            remaining = count - minus.get(row, 0)
            if remaining > 0:
                out_entries.append((row, remaining))
        if out_entries:
            data[key] = out_entries
    return BlockSet(left.key_attrs, left.value_attrs, data)


def _run_group(node: kp.GroupK, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    return group_blockset(child, node.keys, node.aggs)


def group_blockset(
    child: BlockSet, keys: Tuple[str, ...], aggs: Tuple[AggSpec, ...]
) -> BlockSet:
    attrs = child.attrs
    key_pos = [child.position(k) for k in keys]
    groups: Dict[Row, List] = {}
    for full, count in child.iter_full():
        group_key = tuple(full[p] for p in key_pos)
        accs = groups.get(group_key)
        if accs is None:
            accs = [make_accumulator(a.func, a.distinct) for a in aggs]
            groups[group_key] = accs
        env = None
        for spec, acc in zip(aggs, accs):
            if spec.arg is None:
                acc.add(True, count)
            else:
                if env is None:
                    env = dict(zip(attrs, full))
                acc.add(spec.arg.eval(env), count)
    if not keys and not groups:
        groups[()] = [make_accumulator(a.func, a.distinct) for a in aggs]
    data = {
        key: [(tuple(acc.result() for acc in accs), 1)]
        for key, accs in groups.items()
    }
    return BlockSet(keys, tuple(a.name for a in aggs), data)


def _run_stats_group(node: kp.StatsGroup, ctx: ExecContext, inputs: List[BlockSet]) -> BlockSet:
    instance = ctx.instance(node.kv_name)
    if not instance.keep_stats:
        raise ExecutionError(
            f"instance {node.kv_name} has no block statistics"
        )
    alias = node.alias
    key_attrs = tuple(f"{alias}.{a}" for a in instance.schema.key)
    data: Dict[Row, List[Entry]] = {}
    from repro.baav.store import _decode_stats
    from repro.kv import codec

    # values_of decodes each sidecar to charge 4 statistic values per
    # attribute on the owning node; memoize so the loop body reuses the
    # decode instead of decoding every payload twice
    decoded: Dict[bytes, Dict[str, object]] = {}

    def _stats_values(key_bytes: bytes, data: bytes) -> int:
        stats = _decode_stats(data)
        decoded[key_bytes] = stats
        return 4 * len(stats)

    for key_bytes, payload in instance.cluster.scan(
        instance.stats_namespace,
        count_as_gets=True,
        values_of=_stats_values,
    ):
        key = codec.decode_key(key_bytes)
        # the memo is only filled when the scan counts (values_of runs);
        # fall back to a fresh decode so counting stays a metrics concern
        stats = decoded.pop(key_bytes, None) or _decode_stats(payload)
        out: List[object] = []
        for spec in node.aggs:
            attr = _agg_attr(spec, alias)
            stat = stats.get(attr)
            if stat is None:
                out.append(None)
            elif spec.func == "SUM":
                out.append(stat.total)
            elif spec.func == "COUNT":
                out.append(stat.count)
            elif spec.func == "MIN":
                out.append(stat.minimum)
            elif spec.func == "MAX":
                out.append(stat.maximum)
            elif spec.func == "AVG":
                out.append(stat.average)
            else:
                raise ExecutionError(f"stats path cannot compute {spec.func}")
        data[key] = [(tuple(out), 1)]
    return BlockSet(key_attrs, tuple(a.name for a in node.aggs), data)


def _agg_attr(spec: AggSpec, alias: str) -> str:
    from repro.sql import ast

    if not isinstance(spec.arg, ast.Column):
        raise ExecutionError("stats path needs plain column aggregates")
    name = spec.arg.name
    prefix = alias + "."
    if not name.startswith(prefix):
        raise ExecutionError(f"aggregate {name} is not over alias {alias}")
    return name[len(prefix):]


_HANDLERS = {
    kp.Constant: _run_constant,
    kp.ScanKV: _run_scan_kv,
    kp.TaaVScan: _run_taav_scan,
    kp.IndexProbe: _run_index_probe,
    kp.Extend: _run_extend,
    kp.Shift: _run_shift,
    kp.SelectK: _run_select,
    kp.CopyK: _run_copy,
    kp.ProjectK: _run_project,
    kp.JoinK: _run_join,
    kp.UnionK: _run_union,
    kp.DifferenceK: _run_difference,
    kp.GroupK: _run_group,
    kp.StatsGroup: _run_stats_group,
}
