"""In-memory keyed-block intermediates for KBA plan execution.

A :class:`BlockSet` is the runtime value flowing between KBA operators: a
KV instance ``⟨X, Y⟩`` held in memory as ``{key tuple: [(value row,
count), ...]}``. Counts carry bag multiplicities end to end (block
compression, §8.2), so KBA results are bag-equivalent to SQL semantics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.relational.types import Row, row_size

Entry = Tuple[Row, int]


class BlockSet:
    """An in-memory KV instance over qualified attribute names."""

    __slots__ = ("key_attrs", "value_attrs", "data")

    def __init__(
        self,
        key_attrs: Sequence[str],
        value_attrs: Sequence[str],
        data: Optional[Dict[Row, List[Entry]]] = None,
    ) -> None:
        self.key_attrs = tuple(key_attrs)
        self.value_attrs = tuple(value_attrs)
        self.data: Dict[Row, List[Entry]] = data if data is not None else {}

    # -- construction -------------------------------------------------------

    @classmethod
    def constant(cls, attrs: Sequence[str], keys: Iterable[Row]) -> "BlockSet":
        """A constant keyed-block leaf: keys with empty value rows."""
        data: Dict[Row, List[Entry]] = {}
        for key in keys:
            data[tuple(key)] = [((), 1)]
        return cls(attrs, (), data)

    @classmethod
    def from_rows(
        cls,
        key_attrs: Sequence[str],
        value_attrs: Sequence[str],
        rows: Iterable[Entry],
    ) -> "BlockSet":
        """Group full (key+value) rows-with-counts by the key prefix."""
        n_key = len(tuple(key_attrs))
        data: Dict[Row, List[Entry]] = defaultdict(list)
        for row, count in rows:
            data[row[:n_key]].append((row[n_key:], count))
        return cls(key_attrs, value_attrs, dict(data))

    # -- views -------------------------------------------------------------

    @property
    def attrs(self) -> Tuple[str, ...]:
        return self.key_attrs + self.value_attrs

    @property
    def num_blocks(self) -> int:
        return len(self.data)

    def num_entries(self) -> int:
        return sum(len(entries) for entries in self.data.values())

    def num_tuples(self) -> int:
        """Logical (bag) tuple count."""
        return sum(
            count
            for entries in self.data.values()
            for _, count in entries
        )

    def num_values(self) -> int:
        """Stored values (entries × width), the #data / shuffle unit."""
        width = len(self.attrs)
        return self.num_entries() * width

    def size_bytes(self) -> int:
        total = 0
        for key, entries in self.data.items():
            key_size = row_size(key)
            for row, _count in entries:
                total += key_size + row_size(row) + 4
        return total

    def degree(self) -> int:
        best = 0
        for entries in self.data.values():
            tuples = sum(count for _, count in entries)
            if tuples > best:
                best = tuples
        return best

    def iter_entries(self) -> Iterator[Tuple[Row, Row, int]]:
        """Yield (key, value row, count)."""
        for key, entries in self.data.items():
            for row, count in entries:
                yield key, row, count

    def iter_full(self) -> Iterator[Entry]:
        """Yield ((key + value) row, count)."""
        for key, entries in self.data.items():
            for row, count in entries:
                yield key + row, count

    def expand(self) -> Iterator[Row]:
        """Yield full rows with multiplicity (bag view)."""
        for row, count in self.iter_full():
            for _ in range(count):
                yield row

    def position(self, attr: str) -> int:
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise ExecutionError(
                f"attribute {attr!r} not among {self.attrs}"
            ) from None

    # -- transformation ------------------------------------------------------

    def shift(self, new_key_attrs: Sequence[str]) -> "BlockSet":
        """The ↑ operator (§4.2): re-key with the same relational version."""
        new_key = tuple(new_key_attrs)
        missing = set(new_key) - set(self.attrs)
        if missing:
            raise ExecutionError(f"shift target attrs not present: {missing}")
        new_value = tuple(a for a in self.attrs if a not in set(new_key))
        positions_key = [self.position(a) for a in new_key]
        positions_value = [self.position(a) for a in new_value]
        data: Dict[Row, Dict[Row, int]] = defaultdict(dict)
        for full, count in self.iter_full():
            key = tuple(full[p] for p in positions_key)
            value = tuple(full[p] for p in positions_value)
            bucket = data[key]
            bucket[value] = bucket.get(value, 0) + count
        packed = {
            key: list(bucket.items()) for key, bucket in data.items()
        }
        return BlockSet(new_key, new_value, packed)

    def merge_key(self, key: Row, entries: List[Entry]) -> None:
        existing = self.data.get(key)
        if existing is None:
            self.data[key] = list(entries)
        else:
            existing.extend(entries)

    def __repr__(self) -> str:
        return (
            f"BlockSet(<{','.join(self.key_attrs)} | "
            f"{','.join(self.value_attrs)}>, blocks={self.num_blocks}, "
            f"tuples={self.num_tuples()})"
        )
