"""Compile KBA plans and scalar expressions into vectorized closures (PR 10).

The row-at-a-time executor (:mod:`repro.kba.executor`) evaluates
predicates by building an ``attr -> value`` dict per tuple and walking the
expression AST recursively. That is exact but interpreter-bound: the hot
loops spend their time on dict allocation and ``eval`` dispatch. This
module compiles an expression **once** per operator into positional
closures — column references become list indexes, comparisons become
``operator`` calls — and evaluates them over whole
:class:`~repro.baav.frame.BlockSetFrame` columns, MonetDB/X100 style.

Two compilation targets:

* :func:`compile_row` — a closure over one full row tuple, used where the
  access pattern is inherently per-row (join residuals, group-by
  aggregate arguments, the RA baseline engine's filters).
* :func:`compile_mask` / :func:`compile_values` — columnar kernels over a
  frame, returning one result per entry. Common shapes (``column <op>
  literal``, IN-lists, BETWEEN, LIKE on a bare column) specialize into
  single-column loops that skip NULL slots via the validity mask.

Exactness is the contract: every compiled closure returns byte-identical
results to ``Expr.eval`` — the same NULL collapses (comparisons are
``False`` on NULL, arithmetic propagates ``None``, division by zero is
``None``) and the same truthiness composition for AND/OR/NOT. Expressions
the compiler does not understand (aggregate calls, unbound columns) raise
:class:`~repro.errors.CompileError` and the operator falls back to the
row-at-a-time handler, so ``vectorized=True`` never changes results.

Plan compilation (:func:`compile_plan`) additionally fuses adjacent
``ProjectK(SelectK(x))`` pairs into one mask-and-take pass over the
child's frame. Fusion only applies on the uninstrumented
``executor.execute`` path; the parallel engine keeps its per-operator walk
(each stage is metered separately) and vectorizes *within* operators, so
stage structure, simulated cost, and storage counters are identical across
modes — the Extend/IndexProbe handlers reuse the exact probe order,
dedup, and batch chunking of the row path.
"""

from __future__ import annotations

import operator
from collections import Counter, defaultdict
from itertools import compress, repeat
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baav.block import Block
from repro.baav.frame import BlockSetFrame, Frame, group_fold, hash_probe
from repro.errors import CompileError
from repro.kba import plan as kp
from repro.kba.blockset import BlockSet, Entry
from repro.relational.types import Row
from repro.sql import ast
from repro.sql.aggregates import make_accumulator
from repro.sql.algebra import AggSpec

RowFn = Callable[[Row], object]
VecFn = Callable[[Frame], List[object]]

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _position(attrs: Tuple[str, ...], name: str) -> int:
    try:
        return attrs.index(name)
    except ValueError:
        raise CompileError(f"unbound column {name!r}") from None


# -- row compilation ----------------------------------------------------------


def compile_row(expr: ast.Expr, attrs: Tuple[str, ...]) -> RowFn:
    """Compile ``expr`` into a closure over one full row tuple.

    The closure returns exactly what ``expr.eval`` returns for the env
    ``dict(zip(attrs, row))``, without building the dict. Raises
    :class:`CompileError` for expressions outside the compilable subset
    (aggregate calls, unknown operators, unbound columns).
    """
    if isinstance(expr, ast.Lit):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.Column):
        pos = _position(attrs, expr.name)
        return lambda row: row[pos]
    if isinstance(expr, ast.Neg):
        fn = compile_row(expr.operand, attrs)
        return lambda row: None if (v := fn(row)) is None else -v
    if isinstance(expr, ast.Arith):
        left = compile_row(expr.left, attrs)
        right = compile_row(expr.right, attrs)
        if expr.op == "/":

            def divide(row: Row) -> object:
                a = left(row)
                b = right(row)
                if a is None or b is None or b == 0:
                    return None
                return a / b

            return divide
        op = _ARITH_OPS.get(expr.op)
        if op is None:
            raise CompileError(f"unknown arithmetic operator {expr.op!r}")

        def arith(row: Row) -> object:
            a = left(row)
            b = right(row)
            return None if a is None or b is None else op(a, b)

        return arith
    if isinstance(expr, ast.Cmp):
        op = _CMP_OPS[expr.op]
        left = compile_row(expr.left, attrs)
        right = compile_row(expr.right, attrs)

        def compare(row: Row) -> object:
            a = left(row)
            b = right(row)
            return False if a is None or b is None else op(a, b)

        return compare
    if isinstance(expr, ast.And):
        fns = [compile_row(item, attrs) for item in expr.items]
        return lambda row: all(fn(row) for fn in fns)
    if isinstance(expr, ast.Or):
        fns = [compile_row(item, attrs) for item in expr.items]
        return lambda row: any(fn(row) for fn in fns)
    if isinstance(expr, ast.Not):
        fn = compile_row(expr.operand, attrs)
        return lambda row: not fn(row)
    if isinstance(expr, ast.InList):
        fn = compile_row(expr.operand, attrs)
        members = tuple(expr.values)
        return lambda row: (
            False if (v := fn(row)) is None else v in members
        )
    if isinstance(expr, ast.Between):
        fn = compile_row(expr.operand, attrs)
        low = compile_row(expr.low, attrs)
        high = compile_row(expr.high, attrs)

        def between(row: Row) -> object:
            v = fn(row)
            lo = low(row)
            hi = high(row)
            if v is None or lo is None or hi is None:
                return False
            return lo <= v <= hi

        return between
    if isinstance(expr, ast.Like):
        fn = compile_row(expr.operand, attrs)
        regex = expr._compiled()
        return lambda row: (
            False if (v := fn(row)) is None else bool(regex.match(str(v)))
        )
    raise CompileError(
        f"cannot compile {type(expr).__name__} expression"
    )


# -- columnar compilation -----------------------------------------------------

# a compiled vector is either a per-entry closure or a constant broadcast
_CONST = "const"
_VEC = "vec"
_Compiled = Tuple[str, object]


def _fold(fn: Callable[[], object]) -> object:
    """Constant-fold; an exception means the fold is unsafe to hoist."""
    try:
        return fn()
    except CompileError:
        raise
    except Exception as exc:  # repro-lint: disable=broad-except -- any fold failure (type error, div-by-zero edge) is converted to CompileError so the operator falls back to the exact row path
        raise CompileError(f"constant fold failed: {exc}") from exc


def _column_loop(
    pos: int, item_fn: Callable[[object], object]
) -> VecFn:
    """One-column kernel: NULL slots collapse to False via the mask."""

    def run(frame: Frame) -> List[object]:
        column, mask = frame.dense(pos)
        if mask is None:
            return [item_fn(v) for v in column]
        return [ok and item_fn(v) for v, ok in zip(column, mask)]

    return run


def _compile_vec(expr: ast.Expr, attrs: Tuple[str, ...]) -> _Compiled:
    if isinstance(expr, ast.Lit):
        return (_CONST, expr.value)
    if isinstance(expr, ast.Column):
        pos = _position(attrs, expr.name)
        return (_VEC, lambda frame: frame.values(pos))
    if isinstance(expr, ast.Neg):
        kind, inner = _compile_vec(expr.operand, attrs)
        if kind == _CONST:
            return (
                _CONST,
                None if inner is None else _fold(lambda: -inner),
            )
        return (
            _VEC,
            lambda frame: [
                None if v is None else -v for v in inner(frame)
            ],
        )
    if isinstance(expr, ast.Arith):
        return _compile_arith(expr, attrs)
    if isinstance(expr, ast.Cmp):
        return _compile_cmp(expr, attrs)
    if isinstance(expr, ast.And):
        return _compile_junction(expr.items, attrs, all, True)
    if isinstance(expr, ast.Or):
        return _compile_junction(expr.items, attrs, any, False)
    if isinstance(expr, ast.Not):
        kind, inner = _compile_vec(expr.operand, attrs)
        if kind == _CONST:
            return (_CONST, not inner)
        return (_VEC, lambda frame: [not v for v in inner(frame)])
    if isinstance(expr, ast.InList):
        members = tuple(expr.values)
        if isinstance(expr.operand, ast.Column):
            pos = _position(attrs, expr.operand.name)
            return (
                _VEC,
                _column_loop(pos, lambda v, _m=members: v in _m),
            )
        kind, inner = _compile_vec(expr.operand, attrs)
        if kind == _CONST:
            return (
                _CONST,
                False if inner is None else _fold(lambda: inner in members),
            )
        return (
            _VEC,
            lambda frame: [
                False if v is None else v in members
                for v in inner(frame)
            ],
        )
    if isinstance(expr, ast.Between):
        return _compile_between(expr, attrs)
    if isinstance(expr, ast.Like):
        regex = expr._compiled()
        if isinstance(expr.operand, ast.Column):
            pos = _position(attrs, expr.operand.name)
            return (
                _VEC,
                _column_loop(
                    pos, lambda v, _r=regex: bool(_r.match(str(v)))
                ),
            )
        kind, inner = _compile_vec(expr.operand, attrs)
        if kind == _CONST:
            return (
                _CONST,
                False
                if inner is None
                else bool(regex.match(str(inner))),
            )
        return (
            _VEC,
            lambda frame: [
                False if v is None else bool(regex.match(str(v)))
                for v in inner(frame)
            ],
        )
    raise CompileError(
        f"cannot compile {type(expr).__name__} expression"
    )


def _compile_arith(expr: ast.Arith, attrs: Tuple[str, ...]) -> _Compiled:
    lkind, left = _compile_vec(expr.left, attrs)
    rkind, right = _compile_vec(expr.right, attrs)
    if expr.op == "/":
        if lkind == _CONST and rkind == _CONST:
            if left is None or right is None or right == 0:
                return (_CONST, None)
            return (_CONST, _fold(lambda: left / right))
        if lkind == _CONST:
            if left is None:
                return (_CONST, None)
            return (
                _VEC,
                lambda frame: [
                    None if b is None or b == 0 else left / b
                    for b in right(frame)
                ],
            )
        if rkind == _CONST:
            if right is None or right == 0:
                return (_CONST, None)
            return (
                _VEC,
                lambda frame: [
                    None if a is None else a / right
                    for a in left(frame)
                ],
            )
        return (
            _VEC,
            lambda frame: [
                None if a is None or b is None or b == 0 else a / b
                for a, b in zip(left(frame), right(frame))
            ],
        )
    op = _ARITH_OPS.get(expr.op)
    if op is None:
        raise CompileError(f"unknown arithmetic operator {expr.op!r}")
    if lkind == _CONST and rkind == _CONST:
        if left is None or right is None:
            return (_CONST, None)
        return (_CONST, _fold(lambda: op(left, right)))
    if lkind == _CONST:
        if left is None:
            return (_CONST, None)
        return (
            _VEC,
            lambda frame: [
                None if b is None else op(left, b) for b in right(frame)
            ],
        )
    if rkind == _CONST:
        if right is None:
            return (_CONST, None)
        return (
            _VEC,
            lambda frame: [
                None if a is None else op(a, right) for a in left(frame)
            ],
        )
    return (
        _VEC,
        lambda frame: [
            None if a is None or b is None else op(a, b)
            for a, b in zip(left(frame), right(frame))
        ],
    )


def _cmp_column_lit(pos: int, op: Callable, value: object, flip: bool) -> VecFn:
    """``column <op> literal`` kernel: a single map() pass over the column.

    On NULL-free columns both the loop and the comparison run in C via
    ``map(op, column, repeat(value))``; masked columns fall back to a
    comprehension that collapses NULL slots to ``False``.
    """

    def run(frame: Frame) -> List[object]:
        column, mask = frame.dense(pos)
        if mask is None:
            if flip:
                return list(map(op, repeat(value), column))
            return list(map(op, column, repeat(value)))
        if flip:
            return [ok and op(value, v) for v, ok in zip(column, mask)]
        return [ok and op(v, value) for v, ok in zip(column, mask)]

    return run


def _compile_cmp(expr: ast.Cmp, attrs: Tuple[str, ...]) -> _Compiled:
    op = _CMP_OPS[expr.op]
    # column-vs-literal is the hot shape: a single masked column loop
    if isinstance(expr.left, ast.Column) and isinstance(expr.right, ast.Lit):
        value = expr.right.value
        if value is None:
            return (_CONST, False)
        pos = _position(attrs, expr.left.name)
        return (_VEC, _cmp_column_lit(pos, op, value, flip=False))
    if isinstance(expr.left, ast.Lit) and isinstance(expr.right, ast.Column):
        value = expr.left.value
        if value is None:
            return (_CONST, False)
        pos = _position(attrs, expr.right.name)
        return (_VEC, _cmp_column_lit(pos, op, value, flip=True))
    lkind, left = _compile_vec(expr.left, attrs)
    rkind, right = _compile_vec(expr.right, attrs)
    if lkind == _CONST and rkind == _CONST:
        if left is None or right is None:
            return (_CONST, False)
        return (_CONST, _fold(lambda: op(left, right)))
    if lkind == _CONST:
        if left is None:
            return (_CONST, False)
        return (
            _VEC,
            lambda frame: [
                False if b is None else op(left, b)
                for b in right(frame)
            ],
        )
    if rkind == _CONST:
        if right is None:
            return (_CONST, False)
        return (
            _VEC,
            lambda frame: [
                False if a is None else op(a, right)
                for a in left(frame)
            ],
        )
    return (
        _VEC,
        lambda frame: [
            False if a is None or b is None else op(a, b)
            for a, b in zip(left(frame), right(frame))
        ],
    )


def _compile_junction(
    items: Sequence[ast.Expr],
    attrs: Tuple[str, ...],
    combine: Callable[[Tuple[object, ...]], bool],
    neutral: bool,
) -> _Compiled:
    """AND (``combine=all``) / OR (``combine=any``) over item vectors."""
    fns: List[VecFn] = []
    for item in items:
        kind, compiled = _compile_vec(item, attrs)
        if kind == _CONST:
            if bool(compiled) is not neutral:
                # a falsy AND item / truthy OR item decides the junction
                return (_CONST, not neutral)
            continue
        fns.append(compiled)
    if not fns:
        return (_CONST, neutral)

    def run(frame: Frame) -> List[object]:
        columns = [fn(frame) for fn in fns]
        return [combine(values) for values in zip(*columns)]

    return (_VEC, run)


def _compile_between(expr: ast.Between, attrs: Tuple[str, ...]) -> _Compiled:
    okind, inner = _compile_vec(expr.operand, attrs)
    lkind, low = _compile_vec(expr.low, attrs)
    hkind, high = _compile_vec(expr.high, attrs)
    if lkind == _CONST and hkind == _CONST:
        if low is None or high is None:
            return (_CONST, False)
        if okind == _CONST:
            if inner is None:
                return (_CONST, False)
            return (_CONST, _fold(lambda: low <= inner <= high))
        if isinstance(expr.operand, ast.Column):
            pos = _position(attrs, expr.operand.name)
            return (
                _VEC,
                _column_loop(
                    pos, lambda v, _lo=low, _hi=high: _lo <= v <= _hi
                ),
            )
        return (
            _VEC,
            lambda frame: [
                False if v is None else low <= v <= high
                for v in inner(frame)
            ],
        )
    # non-literal bounds: fall back to three compiled vectors
    operand_fn = _as_vec(okind, inner)
    low_fn = _as_vec(lkind, low)
    high_fn = _as_vec(hkind, high)

    def run(frame: Frame) -> List[object]:
        return [
            False
            if v is None or lo is None or hi is None
            else lo <= v <= hi
            for v, lo, hi in zip(
                operand_fn(frame), low_fn(frame), high_fn(frame)
            )
        ]

    return (_VEC, run)


def _as_vec(kind: str, compiled: object) -> VecFn:
    if kind == _VEC:
        return compiled  # type: ignore[return-value]
    return lambda frame: [compiled] * frame.n


def compile_mask(expr: ast.Expr, attrs: Tuple[str, ...]) -> VecFn:
    """Compile a predicate into a per-entry mask kernel over a frame.

    Mask slots carry the exact ``expr.eval`` result (so truthiness — the
    only thing σ consumes — matches the row-at-a-time path bit for bit).
    """
    kind, compiled = _compile_vec(expr, attrs)
    return _as_vec(kind, compiled)


def compile_values(expr: ast.Expr, attrs: Tuple[str, ...]) -> VecFn:
    """Compile a scalar expression into a per-entry value kernel."""
    kind, compiled = _compile_vec(expr, attrs)
    return _as_vec(kind, compiled)


# -- vectorized operator handlers ---------------------------------------------
#
# Drop-in replacements for the executor's row handlers: identical results,
# identical dict/entry ordering, and — for the storage-touching Extend —
# identical probe order, dedup and batching, so every counter the engines
# meter (gets/values/bytes, cache, index, overlay) is mode-invariant.


def _row_handler(node_type: type) -> Callable:
    from repro.kba import executor

    return executor._HANDLERS[node_type]


def _vec_select(
    node: kp.SelectK, ctx, inputs: List[BlockSet]
) -> BlockSet:
    child = inputs[0]
    try:
        mask_fn = compile_mask(node.predicate, child.attrs)
    except CompileError:
        return _row_handler(kp.SelectK)(node, ctx, inputs)
    frame = BlockSetFrame(child)
    mask = mask_fn(frame)
    data: Dict[Row, List[Entry]] = {}
    # compress() filters at C speed; rejected entries cost no Python work
    for key, value, count in compress(frame.triples, mask):
        bucket = data.get(key)
        if bucket is None:
            data[key] = bucket = []
        bucket.append((value, count))
    return BlockSet(child.key_attrs, child.value_attrs, data)


def _merge_projected(
    keys: Iterable[Row],
    values: Iterable[Row],
    counts: List[int],
) -> Dict[Row, List[Entry]]:
    """Bag-merge projected ``(key, value, count)`` streams into BlockSet
    data, preserving the row handlers' first-encounter ordering of both
    keys and per-key value rows.

    When every multiplicity is 1 (the usual case after a Constant leaf or
    an uncompressed fetch) the merge is a single C-level ``Counter`` pass
    over the zipped pairs; ``Counter`` keeps first-encounter order, so the
    regroup loop below reproduces the exact dict/entry order of the
    general path.
    """
    if len(counts) == counts.count(1):
        merged = Counter(zip(keys, values))
        data: Dict[Row, List[Entry]] = {}
        for (out_key, out_value), count in merged.items():
            bucket = data.get(out_key)
            if bucket is None:
                data[out_key] = bucket = []
            bucket.append((out_value, count))
        return data
    grouped: Dict[Row, Dict[Row, int]] = defaultdict(dict)
    for out_key, out_value, count in zip(keys, values, counts):
        bucket = grouped[out_key]
        bucket[out_value] = bucket.get(out_value, 0) + count
    return {key: list(bucket.items()) for key, bucket in grouped.items()}


def _project_positions(
    child: BlockSet, kept: Tuple[str, ...]
) -> Tuple[Tuple[str, ...], Tuple[str, ...], List[int], List[int]]:
    kept_set = set(kept)
    new_key = tuple(a for a in child.key_attrs if a in kept_set)
    new_value = tuple(a for a in kept if a not in set(new_key))
    positions_key = [child.position(a) for a in new_key]
    positions_value = [child.position(a) for a in new_value]
    return new_key, new_value, positions_key, positions_value


def _vec_project(
    node: kp.ProjectK, ctx, inputs: List[BlockSet]
) -> BlockSet:
    child = inputs[0]
    new_key, new_value, positions_key, positions_value = _project_positions(
        child, tuple(node.attrs)
    )
    frame = BlockSetFrame(child)
    key_cols = [frame.values(p) for p in positions_key]
    value_cols = [frame.values(p) for p in positions_value]
    keys: Iterable[Row] = zip(*key_cols) if key_cols else repeat((), frame.n)
    values: Iterable[Row] = (
        zip(*value_cols) if value_cols else repeat((), frame.n)
    )
    data = _merge_projected(keys, values, frame.counts)
    return BlockSet(new_key, new_value, data)


def _vec_copy(node: kp.CopyK, ctx, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    sources = [child.position(src) for src, _ in node.copies]
    new_names = tuple(dst for _, dst in node.copies)
    frame = BlockSetFrame(child)
    source_cols = [frame.values(p) for p in sources]
    extras = list(zip(*source_cols)) if source_cols else [()] * frame.n
    data: Dict[Row, List[Entry]] = {}
    for (key, value, count), extra in zip(frame.triples, extras):
        bucket = data.get(key)
        if bucket is None:
            data[key] = bucket = []
        bucket.append((value + extra, count))
    return BlockSet(child.key_attrs, child.value_attrs + new_names, data)


def _vec_join(node: kp.JoinK, ctx, inputs: List[BlockSet]) -> BlockSet:
    left, right = inputs
    return join_blocksets_vectorized(left, right, node.on, node.residual)


def join_blocksets_vectorized(
    left: BlockSet,
    right: BlockSet,
    on: Tuple[Tuple[str, str], ...],
    residual: Optional[ast.Expr] = None,
) -> BlockSet:
    """Hash-join two block sets via the frame-level hash_probe kernel."""
    residual_fn: Optional[RowFn] = None
    if residual is not None:
        try:
            residual_fn = compile_row(residual, left.attrs + right.attrs)
        except CompileError:
            from repro.kba import executor

            return executor.join_blocksets(left, right, on, residual)
    left_pos = [left.position(name) for name, _ in on]
    right_pos = [right.position(name) for _, name in on]
    left_frame = BlockSetFrame(left)
    right_frame = BlockSetFrame(right)
    matches = hash_probe(right_frame, right_pos, left_frame, left_pos)
    right_fulls = [key + value for key, value, _ in right_frame.triples]
    right_counts = right_frame.counts
    n_left_key = len(left.key_attrs)
    n_right_key = len(right.key_attrs)
    data: Dict[Row, List[Entry]] = defaultdict(list)
    for (lkey, lvalue, lcount), hits in zip(left_frame.triples, matches):
        if not hits:
            continue
        lfull = lkey + lvalue
        for j in hits:
            rfull = right_fulls[j]
            if residual_fn is not None and not residual_fn(lfull + rfull):
                continue
            key = lfull[:n_left_key] + rfull[:n_right_key]
            value = lfull[n_left_key:] + rfull[n_right_key:]
            data[key].append((value, lcount * right_counts[j]))
    return BlockSet(
        left.key_attrs + right.key_attrs,
        left.value_attrs + right.value_attrs,
        dict(data),
    )


def _vec_group(node: kp.GroupK, ctx, inputs: List[BlockSet]) -> BlockSet:
    child = inputs[0]
    return group_blockset_vectorized(child, node.keys, node.aggs)


def group_blockset_vectorized(
    child: BlockSet, keys: Tuple[str, ...], aggs: Tuple[AggSpec, ...]
) -> BlockSet:
    """γ via the frame-level group_fold kernel (compiled agg arguments)."""
    attrs = child.attrs
    try:
        value_fns = [
            None if spec.arg is None else compile_values(spec.arg, attrs)
            for spec in aggs
        ]
    except CompileError:
        from repro.kba import executor

        return executor.group_blockset(child, keys, aggs)
    frame = BlockSetFrame(child)
    key_positions = [child.position(k) for k in keys]
    arg_columns = [
        None if fn is None else fn(frame) for fn in value_fns
    ]

    def fresh() -> List:
        return [make_accumulator(a.func, a.distinct) for a in aggs]

    groups = group_fold(frame, key_positions, arg_columns, fresh)
    if not keys and not groups:
        groups[()] = fresh()
    data = {
        key: [(tuple(acc.result() for acc in accs), 1)]
        for key, accs in groups.items()
    }
    return BlockSet(keys, tuple(a.name for a in aggs), data)


def _vec_extend(node: kp.Extend, ctx, inputs: List[BlockSet]) -> BlockSet:
    """Extend with columnar probe construction.

    Probe collection order, the dedup set, and the batch chunking are
    byte-identical to the row handler, so ``multi_get`` sees the same
    batches and every storage counter matches the row-at-a-time mode.
    """
    from repro.errors import PlanError
    from repro.kba.executor import _probe_batches

    child = inputs[0]
    instance = ctx.instance(node.kv_name)
    schema = instance.schema
    alias = node.alias

    probe_of: Dict[str, str] = {kv: c for c, kv in node.on}
    if set(probe_of) != set(schema.key):
        raise PlanError(
            f"extend on {schema.name}: probe attrs {sorted(probe_of)} "
            f"must cover key {schema.key}"
        )
    child_attrs = child.attrs
    probe_positions = [
        child_attrs.index(probe_of[kv_attr]) for kv_attr in schema.key
    ]
    exposed_names = tuple(name for _, name in node.expose_key)
    exposed_positions = [
        schema.key.index(kv_attr) for kv_attr, _ in node.expose_key
    ]
    rename = dict(node.value_rename)
    value_attrs = tuple(
        rename.get(a, f"{alias}.{a}") for a in schema.value
    )

    frame = BlockSetFrame(child)
    probe_cols = [frame.values(p) for p in probe_positions]
    probe_tuples: List[Row] = (
        list(zip(*probe_cols)) if probe_cols else [()] * frame.n
    )

    probes: List[Row] = []
    seen = set()
    for probe in probe_tuples:
        if None in probe or probe in seen:
            continue
        seen.add(probe)
        probes.append(probe)

    fetched: Dict[Row, Optional[Block]] = {}
    for batch in _probe_batches(probes, ctx.batch_size, ctx.batch_partitions):
        fetched.update(instance.multi_get(batch))

    data: Dict[Row, List[Entry]] = {}
    for (key, value, count), probe in zip(frame.triples, probe_tuples):
        if None in probe:
            continue
        block = fetched[probe]
        if block is None:
            continue
        out_key = (
            key + value + tuple(probe[p] for p in exposed_positions)
        )
        bucket = data.get(out_key)
        if bucket is None:
            data[out_key] = bucket = []
        for row, block_count in block.entries:
            bucket.append((row, block_count * count))
    return BlockSet(child_attrs + exposed_names, value_attrs, data)


#: vectorized replacements; node types not listed here fall back to the
#: row handlers (leaves and set operations, which have no per-row
#: expression work to compile away)
VEC_HANDLERS: Dict[type, Callable] = {
    kp.SelectK: _vec_select,
    kp.ProjectK: _vec_project,
    kp.CopyK: _vec_copy,
    kp.JoinK: _vec_join,
    kp.GroupK: _vec_group,
    kp.Extend: _vec_extend,
}


# -- plan compilation ---------------------------------------------------------

PlanFn = Callable[..., BlockSet]


def _fused_select_project(
    select: kp.SelectK, project: kp.ProjectK, child: BlockSet, ctx
) -> BlockSet:
    """σ+π as one mask-and-take pass over the child's frame."""
    try:
        mask_fn = compile_mask(select.predicate, child.attrs)
    except CompileError:
        selected = _row_handler(kp.SelectK)(select, ctx, [child])
        return _vec_project(project, ctx, [selected])
    new_key, new_value, positions_key, positions_value = _project_positions(
        child, tuple(project.attrs)
    )
    frame = BlockSetFrame(child)
    mask = mask_fn(frame)
    # Mask-and-take column by column: compress() filters and zip() builds
    # the output tuples at C speed, so the only per-row Python work left
    # is the bag-semantics dict merge.
    counts = list(compress(frame.counts, mask))
    keys: Iterable[Row]
    values: Iterable[Row]
    if positions_key:
        keys = zip(*[compress(frame.values(p), mask) for p in positions_key])
    else:
        keys = repeat((), len(counts))
    if positions_value:
        values = zip(
            *[compress(frame.values(p), mask) for p in positions_value]
        )
    else:
        values = repeat((), len(counts))
    data = _merge_projected(keys, values, counts)
    return BlockSet(new_key, new_value, data)


def compile_plan(node: kp.KBANode) -> PlanFn:
    """Compile a KBA plan into a chain of closures, fusing σ+π pairs.

    The returned callable takes an :class:`ExecContext` and produces the
    plan's BlockSet. Operator dispatch, expression compilation and the
    fusion decision all happen once, here — running the plan re-executes
    only the compiled kernels.
    """
    if isinstance(node, kp.ProjectK) and isinstance(node.child, kp.SelectK):
        select = node.child
        inner = compile_plan(select.child)

        def run_fused(ctx) -> BlockSet:
            return _fused_select_project(select, node, inner(ctx), ctx)

        return run_fused
    children = [compile_plan(child) for child in node.children()]

    def run(ctx) -> BlockSet:
        from repro.kba.executor import execute_node

        inputs = [child(ctx) for child in children]
        return execute_node(node, ctx, inputs)

    return run


def run_compiled(node: kp.KBANode, ctx) -> BlockSet:
    """Compile and run a plan (the ``vectorized=True`` execute path)."""
    return compile_plan(node)(ctx)
