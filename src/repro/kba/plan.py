"""KBA plan trees (§4.2).

A KBA plan is like an RA plan, except leaves are constants or KV
instances, with two operators unique to BaaV:

* :class:`Extend` (``∝``) — fetch-by-key "join" whose right operand (a KV
  schema, treated as a parameter) is *never scanned*: the child's rows
  supply the keys.
* :class:`Shift` (``↑``) — re-key an intermediate.

Scan-free plans (§4.2) have only :class:`Constant` leaves; the presence of
a :class:`ScanKV` or :class:`TaaVScan` leaf makes a plan non-scan-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.relational.types import Row
from repro.sql import ast
from repro.sql.algebra import AggSpec


class KBANode:
    """Base class of KBA plan nodes."""

    def children(self) -> Tuple["KBANode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class Constant(KBANode):
    """A constant keyed block: the leaf of scan-free plans."""

    attrs: Tuple[str, ...]
    keys: Tuple[Row, ...]

    def _label(self) -> str:
        preview = ", ".join(repr(k) for k in self.keys[:3])
        return f"Constant({', '.join(self.attrs)} = [{preview}])"


@dataclass
class ScanKV(KBANode):
    """Scan a whole KV instance (non-scan-free leaf, still block-local)."""

    kv_name: str
    alias: str

    def _label(self) -> str:
        return f"ScanKV({self.kv_name} AS {self.alias})"


@dataclass
class TaaVScan(KBANode):
    """Scan the TaaV store of a relation (fallback when R̃ has no coverage)."""

    relation: str
    alias: str

    def _label(self) -> str:
        return f"TaaVScan({self.relation} AS {self.alias})"


@dataclass
class IndexProbe(KBANode):
    """Fetch an alias through a secondary index: probe the index for the
    primary keys matching a non-key predicate, then ``multi_get`` the
    matching tuples from the TaaV store.

    Either an equality probe (``eq_values`` non-empty; hash or ordered
    index) or a bounded range walk (``lo``/``hi``; ordered index). The
    probe touches O(result) index entries and tuples, so — like the ∝
    chain — it is a *bounded* access path, not a scan: plans whose only
    leaves are constants and index probes count as scan-free.
    """

    relation: str
    alias: str
    attr: str            # indexed attribute (unqualified)
    kind: str            # "hash" | "ordered"
    eq_values: Tuple[object, ...] = ()
    lo: object = None
    hi: object = None
    lo_strict: bool = False
    hi_strict: bool = False

    def _label(self) -> str:
        from repro.index.selection import describe_predicate

        pred = describe_predicate(
            self.attr,
            self.eq_values,
            self.lo,
            self.hi,
            self.lo_strict,
            self.hi_strict,
        )
        return (
            f"IndexProbe({self.relation} AS {self.alias} "
            f"via {self.kind} {pred})"
        )


@dataclass
class Extend(KBANode):
    """``child ∝ R̃``: extend child rows by fetching blocks of ``kv_name``.

    ``on`` maps child attributes onto the KV schema's key attributes (in
    key order); fetched value attributes are exposed as ``alias.attr``.
    """

    child: KBANode
    kv_name: str
    alias: str
    on: Tuple[Tuple[str, str], ...]  # (child attr, kv key attr)
    expose_key: Tuple[Tuple[str, str], ...] = ()
    # (kv key attr, exposed qualified name) for key attrs of the alias that
    # downstream operators reference; their values come from the probe.
    value_rename: Tuple[Tuple[str, str], ...] = ()
    # (kv value attr, output qualified name) overrides for fetched value
    # attributes whose default name ``alias.attr`` would collide with an
    # attribute already materialized (secondary fetches of one alias).

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        on = ", ".join(f"{c}->{k}" for c, k in self.on)
        return f"Extend(∝ {self.kv_name} AS {self.alias} on {on})"


@dataclass
class Shift(KBANode):
    """``child ↑ X'``: re-key the intermediate result."""

    child: KBANode
    new_key: Tuple[str, ...]

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Shift(↑ {', '.join(self.new_key)})"


@dataclass
class SelectK(KBANode):
    """σ over keyed blocks."""

    child: KBANode
    predicate: ast.Expr

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"SelectK({self.predicate})"


@dataclass
class ProjectK(KBANode):
    """π over keyed blocks (merges multiplicities)."""

    child: KBANode
    attrs: Tuple[str, ...]

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"ProjectK({', '.join(self.attrs)})"


@dataclass
class CopyK(KBANode):
    """Duplicate columns under new names (materialize term-mates).

    Equality transitivity (GET rule (b)) makes an attribute available when
    a term-mate is materialized; CopyK realizes it as an actual column so
    downstream operators can reference it by name.
    """

    child: KBANode
    copies: Tuple[Tuple[str, str], ...]  # (source attr, new attr)

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        inner = ", ".join(f"{s}->{d}" for s, d in self.copies)
        return f"CopyK({inner})"


@dataclass
class JoinK(KBANode):
    """⋈ of two keyed-block sets on equality pairs."""

    left: KBANode
    right: KBANode
    on: Tuple[Tuple[str, str], ...]
    residual: Optional[ast.Expr] = None

    def children(self) -> Tuple[KBANode, ...]:
        return (self.left, self.right)

    def _label(self) -> str:
        on = ", ".join(f"{l}={r}" for l, r in self.on) or "TRUE"
        return f"JoinK({on})"


@dataclass
class UnionK(KBANode):
    """Bag union of two aligned block sets."""

    left: KBANode
    right: KBANode

    def children(self) -> Tuple[KBANode, ...]:
        return (self.left, self.right)


@dataclass
class DifferenceK(KBANode):
    """Bag difference of two aligned block sets."""

    left: KBANode
    right: KBANode

    def children(self) -> Tuple[KBANode, ...]:
        return (self.left, self.right)


@dataclass
class GroupK(KBANode):
    """group-by aggregate over keyed blocks."""

    child: KBANode
    keys: Tuple[str, ...]
    aggs: Tuple[AggSpec, ...]

    def children(self) -> Tuple[KBANode, ...]:
        return (self.child,)

    def _label(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"GroupK([{', '.join(self.keys)}]; {aggs})"


@dataclass
class StatsGroup(KBANode):
    """Aggregate a whole KV instance grouped by its key using block stats.

    The fast path of §8.2 feature (2): when a query groups an instance
    ``⟨X, Y⟩`` by exactly ``X`` and aggregates single ``Y`` attributes,
    the per-block statistics answer it without reading any block rows.
    """

    kv_name: str
    alias: str
    aggs: Tuple[AggSpec, ...]

    def _label(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"StatsGroup({self.kv_name} AS {self.alias}; {aggs})"


def walk(node: KBANode):
    yield node
    for child in node.children():
        yield from walk(child)


def is_scan_free(plan: KBANode) -> bool:
    """A KBA plan is scan-free iff every leaf is bounded (§4.2, extended).

    The paper's leaves are constants; an :class:`IndexProbe` is likewise
    bounded — O(result) index entries plus keyed fetches — so it keeps a
    plan scan-free, while :class:`ScanKV`/:class:`TaaVScan`/
    :class:`StatsGroup` leaves do not.
    """
    return not any(
        isinstance(n, (ScanKV, TaaVScan, StatsGroup)) for n in walk(plan)
    )


def kv_schemas_used(plan: KBANode) -> List[str]:
    names: List[str] = []
    for node in walk(plan):
        if isinstance(node, (Extend, ScanKV, StatsGroup)):
            names.append(node.kv_name)
    return names
