"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the subsystems:
relational schema errors, SQL front-end errors, KV storage errors, BaaV
model errors and Zidian planning errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LockError(ReproError):
    """A concurrency primitive was misused (e.g. ``release_write`` by a
    thread that does not own the write lock). Raised by
    :mod:`repro.locks`; always a caller bug, never a transient state."""


class LockOrderError(LockError):
    """The runtime lock-order sanitizer (``REPRO_LOCKDEP=1``, see
    :mod:`repro.lockdep`) observed acquisition orderings that form a
    cycle — a latent deadlock. The message carries the witness stacks
    of both sides of the inverted ordering."""


class SchemaError(ReproError):
    """Invalid relational or KV schema definition or usage."""


class UnknownRelationError(SchemaError):
    """A relation name was not found in the database schema."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute name was not found in a relation or block schema."""

    def __init__(self, attr: str, where: str = "") -> None:
        suffix = f" in {where}" if where else ""
        super().__init__(f"unknown attribute: {attr!r}{suffix}")
        self.attr = attr


class TypeMismatchError(SchemaError):
    """A value did not match the declared attribute type."""


class SQLError(ReproError):
    """Base class for SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SQLAnalysisError(SQLError):
    """The SQL parsed but failed semantic analysis (binding, typing)."""


class UnsupportedSQLError(SQLError):
    """The SQL uses a feature outside the supported subset."""


class KVError(ReproError):
    """Base class for KV storage errors."""


class KeyNotFoundError(KVError):
    """``get`` was called for a key that is not present."""


class ClusterUnavailableError(KVError):
    """No live node can serve the request (every cluster node is down).

    Preference lists are recomputed over live nodes, so as long as any
    node is up a request is routed somewhere; with fewer surviving
    replicas than data copies the routed read may simply miss (silent
    degradation), which is the R=1 crash behavior the failover tests
    document.
    """


class CodecError(KVError):
    """A value could not be encoded to or decoded from bytes."""


class WireProtocolError(KVError):
    """A wire frame violates the node protocol (truncated length
    prefix, oversized declared length, unknown opcode, trailing or
    missing payload bytes). Raised by the codec on both sides; a node
    server answers with a protocol-error frame instead of dying."""


class DurabilityError(KVError):
    """On-disk durability state is unusable: a checkpoint file fails its
    magic/CRC validation, a WAL record declares an impossible length
    mid-log, or a data directory cannot be laid out the way recovery
    needs. A *torn final WAL record* is NOT this error — a torn tail is
    expected crash debris and replay discards it cleanly."""


class RemoteOpError(KVError):
    """A node server executed the request and reported an application
    error (the remote exception's message travels back in the frame)."""


class NodePeerError(KVError):
    """A node process is unreachable: connect refused, connection reset
    mid-request, or the peer closed without answering. The cluster maps
    this to failover (mark the peer down, re-replicate, retry) and only
    surfaces :class:`ClusterUnavailableError` when no replica is left."""

    def __init__(self, node_id: int, message: str) -> None:
        super().__init__(f"node {node_id}: {message}")
        self.node_id = node_id


class BaaVError(ReproError):
    """Base class for BaaV model errors."""


class NotPreservedError(BaaVError):
    """A query is not result-preserved by the available BaaV schema."""


class PlanError(ReproError):
    """A KBA or RA plan could not be generated or executed."""


class ExecutionError(ReproError):
    """A plan failed during execution."""


class CompileError(ExecutionError):
    """An expression or plan fragment is outside the vectorizing
    compiler's subset (aggregate calls, unknown operators, unbound
    columns). Internal to :mod:`repro.kba.compile`: handlers catch it
    and fall back to row-at-a-time execution, so it never escapes to
    callers of a vectorized plan."""


class ServiceError(ReproError):
    """Base class for query-service errors."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the query: pool and queue are both full.

    Load shedding is the service's back-pressure signal — clients are
    expected to back off and retry rather than pile onto an already
    saturated pool (the closed-loop traffic driver does exactly that).
    """


class ServiceClosedError(ServiceError):
    """The service (or the session) is draining or closed."""


class QueryDeadlineError(ServiceError):
    """The query's deadline expired before a worker could start it."""


class TransactionError(ServiceError):
    """A multi-statement transaction was misused: a statement or commit
    after the transaction already committed/aborted, an unpin of an
    epoch that was never pinned, or a transaction surface invoked on a
    system without MVCC enabled. Always a caller bug — a *failed*
    commit surfaces as the underlying storage/execution error, not as
    this type."""
