"""Hash partitioning of intermediates over workers, with skew metrics.

§7.2 proves parallel scalability under the assumption that data "is not
skewed". The cost model follows the paper and divides work evenly; this
module makes the assumption *checkable*: it computes the actual hash
partitioning a shuffle would produce and the resulting skew factor
(max partition / mean partition), which the engines record per stage.
A skew factor near 1.0 validates the even-division model; large factors
flag where the paper's guarantee would degrade on real deployments.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

from repro.kba.blockset import BlockSet
from repro.relational.types import Row, row_size


def _bucket(key: Row, n: int) -> int:
    digest = hashlib.md5(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") % n


def partition_keys(keys: Iterable[Row], n: int) -> List[int]:
    """Count of keys landing on each of ``n`` workers."""
    counts = [0] * max(1, n)
    for key in keys:
        counts[_bucket(key, max(1, n))] += 1
    return counts


def partition_blockset(blockset: BlockSet, n: int) -> List[int]:
    """Bytes of a block set shipped to each worker when hash-partitioned
    by its key attributes (the repartitioning of an interleaved ∝)."""
    sizes = [0] * max(1, n)
    for key, entries in blockset.data.items():
        bucket = _bucket(key, max(1, n))
        key_size = row_size(key)
        for row, _count in entries:
            sizes[bucket] += key_size + row_size(row) + 4
    return sizes


def partition_rows(
    rows: Sequence[Row], key_positions: Sequence[int], n: int
) -> List[int]:
    """Bytes per worker when rows shuffle on the given key positions."""
    sizes = [0] * max(1, n)
    for row in rows:
        key = tuple(row[p] for p in key_positions)
        sizes[_bucket(key, max(1, n))] += row_size(row)
    return sizes


def skew_factor(sizes: Sequence[int]) -> float:
    """max/mean of the partition sizes; 1.0 = perfectly even, the §7.2
    assumption. Empty input reports 1.0 (nothing to skew)."""
    total = sum(sizes)
    if total <= 0 or not sizes:
        return 1.0
    mean = total / len(sizes)
    return max(sizes) / mean


def blockset_skew(blockset: BlockSet, n: int) -> float:
    return skew_factor(partition_blockset(blockset, n))
