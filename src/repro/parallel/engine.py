"""Parallel execution engines (§7).

Two strategies over the same storage substrate:

* :class:`BaselineEngine` — the conventional SQL-over-NoSQL strategy of
  §7.1: retrieve *entire relations* from the TaaV store (one get per
  tuple), ship them to the SQL layer, then evaluate the RA plan with
  parallel hash joins (each join shuffles both inputs).
* :class:`ZidianEngine` — the interleaved parallelization of §7.2: walk
  the KBA plan operator by operator; an ``∝`` repartitions the current
  intermediate by the target's key distribution (shuffle of the
  intermediate only), then fetches just the needed blocks; scans touch KV
  instances (block-local, fewer gets); joins and group-bys shuffle like
  the baseline but on the much smaller intermediates.

Both engines execute *for real* (results are exact and compared against
the reference executor in tests) while counting gets / values / bytes and
converting them into simulated time with :class:`CostModel`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.baav.store import BaaVStore
from repro.core.plangen import ZidianPlan, substitute_table
from repro.errors import CompileError, ExecutionError
from repro.kba import plan as kp
from repro.kba.blockset import BlockSet
from repro.kba.compile import compile_row
from repro.kba.executor import (
    DEFAULT_BATCH_SIZE,
    ExecContext,
    execute_node,
    resolve_vectorized,
)
from repro.kv.backends import BackendProfile
from repro.kv.cluster import KVCluster
from repro.kv.node import NodeCounters
from repro.kv.taav import TaaVStore
from repro.parallel.costmodel import CostModel
from repro.parallel.partitioner import blockset_skew
from repro.parallel.metrics import ExecutionMetrics, StageCost
from repro.relational.database import Database
from repro.relational.types import row_size
from repro.sql import algebra
from repro.sql.executor import (
    Table,
    group_table,
    join_tables,
    run as ra_run,
    sort_rows,
)


def _table_bytes(table: Table) -> int:
    return sum(row_size(r) for r in table.rows)


def _table_values(table: Table) -> int:
    return len(table.rows) * len(table.attrs)


class _CounterProbe:
    """Snapshot/diff of the CALLING THREAD's cluster counters.

    A query executes on one thread, and the node counters are
    thread-sharded, so diffing the thread's own shards attributes
    exactly this query's I/O to its stages — even while the query
    service runs other queries on other threads against the same nodes.
    """

    def __init__(self, cluster: KVCluster) -> None:
        self.cluster = cluster
        self._last = self._snapshot()

    def _snapshot(self) -> NodeCounters:
        return self.cluster.thread_counters()

    def delta(self) -> NodeCounters:
        now = self._snapshot()
        diff = NodeCounters(
            gets=now.gets - self._last.gets,
            hits=now.hits - self._last.hits,
            puts=now.puts - self._last.puts,
            deletes=now.deletes - self._last.deletes,
            values_read=now.values_read - self._last.values_read,
            values_written=now.values_written - self._last.values_written,
            bytes_out=now.bytes_out - self._last.bytes_out,
            bytes_in=now.bytes_in - self._last.bytes_in,
            round_trips=now.round_trips - self._last.round_trips,
        )
        self._last = now
        return diff


class _CacheProbe:
    """Snapshot/diff of the calling thread's block-cache hit/miss shard
    (cache may be ``None``, in which case every delta is zero)."""

    def __init__(self, cache) -> None:
        self.cache = cache
        self._hits, self._misses = self._snapshot()

    def _snapshot(self) -> Tuple[int, int]:
        if self.cache is None:
            return 0, 0
        stats = self.cache.thread_stats()
        return stats.hits, stats.misses

    def delta(self) -> Tuple[int, int]:
        hits, misses = self._snapshot()
        diff = (hits - self._hits, misses - self._misses)
        self._hits, self._misses = hits, misses
        return diff


class _IndexStatsProbe:
    """Snapshot/diff of an index manager's probe/posting counters
    (manager may be ``None``, in which case every delta is zero)."""

    def __init__(self, indexes) -> None:
        self.indexes = indexes
        self._probes, self._postings = self._snapshot()

    def _snapshot(self) -> Tuple[int, int]:
        if self.indexes is None:
            return 0, 0
        return self.indexes.stats.snapshot()

    def delta(self) -> Tuple[int, int]:
        probes, postings = self._snapshot()
        diff = (probes - self._probes, postings - self._postings)
        self._probes, self._postings = probes, postings
        return diff


class _SnapshotProbe:
    """Snapshot/diff of the calling thread's MVCC overlay shard
    (cluster without an attached overlay: every delta is zero)."""

    def __init__(self, cluster: KVCluster) -> None:
        self.versions = cluster.versions
        self._reads, self._skipped = self._snapshot()

    def _snapshot(self) -> Tuple[int, int]:
        if self.versions is None:
            return 0, 0
        stats = self.versions.thread_stats()
        return stats.overlay_reads, stats.versions_skipped

    def delta(self) -> Tuple[int, int]:
        reads, skipped = self._snapshot()
        diff = (reads - self._reads, skipped - self._skipped)
        self._reads, self._skipped = reads, skipped
        return diff

    def epoch(self) -> int:
        """The calling thread's pinned epoch (-1 = latest-state read)."""
        if self.versions is None:
            return -1
        epoch = self.versions.read_epoch()
        return -1 if epoch is None else epoch

    def finish(self, metrics: ExecutionMetrics) -> None:
        """Stamp the query's snapshot metadata onto its metrics."""
        metrics.snapshot_epoch = self.epoch()
        overlay_reads, versions_skipped = self.delta()
        if overlay_reads:
            # the overlay's client-side reads cost zero #get / round
            # trips; surfaced as their own stage so breakdowns show
            # how much of the query the version chains answered
            metrics.add_stage(
                StageCost(
                    "snapshot overlay",
                    overlay_reads=overlay_reads,
                    versions_skipped=versions_skipped,
                )
            )


class BaselineEngine:
    """Fetch-all SQL-over-NoSQL evaluation over a TaaV store (§7.1).

    With an index manager attached, a selection directly above a scan
    leaf is answered through an **index probe → multi_get** access path
    when a usable secondary index exists — the conventional engine's
    only escape from fetch-all — and the chosen path per alias is
    recorded in :attr:`access` for EXPLAIN-style inspection.
    """

    def __init__(
        self,
        taav: TaaVStore,
        cluster: KVCluster,
        profile: BackendProfile,
        workers: int,
        batch_size: int = 1,
        cache=None,
        indexes=None,
        vectorized: Optional[bool] = None,
    ) -> None:
        self.taav = taav
        self.cluster = cluster
        self.profile = profile
        self.workers = workers
        # 1 = the paper's per-key baseline; >1 models a client that
        # coalesces its scan-driven gets into multi-get round trips
        self.batch_size = batch_size
        # the client-side block cache the TaaV store reads through (only
        # probed here for per-stage hit/miss attribution)
        self.cache = cache
        #: optional repro.index.IndexManager enabling index access paths
        self.indexes = indexes
        #: compiled positional filters/projections instead of per-row
        #: eval dicts; None defers to REPRO_VECTORIZED (PR 10). Storage
        #: counters and simulated cost are identical across modes.
        self.vectorized = resolve_vectorized(vectorized)
        #: alias -> access-path description of the last execute()
        self.access: Dict[str, str] = {}
        # storage service time spreads over the LIVE nodes only —
        # a failed node serves nothing
        self.model = CostModel(profile, workers, cluster.num_live_nodes)

    def execute(
        self, ra_plan: algebra.PlanNode
    ) -> Tuple[Table, ExecutionMetrics]:
        start = time.perf_counter()
        metrics = ExecutionMetrics(
            workers=self.workers,
            storage_nodes=self.cluster.num_live_nodes,
            backend=self.profile.name,
        )
        metrics.add_stage(self.model.job_overhead())
        probe = _CounterProbe(self.cluster)
        cache_probe = _CacheProbe(self.cache)
        snapshot_probe = _SnapshotProbe(self.cluster)
        self.access = {}
        table = self._run(ra_plan, metrics, probe, cache_probe)
        snapshot_probe.finish(metrics)
        metrics.wall_time_ms = (time.perf_counter() - start) * 1000.0
        return table, metrics

    def describe_access(self, ra_plan: algebra.PlanNode) -> Dict[str, str]:
        """Access path per alias, without executing (EXPLAIN)."""
        out: Dict[str, str] = {}

        def walk(node: algebra.PlanNode) -> None:
            if isinstance(node, algebra.SelectNode) and isinstance(
                node.child, algebra.ScanNode
            ):
                scan = node.child
                choice = self._choose_index(scan, node.predicate)
                out[scan.alias] = (
                    f"{scan.relation}: index probe ({choice.describe()}) "
                    f"-> multi_get"
                    if choice is not None
                    else f"{scan.relation}: taav scan (fetch-all)"
                )
                return
            if isinstance(node, algebra.ScanNode):
                out[node.alias] = f"{node.relation}: taav scan (fetch-all)"
                return
            for child in node.children():
                walk(child)

        walk(ra_plan)
        return out

    # -- recursive walker -------------------------------------------------------

    def _run(
        self,
        node: algebra.PlanNode,
        metrics: ExecutionMetrics,
        probe: _CounterProbe,
        cache_probe: _CacheProbe,
    ) -> Table:
        if isinstance(node, algebra.ScanNode):
            return self._scan(node, metrics, probe, cache_probe)
        if isinstance(node, algebra.SelectNode):
            if isinstance(node.child, algebra.ScanNode):
                fetched = self._index_scan(
                    node.child, node.predicate, metrics, probe, cache_probe
                )
                if fetched is not None:
                    return fetched
            child = self._run(node.child, metrics, probe, cache_probe)
            rows = self._filter_rows(node.predicate, child.attrs, child.rows)
            metrics.add_stage(
                self.model.compute_stage("select", _table_values(child))
            )
            return Table(child.attrs, rows)
        if isinstance(node, algebra.ProjectNode):
            child = self._run(node.child, metrics, probe, cache_probe)
            table = self._project(node, child)
            metrics.add_stage(
                self.model.compute_stage("project", _table_values(child))
            )
            return table
        if isinstance(node, (algebra.JoinNode, algebra.CrossNode)):
            left = self._run(node.left, metrics, probe, cache_probe)
            right = self._run(node.right, metrics, probe, cache_probe)
            equi = node.equi if isinstance(node, algebra.JoinNode) else []
            residual = (
                node.residual if isinstance(node, algebra.JoinNode) else None
            )
            out = join_tables(left, right, equi, residual)
            shuffle = _table_bytes(left) + _table_bytes(right)
            metrics.add_stage(
                self.model.shuffle_stage(
                    "join",
                    shuffle,
                    _table_values(left)
                    + _table_values(right)
                    + _table_values(out),
                )
            )
            return out
        if isinstance(node, algebra.GroupByNode):
            child = self._run(node.child, metrics, probe, cache_probe)
            out = group_table(child, node.keys, node.key_names, node.aggs)
            metrics.add_stage(
                self.model.shuffle_stage(
                    "group-by", _table_bytes(child), _table_values(child)
                )
            )
            return out
        if isinstance(node, algebra.DistinctNode):
            child = self._run(node.child, metrics, probe, cache_probe)
            seen = set()
            rows = []
            for row in child.rows:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
            metrics.add_stage(
                self.model.shuffle_stage(
                    "distinct", _table_bytes(child), _table_values(child)
                )
            )
            return Table(child.attrs, rows)
        if isinstance(node, algebra.OrderByNode):
            child = self._run(node.child, metrics, probe, cache_probe)
            rows = sort_rows(child, node.keys)
            metrics.add_stage(
                self.model.shuffle_stage(
                    "order-by", _table_bytes(child), _table_values(child)
                )
            )
            return Table(child.attrs, rows)
        if isinstance(node, algebra.LimitNode):
            child = self._run(node.child, metrics, probe, cache_probe)
            return Table(child.attrs, child.rows[: node.limit])
        if isinstance(node, algebra.UnionNode):
            left = self._run(node.left, metrics, probe, cache_probe)
            right = self._run(node.right, metrics, probe, cache_probe)
            metrics.add_stage(
                self.model.compute_stage(
                    "union", _table_values(left) + _table_values(right)
                )
            )
            return Table(left.attrs, left.rows + right.rows)
        if isinstance(node, algebra.DifferenceNode):
            from collections import Counter

            left = self._run(node.left, metrics, probe, cache_probe)
            right = self._run(node.right, metrics, probe, cache_probe)
            remaining = Counter(right.rows)
            rows = []
            for row in left.rows:
                if remaining.get(row, 0) > 0:
                    remaining[row] -= 1
                else:
                    rows.append(row)
            metrics.add_stage(
                self.model.shuffle_stage(
                    "difference",
                    _table_bytes(left) + _table_bytes(right),
                    _table_values(left) + _table_values(right),
                )
            )
            return Table(left.attrs, rows)
        if isinstance(node, algebra.TableNode):
            return node.table  # type: ignore[return-value]
        raise ExecutionError(
            f"baseline engine: unsupported node {type(node).__name__}"
        )

    def _filter_rows(self, predicate, attrs, rows) -> List:
        """σ over table rows; compiled positional closure when vectorized.

        The compiled filter returns exactly what ``predicate.eval`` would
        per row; expressions outside the compilable subset fall back to
        the eval path, so the knob never changes results.
        """
        if self.vectorized:
            try:
                fn = compile_row(predicate, tuple(attrs))
            except CompileError:
                pass
            else:
                return [r for r in rows if fn(r)]
        return [
            r for r in rows if predicate.eval(dict(zip(attrs, r)))
        ]

    def _choose_index(self, scan: algebra.ScanNode, predicate):
        """The index path a selection-over-scan admits, if any."""
        from repro.index.selection import choose_from_conjuncts
        from repro.sql import ast

        if self.indexes is None or scan.relation not in self.taav:
            return None
        return choose_from_conjuncts(
            ast.conjuncts(predicate), scan.relation, scan.alias, self.indexes
        )

    def _index_scan(
        self,
        scan: algebra.ScanNode,
        predicate,
        metrics: ExecutionMetrics,
        probe: _CounterProbe,
        cache_probe: _CacheProbe,
    ) -> Optional[Table]:
        """Serve σ(scan) through an index probe; ``None`` when no index
        applies (the caller falls back to fetch-all + filter)."""
        choice = self._choose_index(scan, predicate)
        if choice is None:
            return None
        idx_probe = _IndexStatsProbe(self.indexes)
        if choice.is_equality:
            pks = self.indexes.lookup_eq(
                scan.relation, choice.attr, choice.eq_values
            )
        else:
            pks = self.indexes.lookup_range(
                scan.relation,
                choice.attr,
                lo=choice.lo,
                hi=choice.hi,
                lo_strict=choice.lo_strict,
                hi_strict=choice.hi_strict,
            )
        taav = self.taav.relation(scan.relation)
        fetched: List = []
        step = max(1, self.batch_size)
        for start in range(0, len(pks), step):
            for row in taav.multi_get(pks[start:start + step]):
                if row is not None:
                    fetched.append(row)
        attrs = [
            f"{scan.alias}.{a}" for a in taav.schema.attribute_names
        ]
        # the index answered the chosen conjunct exactly; the FULL
        # predicate is still applied so the other conjuncts hold too
        rows = self._filter_rows(predicate, attrs, fetched)
        delta = probe.delta()
        hits, misses = cache_probe.delta()
        probes, postings = idx_probe.delta()
        metrics.add_stage(
            self.model.index_probe_stage(
                f"index-scan {scan.relation}.{choice.attr}",
                gets=delta.gets,
                values=delta.values_read,
                bytes_out=delta.bytes_out,
                round_trips=delta.round_trips,
                index_probes=probes,
                index_postings=postings,
                cache_hits=hits,
                cache_misses=misses,
            )
        )
        metrics.add_stage(
            self.model.compute_stage(
                "select", len(fetched) * len(attrs)
            )
        )
        self.access[scan.alias] = (
            f"{scan.relation}: index probe ({choice.describe()}) "
            f"-> multi_get"
        )
        return Table(attrs, rows)

    def _scan(
        self,
        node: algebra.ScanNode,
        metrics: ExecutionMetrics,
        probe: _CounterProbe,
        cache_probe: _CacheProbe,
    ) -> Table:
        self.access[node.alias] = (
            f"{node.relation}: taav scan (fetch-all)"
        )
        relation = self.taav.relation(node.relation).fetch_all(
            batch_size=self.batch_size
        )
        delta = probe.delta()
        hits, misses = cache_probe.delta()
        table = Table(
            [f"{node.alias}.{a}" for a in relation.schema.attribute_names],
            list(relation.rows),
        )
        metrics.add_stage(
            self.model.fetch_stage(
                f"scan {node.relation}",
                gets=delta.gets,
                values=delta.values_read,
                bytes_out=delta.bytes_out,
                round_trips=delta.round_trips,
                cache_hits=hits,
                cache_misses=misses,
            )
        )
        return table

    def _project(self, node: algebra.ProjectNode, child: Table) -> Table:
        from repro.sql import ast

        names = [name for name, _ in node.items]
        exprs = [expr for _, expr in node.items]
        if all(isinstance(e, ast.Column) for e in exprs):
            positions = [child.position(e.name) for e in exprs]  # type: ignore[attr-defined]
            rows = [tuple(r[p] for p in positions) for r in child.rows]
            return Table(names, rows)
        if self.vectorized:
            try:
                fns = [compile_row(e, tuple(child.attrs)) for e in exprs]
            except CompileError:
                pass
            else:
                rows = [tuple(fn(r) for fn in fns) for r in child.rows]
                return Table(names, rows)
        rows = []
        for row in child.rows:
            env = dict(zip(child.attrs, row))
            rows.append(tuple(e.eval(env) for e in exprs))
        return Table(names, rows)


class ZidianEngine:
    """Interleaved parallel execution of KBA plans (§7.2)."""

    def __init__(
        self,
        baav: BaaVStore,
        taav: Optional[TaaVStore],
        cluster: KVCluster,
        profile: BackendProfile,
        workers: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache=None,
        indexes=None,
        vectorized: Optional[bool] = None,
    ) -> None:
        self.baav = baav
        self.taav = taav
        self.cluster = cluster
        self.profile = profile
        self.workers = workers
        self.batch_size = batch_size
        # the client-side block cache the stores read through (only
        # probed here for per-stage hit/miss attribution)
        self.cache = cache
        #: optional repro.index.IndexManager serving IndexProbe leaves
        self.indexes = indexes
        # storage service time spreads over the LIVE nodes only —
        # a failed node serves nothing
        self.model = CostModel(profile, workers, cluster.num_live_nodes)
        # each worker partition coalesces its own probe batches; the
        # vectorized knob (None -> REPRO_VECTORIZED) swaps the per-node
        # handlers for compiled columnar kernels. The per-operator walk
        # below is kept either way so each stage is metered separately —
        # stage structure, simulated cost and storage counters are
        # mode-invariant (PR 10).
        self.ctx = ExecContext(
            baav,
            taav,
            batch_size=batch_size,
            batch_partitions=workers,
            indexes=indexes,
            vectorized=vectorized,
        )
        self.vectorized = self.ctx.vectorized

    def execute(
        self, plan: ZidianPlan, database_for_top: Optional[Database] = None
    ) -> Tuple[Table, ExecutionMetrics]:
        """Run the KBA core in the interleaved model, then the RA top."""
        start = time.perf_counter()
        metrics = ExecutionMetrics(
            workers=self.workers,
            storage_nodes=self.cluster.num_live_nodes,
            backend=self.profile.name,
        )
        metrics.add_stage(self.model.job_overhead())
        probe = _CounterProbe(self.cluster)
        cache_probe = _CacheProbe(self.cache)
        snapshot_probe = _SnapshotProbe(self.cluster)
        self._idx_probe = _IndexStatsProbe(self.indexes)
        result = self._run(plan.root, metrics, probe, cache_probe)

        table = Table(result.attrs, list(result.expand()))
        final_plan = substitute_table(plan.ra_plan, plan.replace_node, table)
        # The RA top (order/limit/final projection) over the small result:
        top = ra_run(final_plan, database_for_top or _EMPTY_DB)
        metrics.add_stage(
            self.model.compute_stage("top", _table_values(table))
        )
        snapshot_probe.finish(metrics)
        metrics.wall_time_ms = (time.perf_counter() - start) * 1000.0
        return top, metrics

    # -- recursive walker ------------------------------------------------------

    def _run(
        self,
        node: kp.KBANode,
        metrics: ExecutionMetrics,
        probe: _CounterProbe,
        cache_probe: _CacheProbe,
    ) -> BlockSet:
        inputs = [
            self._run(c, metrics, probe, cache_probe)
            for c in node.children()
        ]
        before = time.perf_counter()
        result = execute_node(node, self.ctx, inputs)
        delta = probe.delta()
        cache_hits, cache_misses = cache_probe.delta()

        if isinstance(node, kp.Constant):
            pass
        elif isinstance(node, kp.Extend):
            # interleaving: repartition the intermediate by the target's
            # key distribution, then fetch only the needed blocks
            child_bytes = inputs[0].size_bytes()
            metrics.add_stage(
                self.model.fetch_stage(
                    f"extend {node.kv_name}",
                    gets=delta.gets,
                    values=delta.values_read,
                    bytes_out=delta.bytes_out,
                    repartition_bytes=child_bytes,
                    round_trips=delta.round_trips,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                )
            )
        elif isinstance(node, kp.IndexProbe):
            probes, postings = self._idx_probe.delta()
            metrics.add_stage(
                self.model.index_probe_stage(
                    f"index-probe {node.relation}.{node.attr}",
                    gets=delta.gets,
                    values=delta.values_read,
                    bytes_out=delta.bytes_out,
                    round_trips=delta.round_trips,
                    index_probes=probes,
                    index_postings=postings,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                )
            )
        elif isinstance(node, (kp.ScanKV, kp.TaaVScan, kp.StatsGroup)):
            label = (
                f"scan {node.kv_name}"
                if isinstance(node, (kp.ScanKV, kp.StatsGroup))
                else f"taav-scan {node.relation}"
            )
            metrics.add_stage(
                self.model.fetch_stage(
                    label,
                    gets=delta.gets,
                    values=delta.values_read,
                    bytes_out=delta.bytes_out,
                    round_trips=delta.round_trips,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                )
            )
        elif isinstance(node, (kp.SelectK, kp.ProjectK, kp.CopyK, kp.Shift)):
            metrics.add_stage(
                self.model.compute_stage(
                    type(node).__name__.lower(), inputs[0].num_values()
                )
            )
        elif isinstance(node, (kp.JoinK, kp.UnionK, kp.DifferenceK)):
            shuffle = sum(i.size_bytes() for i in inputs)
            values = sum(i.num_values() for i in inputs) + result.num_values()
            stage = self.model.shuffle_stage("joink", shuffle, values)
            stage.skew = max(
                blockset_skew(i, self.workers) for i in inputs
            )
            metrics.add_stage(stage)
        elif isinstance(node, kp.GroupK):
            stage = self.model.shuffle_stage(
                "groupk", inputs[0].size_bytes(), inputs[0].num_values()
            )
            stage.skew = blockset_skew(result, self.workers)
            metrics.add_stage(stage)
        else:
            metrics.add_stage(
                self.model.compute_stage(
                    type(node).__name__.lower(),
                    sum(i.num_values() for i in inputs),
                )
            )
        return result


class _EmptyDatabase:
    """Placeholder database for RA tops that only touch TableNodes."""

    def relation(self, name: str):
        raise ExecutionError(
            f"RA top unexpectedly scanned base relation {name!r}"
        )


_EMPTY_DB = _EmptyDatabase()
