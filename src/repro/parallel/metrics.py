"""Execution metrics: the quantities the paper's evaluation reports.

``time`` (simulated ms), ``#data`` (values accessed), ``#get`` (get
invocations) and ``comm`` (bytes shipped) — exactly the columns of
Table 2 — plus a per-stage breakdown for debugging and the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class StageCost:
    """Cost of one plan stage (operator) in the parallel model.

    ``skew`` is the observed max/mean partition ratio of the stage's
    shuffle (1.0 = the even split §7.2 assumes; the cost model divides
    evenly per the paper, so skew is recorded, not priced).
    """

    name: str
    time_ms: float = 0.0
    comm_bytes: int = 0
    gets: int = 0
    values: int = 0
    skew: float = 1.0
    #: client↔node RPCs carrying the gets (== gets when unbatched)
    round_trips: int = 0
    #: block-cache lookups served locally (zero round trips, zero #get)
    cache_hits: int = 0
    #: block-cache lookups that fell through to the storage nodes
    cache_misses: int = 0
    #: bytes migrated between nodes by rebalancing (churn, not queries)
    rebalance_bytes: int = 0
    #: secondary-index entries probed (posting lists / buckets fetched)
    index_probes: int = 0
    #: posting entries read while serving those probes
    index_postings: int = 0
    #: WAL write barriers the stage's puts paid (0 = volatile cluster)
    fsyncs: int = 0
    #: reads served from the MVCC overlay instead of the base (zero
    #: #get — the snapshot's client-side version chains answered them)
    overlay_reads: int = 0
    #: newer versions walked past to reach the snapshot-visible one
    versions_skipped: int = 0

    def __str__(self) -> str:
        out = (
            f"{self.name}: {self.time_ms:.2f}ms, comm={self.comm_bytes}B, "
            f"gets={self.gets}, values={self.values}"
        )
        if self.round_trips and self.round_trips != self.gets:
            out += f", round_trips={self.round_trips}"
        if self.cache_hits or self.cache_misses:
            out += f", cache={self.cache_hits}/{self.cache_hits + self.cache_misses}"
        if self.rebalance_bytes:
            out += f", rebalance={self.rebalance_bytes}B"
        if self.index_probes:
            out += (
                f", idx={self.index_probes}p/{self.index_postings}e"
            )
        if self.fsyncs:
            out += f", fsyncs={self.fsyncs}"
        if self.overlay_reads:
            out += (
                f", overlay={self.overlay_reads}r/"
                f"{self.versions_skipped}skip"
            )
        if self.skew > 1.001:
            out += f", skew={self.skew:.2f}"
        return out


@dataclass
class ExecutionMetrics:
    """Aggregated metrics of one query execution."""

    sim_time_ms: float = 0.0
    wall_time_ms: float = 0.0
    n_get: int = 0
    n_put: int = 0
    n_round_trips: int = 0
    data_values: int = 0
    comm_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rebalance_bytes: int = 0
    index_probes: int = 0
    index_postings: int = 0
    fsyncs: int = 0
    #: the commit epoch this query's snapshot was pinned at (-1 = no
    #: snapshot: MVCC off, or an unpinned latest-state read)
    snapshot_epoch: int = -1
    #: reads the MVCC overlay served instead of the base state
    overlay_reads: int = 0
    #: newer versions skipped to reach the snapshot-visible one
    versions_skipped: int = 0
    #: dead versions reclaimed by the GC this query's unpin triggered
    gc_reclaimed: int = 0
    stages: List[StageCost] = field(default_factory=list)
    workers: int = 1
    storage_nodes: int = 1
    backend: str = ""

    def add_stage(self, stage: StageCost) -> None:
        self.stages.append(stage)
        self.sim_time_ms += stage.time_ms
        self.comm_bytes += stage.comm_bytes
        self.n_get += stage.gets
        self.n_round_trips += stage.round_trips
        self.data_values += stage.values
        self.cache_hits += stage.cache_hits
        self.cache_misses += stage.cache_misses
        self.rebalance_bytes += stage.rebalance_bytes
        self.index_probes += stage.index_probes
        self.index_postings += stage.index_postings
        self.fsyncs += stage.fsyncs
        self.overlay_reads += stage.overlay_reads
        self.versions_skipped += stage.versions_skipped

    @property
    def sim_time_s(self) -> float:
        return self.sim_time_ms / 1000.0

    @property
    def cache_hit_rate(self) -> float:
        """Block-cache hits over lookups; 0.0 when no cache was consulted."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def merge(self, other: "ExecutionMetrics") -> None:
        self.sim_time_ms += other.sim_time_ms
        self.wall_time_ms += other.wall_time_ms
        self.n_get += other.n_get
        self.n_put += other.n_put
        self.n_round_trips += other.n_round_trips
        self.data_values += other.data_values
        self.comm_bytes += other.comm_bytes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.rebalance_bytes += other.rebalance_bytes
        self.index_probes += other.index_probes
        self.index_postings += other.index_postings
        self.fsyncs += other.fsyncs
        # compound sides share one pinned epoch; max() also does the
        # right thing when only one side ran under a snapshot
        self.snapshot_epoch = max(
            self.snapshot_epoch, other.snapshot_epoch
        )
        self.overlay_reads += other.overlay_reads
        self.versions_skipped += other.versions_skipped
        self.gc_reclaimed += other.gc_reclaimed
        self.stages.extend(other.stages)

    def summary(self) -> str:
        out = (
            f"time={self.sim_time_s:.3f}s #get={self.n_get} "
            f"#rt={self.n_round_trips} "
            f"#data={self.data_values} comm={self.comm_bytes / 1e6:.3f}MB "
            f"(wall={self.wall_time_ms:.1f}ms, p={self.workers})"
        )
        if self.cache_hits or self.cache_misses:
            out += f" cache={self.cache_hit_rate:.0%}"
        if self.index_probes:
            out += f" idx={self.index_probes}p/{self.index_postings}e"
        if self.snapshot_epoch >= 0:
            out += f" epoch={self.snapshot_epoch}"
        if self.overlay_reads:
            out += (
                f" overlay={self.overlay_reads}r/"
                f"{self.versions_skipped}skip"
            )
        return out

    def breakdown(self) -> str:
        return "\n".join(str(s) for s in self.stages)


def mean_metrics(metrics: List[ExecutionMetrics]) -> ExecutionMetrics:
    """Element-wise mean, for averaging over a query set."""
    if not metrics:
        return ExecutionMetrics()
    out = ExecutionMetrics(
        workers=metrics[0].workers,
        storage_nodes=metrics[0].storage_nodes,
        backend=metrics[0].backend,
    )
    n = len(metrics)
    out.sim_time_ms = sum(m.sim_time_ms for m in metrics) / n
    out.wall_time_ms = sum(m.wall_time_ms for m in metrics) / n
    out.n_get = sum(m.n_get for m in metrics) // n
    out.n_put = sum(m.n_put for m in metrics) // n
    out.n_round_trips = sum(m.n_round_trips for m in metrics) // n
    out.data_values = sum(m.data_values for m in metrics) // n
    out.comm_bytes = sum(m.comm_bytes for m in metrics) // n
    out.cache_hits = sum(m.cache_hits for m in metrics) // n
    out.cache_misses = sum(m.cache_misses for m in metrics) // n
    out.rebalance_bytes = sum(m.rebalance_bytes for m in metrics) // n
    out.index_probes = sum(m.index_probes for m in metrics) // n
    out.index_postings = sum(m.index_postings for m in metrics) // n
    out.fsyncs = sum(m.fsyncs for m in metrics) // n
    out.overlay_reads = sum(m.overlay_reads for m in metrics) // n
    out.versions_skipped = sum(m.versions_skipped for m in metrics) // n
    out.gc_reclaimed = sum(m.gc_reclaimed for m in metrics) // n
    return out
