"""Parallel evaluation (M3): cost model, metrics and the two engines."""

from repro.parallel.costmodel import CostModel
from repro.parallel.engine import BaselineEngine, ZidianEngine
from repro.parallel.metrics import ExecutionMetrics, StageCost, mean_metrics
from repro.parallel.partitioner import (
    blockset_skew,
    partition_blockset,
    partition_keys,
    partition_rows,
    skew_factor,
)

__all__ = [
    "BaselineEngine",
    "CostModel",
    "ExecutionMetrics",
    "StageCost",
    "ZidianEngine",
    "blockset_skew",
    "partition_blockset",
    "partition_keys",
    "partition_rows",
    "skew_factor",
    "mean_metrics",
]
