"""The parallel cost model (§7).

Plans run operator by operator ("stages"); within a stage, storage work is
spread over the storage nodes, computation and network transfer over the
``p`` workers of the SQL layer. Simulated stage time is

    storage service + network transfer + per-worker compute + overhead

and simulated query time is the sum over stages plus the job start-up
overhead of the backend stack. This realizes the paper's
``T_par = T_comm + T_comp`` with the non-skew assumption of §7.2 (work
divides evenly by ``p``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kv.backends import BackendProfile
from repro.parallel.metrics import StageCost


@dataclass
class CostModel:
    """Converts counted work into simulated milliseconds."""

    profile: BackendProfile
    workers: int
    storage_nodes: int

    def job_overhead(self) -> StageCost:
        return StageCost("job-overhead", time_ms=self.profile.job_overhead_ms)

    def fetch_stage(
        self,
        name: str,
        gets: int,
        values: int,
        bytes_out: int,
        repartition_bytes: int = 0,
        round_trips: Optional[int] = None,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> StageCost:
        """A stage that reads from the storage layer.

        ``repartition_bytes`` is intermediate data shuffled to align with
        the storage partitioning first (the interleaved ∝ of §7.2).
        ``round_trips`` is the number of client↔node RPCs that carried
        the ``gets``; when omitted, every get is its own round trip (the
        unbatched baseline, identical to the old cost).

        ``cache_hits``/``cache_misses`` record block-cache traffic: hits
        are served on the SQL-layer side of the network, so they cost
        zero storage time, zero round trips and zero transfer — they
        simply never appear in the counted ``gets``/``values``/``bytes``.
        """
        profile = self.profile
        if round_trips is None:
            round_trips = gets
        storage = profile.batched_get_cost_ms(
            round_trips, gets, values
        ) / max(1, self.storage_nodes)
        links = max(1, min(self.workers, self.storage_nodes))
        transfer = profile.transfer_ms(bytes_out, links=links)
        shuffle = profile.transfer_ms(repartition_bytes, links=self.workers)
        compute = profile.compute_ms(values) / max(1, self.workers)
        return StageCost(
            name,
            time_ms=storage + transfer + shuffle + compute
            + profile.stage_overhead_ms,
            comm_bytes=bytes_out + repartition_bytes,
            gets=gets,
            values=values,
            round_trips=round_trips,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def index_probe_stage(
        self,
        name: str,
        gets: int,
        values: int,
        bytes_out: int,
        round_trips: Optional[int] = None,
        index_probes: int = 0,
        index_postings: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> StageCost:
        """An index-probe access stage: posting/bucket fetches plus the
        follow-up keyed ``multi_get`` of the matching tuples.

        Index entries are ordinary KV pairs, so their gets/values/bytes
        are already inside the counted totals and priced exactly like a
        :meth:`fetch_stage` — the probe/posting counts are surfaced for
        the evaluation tables (index round-trips and posting-list
        sizes), not priced twice.
        """
        stage = self.fetch_stage(
            name,
            gets=gets,
            values=values,
            bytes_out=bytes_out,
            round_trips=round_trips,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )
        stage.index_probes = index_probes
        stage.index_postings = index_postings
        return stage

    def shuffle_stage(
        self, name: str, shuffle_bytes: int, values: int
    ) -> StageCost:
        """A stage that repartitions data among workers, then computes."""
        profile = self.profile
        transfer = profile.transfer_ms(shuffle_bytes, links=self.workers)
        compute = profile.compute_ms(values) / max(1, self.workers)
        return StageCost(
            name,
            time_ms=transfer + compute + profile.stage_overhead_ms,
            comm_bytes=shuffle_bytes,
            values=0,
        )

    def compute_stage(self, name: str, values: int) -> StageCost:
        """A purely local stage (selection, projection on partitions)."""
        profile = self.profile
        compute = profile.compute_ms(values) / max(1, self.workers)
        return StageCost(name, time_ms=compute, values=0)

    def rebalance_stage(
        self,
        name: str,
        keys_moved: int,
        bytes_moved: int,
        round_trips: int,
    ) -> StageCost:
        """A membership-churn stage: key ranges migrating between nodes.

        Migration is node-to-node bulk transfer: each moved key costs its
        marginal put on the receiving node, each synced peer one round
        trip, and the bytes cross the storage network's parallel links.
        Used by the elasticity/failover benchmarks to price the
        ``rebalance_*`` counters the cluster charges during churn.
        """
        profile = self.profile
        storage = profile.batched_put_cost_ms(
            round_trips, keys_moved, 0
        ) / max(1, self.storage_nodes)
        transfer = profile.transfer_ms(
            bytes_moved, links=max(1, self.storage_nodes)
        )
        return StageCost(
            name,
            time_ms=storage + transfer,
            comm_bytes=bytes_moved,
            round_trips=round_trips,
            rebalance_bytes=bytes_moved,
        )

    def write_stage(
        self,
        name: str,
        puts: int,
        values: int,
        bytes_in: int,
        round_trips: Optional[int] = None,
        fsyncs: int = 0,
    ) -> StageCost:
        """A stage that writes to the storage layer.

        ``fsyncs`` is the number of WAL write barriers the durable
        nodes paid for these puts (0 for a volatile cluster; the
        workloads diff ``KVCluster.wal_stats()`` around the writes).
        Barriers run on the storage nodes in parallel, so the cost
        divides by ``storage_nodes`` like the put service time — group
        commit shows up as fewer fsyncs, not a cheaper barrier.
        """
        profile = self.profile
        if round_trips is None:
            round_trips = puts
        storage = (
            profile.batched_put_cost_ms(round_trips, puts, values)
            + profile.fsync_cost_ms(fsyncs)
        ) / max(1, self.storage_nodes)
        links = max(1, min(self.workers, self.storage_nodes))
        transfer = profile.transfer_ms(bytes_in, links=links)
        return StageCost(
            name,
            time_ms=storage + transfer,
            comm_bytes=bytes_in,
            round_trips=round_trips,
            fsyncs=fsyncs,
        )
