"""Secondary-index subsystem: KV-backed hash and ordered indexes.

Extends scan-free (key-based) plans to non-key predicates: a selective
equality or range filter on an indexed attribute becomes an index probe
plus a bounded TaaV ``multi_get`` instead of an O(relation) scan.
"""

from repro.index.indexes import (
    DEFAULT_BUCKET_TARGET,
    HashIndex,
    IndexStats,
    OrderedIndex,
    SecondaryIndex,
    dependent_index_prefix,
    index_namespace,
)
from repro.index.manager import KINDS, IndexManager
from repro.index.selection import (
    IndexChoice,
    choose_for_alias,
    choose_from_conjuncts,
)

__all__ = [
    "DEFAULT_BUCKET_TARGET",
    "HashIndex",
    "IndexChoice",
    "IndexManager",
    "IndexStats",
    "KINDS",
    "OrderedIndex",
    "SecondaryIndex",
    "choose_for_alias",
    "choose_from_conjuncts",
    "dependent_index_prefix",
    "index_namespace",
]
