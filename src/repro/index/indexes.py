"""KV-backed secondary indexes: hash (equality) and ordered (range).

Both index kinds live *in the same KV cluster* as the data they index —
the HTAP trick of keeping analytical filters off the scan path without a
separate index service. An index over relation ``R`` on attribute ``a``
is a set of KV pairs in a dedicated ``__idx__/R/a`` namespace:

* :class:`HashIndex` — one entry per distinct attribute value,
  ``encode_key((v,)) → posting list of primary keys``. Serves equality
  and IN predicates with one get per probed value.
* :class:`OrderedIndex` — the distinct value domain is cut into buckets
  of roughly equal cardinality at build time; each bucket holds its
  ``(value, pk)`` pairs sorted by value. A range predicate touches only
  the buckets its bounds straddle — a *bounded bucket walk*, O(matching
  buckets) instead of O(relation).

Because index entries are ordinary namespace pairs, they are replicated,
rebalanced, failed over and cache-invalidated exactly like TaaV/BaaV
data: every write goes through :meth:`repro.kv.cluster.KVCluster.put`
(so all R replicas and every registered block cache see it) and reads go
through :func:`repro.kv.cache.read_through_many` when a cache is
attached.

Write-through maintenance (:meth:`SecondaryIndex.apply`) mirrors the
BaaV maintainer: each inserted/deleted tuple read-modify-writes only the
posting list / bucket of its attribute value — ``O(|Δ|)`` work. The puts
are counted on the storage nodes like any other write, and the index
additionally tallies its own :class:`IndexStats` so benchmarks can
report maintenance write amplification separately from base-table writes.

``NULL`` attribute values are never indexed: no supported predicate
(``=``, ``IN``, ranges) can select them, matching SQL comparison
semantics.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.kv import codec
from repro.kv.cache import read_through_many
from repro.kv.cluster import KVCluster
from repro.locks import ShardSet
from repro.relational.schema import RelationSchema
from repro.relational.types import Row

#: distinct values per ordered-index bucket (build-time cut target)
DEFAULT_BUCKET_TARGET = 32

#: reserved ordered-index key holding the persisted bucket boundaries
_ORD_META_KEY = codec.encode_key(("__ord_meta__",))

#: largest integer a float64 represents exactly
_EXACT_FLOAT_INT = 2 ** 53


def _canonical(value: object) -> object:
    """Collapse numerically equal values onto one hash-index key.

    SQL (and the scan path's Python ``==``) treat ``10``, ``10.0`` and
    ``TRUE``/``1`` as equal, but their codec encodings differ, so a
    hash entry keyed by the stored value would miss a probe by an
    equal literal of another type. Numbers are canonicalized to float
    when exactly representable, to int otherwise (a float equal to a
    huge int is integral, so both sides land on the int form).
    """
    if not isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, float):
        if value.is_integer() and abs(value) > _EXACT_FLOAT_INT:
            return int(value)
        return value
    if abs(value) <= _EXACT_FLOAT_INT:  # bool included: True == 1
        return float(value)
    return value


@dataclass
class IndexCounters:
    """One thread's shard of the index statistics (plain accumulators)."""

    probes: int = 0
    postings: int = 0
    maintenance_puts: int = 0
    maintenance_deletes: int = 0
    maintenance_bytes: int = 0

    def add(self, other: "IndexCounters") -> None:
        self.probes += other.probes
        self.postings += other.postings
        self.maintenance_puts += other.maintenance_puts
        self.maintenance_deletes += other.maintenance_deletes
        self.maintenance_bytes += other.maintenance_bytes


class IndexStats:
    """Cumulative counters of one index (or a manager-wide aggregate).

    ``probes``/``postings`` meter the read path (index entries fetched /
    posting entries decoded); the ``maintenance_*`` family meters the
    write-through path so write amplification is reportable.

    Thread-sharded (PR 5): index code accumulates into :attr:`local`,
    the calling thread's private :class:`IndexCounters` shard, so
    concurrent queries never lose increments. The aggregate fields
    (``stats.probes`` etc.) sum the shards; :meth:`snapshot` reads only
    the calling thread's shard so per-query metric probes attribute
    exactly their own index traffic.
    """

    def __init__(self) -> None:
        self._shards: ShardSet[IndexCounters] = ShardSet(IndexCounters)

    @property
    def local(self) -> IndexCounters:
        """The calling thread's shard — mutate counters through this."""
        return self._shards.local()

    def _total(self) -> IndexCounters:
        total = IndexCounters()
        for shard in self._shards.all():
            total.add(shard)
        return total

    @property
    def probes(self) -> int:
        return self._total().probes

    @property
    def postings(self) -> int:
        return self._total().postings

    @property
    def maintenance_puts(self) -> int:
        return self._total().maintenance_puts

    @property
    def maintenance_deletes(self) -> int:
        return self._total().maintenance_deletes

    @property
    def maintenance_bytes(self) -> int:
        return self._total().maintenance_bytes

    def snapshot(self) -> Tuple[int, int]:
        """(probes, postings) of the CALLING THREAD's shard only."""
        local = self._shards.peek()
        if local is None:
            return 0, 0
        return local.probes, local.postings


def index_namespace(relation: str, attr: str, kind: str) -> str:
    """The dedicated namespace of one index (``__idx__/<rel>/<attr>``)."""
    suffix = "#ord" if kind == "ordered" else ""
    return f"__idx__/{relation}/{attr}{suffix}"


#: namespace prefix of every index dependent on ``relation`` — the
#: cluster's drop cascade enumerates namespaces under this prefix
def dependent_index_prefix(relation: str) -> str:
    return f"__idx__/{relation}/"


class SecondaryIndex:
    """Shared machinery of both index kinds."""

    kind = "?"

    def __init__(
        self,
        relation: RelationSchema,
        attr: str,
        cluster: KVCluster,
        cache=None,
        stats: Optional[IndexStats] = None,
    ) -> None:
        if not relation.primary_key:
            raise ExecutionError(
                f"cannot index {relation.name!r}: secondary indexes post "
                f"primary keys, and the relation has none"
            )
        if attr not in relation:
            raise ExecutionError(
                f"relation {relation.name!r} has no attribute {attr!r}"
            )
        if attr in relation.primary_key:
            raise ExecutionError(
                f"{relation.name}.{attr} is part of the primary key — "
                f"key-bound predicates are already scan-free"
            )
        self.relation = relation
        self.attr = attr
        self.cluster = cluster
        self.cache = cache
        cluster.register_cache(cache)
        self.namespace = index_namespace(relation.name, attr, self.kind)
        self._attr_pos = relation.index_of(attr)
        self._pk_positions = relation.indexes_of(relation.primary_key)
        self.stats = stats if stats is not None else IndexStats()

    def _project(self, row: Row) -> Tuple[object, Row]:
        return row[self._attr_pos], tuple(
            row[p] for p in self._pk_positions
        )

    def _put_entry(self, key_bytes: bytes, entries: List[Tuple[Row, int]]) -> None:
        payload = codec.encode_entries(entries)
        self.cluster.put(
            self.namespace, key_bytes, payload, n_values=len(entries)
        )
        self.stats.local.maintenance_puts += 1
        self.stats.local.maintenance_bytes += len(key_bytes) + len(payload)

    def _delete_entry(self, key_bytes: bytes) -> None:
        self.cluster.delete(self.namespace, key_bytes)
        self.stats.local.maintenance_deletes += 1

    def _fetch_entries(
        self, key_bytes_list: Sequence[bytes]
    ) -> List[List[Tuple[Row, int]]]:
        """Read-through fetch of posting payloads; counted as probes."""
        pairs = read_through_many(
            self.cache,
            self.namespace,
            key_bytes_list,
            lambda missing: self.cluster.multi_get(
                self.namespace, missing, n_values_each=1
            ),
            versions=self.cluster.versions,
        )
        out: List[List[Tuple[Row, int]]] = []
        self.stats.local.probes += len(key_bytes_list)
        for data, fetched in pairs:
            if data is None:
                out.append([])
                continue
            entries, _ = codec.decode_entries(data)
            if fetched:
                # the cluster counted n_values_each=1 (the serving node
                # only sees bytes); top up the decoded remainder so
                # values_read charges the posting-list size, exactly
                # like the BaaV segment reads do
                self._charge_posting_values(len(entries))
            self.stats.local.postings += len(entries)
            out.append(entries)
        return out

    def _charge_posting_values(self, entries: int) -> None:
        # only live nodes served the batch — a crashed node must not
        # accrue reads (it would bias least-loaded replica selection)
        self.cluster.charge_values_read(entries - 1, live_only=True)

    # -- write-through maintenance ----------------------------------------

    def apply(
        self, inserts: Iterable[Row] = (), deletes: Iterable[Row] = ()
    ) -> None:
        """Apply a Δ of base-table rows to the index (read-modify-write)."""
        by_key_add: Dict[bytes, List[Row]] = defaultdict(list)
        by_key_del: Dict[bytes, List[Row]] = defaultdict(list)
        for row in inserts:
            value, pk = self._project(tuple(row))
            if value is None:
                continue
            by_key_add[self._entry_key(value)].append(self._entry_row(value, pk))
        for row in deletes:
            value, pk = self._project(tuple(row))
            if value is None:
                continue
            by_key_del[self._entry_key(value)].append(self._entry_row(value, pk))
        for key_bytes in sorted(set(by_key_add) | set(by_key_del)):
            payload = self.cluster.peek(self.namespace, key_bytes)
            entries: List[Tuple[Row, int]] = (
                codec.decode_entries(payload)[0] if payload else []
            )
            counts: Dict[Row, int] = {}
            for entry_row, count in entries:
                counts[entry_row] = counts.get(entry_row, 0) + count
            for entry_row in by_key_add[key_bytes]:
                counts[entry_row] = counts.get(entry_row, 0) + 1
            for entry_row in by_key_del[key_bytes]:
                remaining = counts.get(entry_row, 0) - 1
                if remaining > 0:
                    counts[entry_row] = remaining
                else:
                    counts.pop(entry_row, None)
            if counts:
                self._put_entry(
                    key_bytes, [(r, c) for r, c in sorted(counts.items())]
                )
            else:
                self._delete_entry(key_bytes)

    def drop(self) -> int:
        """Remove every entry of this index from the cluster."""
        return self.cluster.drop_namespace(self.namespace)

    # -- per-kind hooks -----------------------------------------------------

    def _entry_key(self, value: object) -> bytes:
        raise NotImplementedError

    def _entry_row(self, value: object, pk: Row) -> Row:
        raise NotImplementedError


class HashIndex(SecondaryIndex):
    """Equality index: ``value → posting list of primary keys``."""

    kind = "hash"

    def _entry_key(self, value: object) -> bytes:
        return codec.encode_key((_canonical(value),))

    def _entry_row(self, value: object, pk: Row) -> Row:
        return pk

    def build(self, rows: Iterable[Row]) -> None:
        """Bulk-build from the current base rows (one put per value)."""
        postings: Dict[object, Dict[Row, int]] = defaultdict(dict)
        for row in rows:
            value, pk = self._project(tuple(row))
            if value is None:
                continue
            bucket = postings[value]
            bucket[pk] = bucket.get(pk, 0) + 1
        for value in postings:
            self._put_entry(
                self._entry_key(value),
                [(pk, c) for pk, c in sorted(postings[value].items())],
            )

    def lookup(self, values: Sequence[object]) -> List[Row]:
        """Primary keys of rows whose attribute equals any of ``values``.

        Deterministic order (sorted per probed value, values in given
        order) and de-duplicated across values, so downstream multi_get
        round trips are reproducible.
        """
        probe_values = [v for v in dict.fromkeys(values) if v is not None]
        if not probe_values:
            return []
        entry_lists = self._fetch_entries(
            [self._entry_key(v) for v in probe_values]
        )
        out: List[Row] = []
        seen = set()
        for entries in entry_lists:
            for pk, _count in entries:
                if pk not in seen:
                    seen.add(pk)
                    out.append(pk)
        return out


class OrderedIndex(SecondaryIndex):
    """Range index: bucketed sorted ``(value, pk)`` segments.

    Bucket boundaries are cut from the distinct value domain at build
    time (every :data:`DEFAULT_BUCKET_TARGET`-th distinct value) and
    persisted under a reserved meta key in the index namespace; values
    inserted later land in the bucket their value bisects into, so
    buckets can grow but the walk stays bounded by the predicate's
    value range.
    """

    kind = "ordered"

    def __init__(
        self,
        relation: RelationSchema,
        attr: str,
        cluster: KVCluster,
        cache=None,
        stats: Optional[IndexStats] = None,
        bucket_target: int = DEFAULT_BUCKET_TARGET,
    ) -> None:
        super().__init__(relation, attr, cluster, cache=cache, stats=stats)
        self.bucket_target = max(1, bucket_target)
        #: cut points: bucket ``i`` covers ``[_bounds[i-1], _bounds[i])``;
        #: recovered from the persisted meta entry when this object
        #: attaches to an already-built index namespace
        self._bounds: List[object] = self._load_bounds()

    def _load_bounds(self) -> List[object]:
        payload = self.cluster.peek(self.namespace, _ORD_META_KEY)
        if payload is None:
            return []
        entries, _ = codec.decode_entries(payload)
        return list(entries[0][0])

    @property
    def num_buckets(self) -> int:
        return len(self._bounds) + 1

    def _bucket_of(self, value: object) -> int:
        return bisect_right(self._bounds, value)

    def _entry_key(self, value: object) -> bytes:
        return codec.encode_key((self._bucket_of(value),))

    def _entry_row(self, value: object, pk: Row) -> Row:
        return (value,) + tuple(pk)

    def build(self, rows: Iterable[Row]) -> None:
        """Cut the domain into buckets and bulk-write them."""
        pairs: Dict[object, Dict[Row, int]] = defaultdict(dict)
        for row in rows:
            value, pk = self._project(tuple(row))
            if value is None:
                continue
            entry = self._entry_row(value, pk)
            pairs[value][entry] = pairs[value].get(entry, 0) + 1
        domain = sorted(pairs)
        self._bounds = [
            domain[i]
            for i in range(self.bucket_target, len(domain), self.bucket_target)
        ]
        buckets: Dict[int, List[Tuple[Row, int]]] = defaultdict(list)
        for value in domain:
            buckets[self._bucket_of(value)].extend(
                sorted(pairs[value].items())
            )
        for bucket_id in sorted(buckets):
            self._put_entry(
                codec.encode_key((bucket_id,)), buckets[bucket_id]
            )
        # persist the cut points so the index is self-describing in the
        # cluster (replicated and migrated with its entries)
        meta = codec.encode_entries([(tuple(self._bounds), 1)])
        self.cluster.put(self.namespace, _ORD_META_KEY, meta, n_values=1)

    def lookup_range(
        self,
        lo: object = None,
        hi: object = None,
        lo_strict: bool = False,
        hi_strict: bool = False,
    ) -> List[Row]:
        """Primary keys with ``lo (<|<=) value (<|<=) hi``; bounded walk.

        ``None`` bounds are open ends. Results are ordered by
        ``(value, pk)`` — deterministic for reproducible round trips.
        """
        first = 0 if lo is None else self._bucket_of(lo)
        # an upper bound can never match past its own bucket: bucket
        # lower bounds are exact domain values, so value > hi implies
        # bucket_of(value) >= bucket_of(hi)
        last = self.num_buckets - 1 if hi is None else self._bucket_of(hi)
        if lo is not None and hi is not None and self._cmp(hi, lo) < 0:
            return []
        keys = [
            codec.encode_key((bucket_id,))
            for bucket_id in range(first, last + 1)
        ]
        matched: List[Tuple[object, Row]] = []
        for entries in self._fetch_entries(keys):
            for entry_row, _count in entries:
                value, pk = entry_row[0], entry_row[1:]
                if lo is not None:
                    c = self._cmp(value, lo)
                    if c < 0 or (lo_strict and c == 0):
                        continue
                if hi is not None:
                    c = self._cmp(value, hi)
                    if c > 0 or (hi_strict and c == 0):
                        continue
                matched.append((value, pk))
        matched.sort()
        out: List[Row] = []
        seen = set()
        for _value, pk in matched:
            if pk not in seen:
                seen.add(pk)
                out.append(pk)
        return out

    @staticmethod
    def _cmp(a: object, b: object) -> int:
        return (a > b) - (a < b)
