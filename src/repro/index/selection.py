"""Index access-path selection: match query predicates to usable indexes.

Both planners funnel through here so "is there a usable index?" has one
answer everywhere:

* the KBA plan generator (:mod:`repro.core.plangen`) asks per *alias*,
  with predicates already digested into SPC terms and residuals;
* the baseline RA engine (:mod:`repro.parallel.engine`) asks per scan
  leaf, with the raw conjunct list of the selection above it.

A *catalog* is anything exposing ``equality_attrs(relation)`` and
``range_attrs(relation)`` (normally the
:class:`~repro.index.manager.IndexManager`). Equality beats range when
both are available — a point probe touches one posting list, a range
walk a run of buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.sql import ast


def describe_predicate(
    attr: str,
    eq_values: Tuple[object, ...] = (),
    lo: object = None,
    hi: object = None,
    lo_strict: bool = False,
    hi_strict: bool = False,
) -> str:
    """Render an index predicate — the one formatter every EXPLAIN
    surface (plan labels, choice descriptions) shares."""
    if eq_values:
        preview = ", ".join(repr(v) for v in eq_values[:3])
        if len(eq_values) > 3:
            preview += ", ..."
        return f"{attr} = [{preview}]"
    low = "" if lo is None else f"{lo!r} {'<' if lo_strict else '<='} "
    high = "" if hi is None else f" {'<' if hi_strict else '<='} {hi!r}"
    return f"{low}{attr}{high}"


@dataclass(frozen=True)
class IndexChoice:
    """One chosen index access path for a relation occurrence."""

    relation: str
    alias: str
    attr: str            # indexed attribute (unqualified)
    kind: str            # "hash" | "ordered"
    eq_values: Tuple[object, ...] = ()   # equality/IN probe values
    lo: object = None
    hi: object = None
    lo_strict: bool = False
    hi_strict: bool = False

    @property
    def is_equality(self) -> bool:
        return bool(self.eq_values)

    def describe(self) -> str:
        return f"{self.kind} on " + describe_predicate(
            self.attr,
            self.eq_values,
            self.lo,
            self.hi,
            self.lo_strict,
            self.hi_strict,
        )


@dataclass
class _Bounds:
    lo: object = None
    hi: object = None
    lo_strict: bool = False
    hi_strict: bool = False

    def tighten_lo(self, value: object, strict: bool) -> None:
        if self.lo is None or value > self.lo or (
            value == self.lo and strict
        ):
            self.lo, self.lo_strict = value, strict

    def tighten_hi(self, value: object, strict: bool) -> None:
        if self.hi is None or value < self.hi or (
            value == self.hi and strict
        ):
            self.hi, self.hi_strict = value, strict

    @property
    def bounded(self) -> bool:
        return self.lo is not None or self.hi is not None


_RANGE_OPS = {"<", "<=", ">", ">="}


def _column_lit(expr: ast.Expr) -> Optional[Tuple[str, str, object]]:
    """Decompose ``col op lit`` / ``lit op col`` into (col, op, lit)."""
    if not isinstance(expr, ast.Cmp) or expr.op not in _RANGE_OPS | {"="}:
        return None
    if isinstance(expr.left, ast.Column) and isinstance(expr.right, ast.Lit):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.left, ast.Lit) and isinstance(expr.right, ast.Column):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
        return expr.right.name, flipped[expr.op], expr.left.value
    return None


def range_bounds_from_conjuncts(
    conjuncts: Sequence[ast.Expr], alias: str
) -> Dict[str, _Bounds]:
    """Per-attribute range bounds an alias's conjuncts pin down.

    Collects ``<``/``<=``/``>``/``>=`` comparisons against literals and
    ``BETWEEN`` over literals, combining multiple conjuncts on one
    attribute into the tightest window. Keys are unqualified attribute
    names of ``alias``.
    """
    prefix = alias + "."
    out: Dict[str, _Bounds] = {}

    def bounds_of(column: str) -> Optional[_Bounds]:
        if not column.startswith(prefix):
            return None
        return out.setdefault(column[len(prefix):], _Bounds())

    for conj in conjuncts:
        decomposed = _column_lit(conj)
        if decomposed is not None:
            column, op, value = decomposed
            if op == "=" or value is None:
                continue
            bounds = bounds_of(column)
            if bounds is None:
                continue
            if op in ("<", "<="):
                bounds.tighten_hi(value, op == "<")
            else:
                bounds.tighten_lo(value, op == ">")
            continue
        if (
            isinstance(conj, ast.Between)
            and isinstance(conj.operand, ast.Column)
            and isinstance(conj.low, ast.Lit)
            and isinstance(conj.high, ast.Lit)
            and conj.low.value is not None
            and conj.high.value is not None
        ):
            bounds = bounds_of(conj.operand.name)
            if bounds is None:
                continue
            bounds.tighten_lo(conj.low.value, False)
            bounds.tighten_hi(conj.high.value, False)
    return {attr: b for attr, b in out.items() if b.bounded}


def equality_values_from_conjuncts(
    conjuncts: Sequence[ast.Expr], alias: str
) -> Dict[str, Tuple[object, ...]]:
    """Per-attribute finite value sets bound by ``=`` / ``IN`` conjuncts."""
    prefix = alias + "."
    out: Dict[str, Tuple[object, ...]] = {}
    for conj in conjuncts:
        decomposed = _column_lit(conj)
        if decomposed is not None:
            column, op, value = decomposed
            if op == "=" and column.startswith(prefix) and value is not None:
                out[column[len(prefix):]] = (value,)
            continue
        if (
            isinstance(conj, ast.InList)
            and isinstance(conj.operand, ast.Column)
            and conj.operand.name.startswith(prefix)
        ):
            values = tuple(v for v in conj.values if v is not None)
            if values:
                out.setdefault(conj.operand.name[len(prefix):], values)
    return out


def choose_from_conjuncts(
    conjuncts: Sequence[ast.Expr],
    relation: str,
    alias: str,
    catalog,
) -> Optional[IndexChoice]:
    """Pick the best index access path a conjunct list allows (or None)."""
    if catalog is None:
        return None
    eq_attrs = catalog.equality_attrs(relation)
    if eq_attrs:
        equalities = equality_values_from_conjuncts(conjuncts, alias)
        for attr in sorted(eq_attrs):
            values = equalities.get(attr)
            if values:
                kind = (
                    "hash"
                    if _has_hash(catalog, relation, attr)
                    else "ordered"
                )
                return IndexChoice(
                    relation, alias, attr, kind, eq_values=values
                )
    range_attrs = catalog.range_attrs(relation)
    if range_attrs:
        bounds = range_bounds_from_conjuncts(conjuncts, alias)
        for attr in sorted(range_attrs):
            window = bounds.get(attr)
            if window is not None:
                return IndexChoice(
                    relation,
                    alias,
                    attr,
                    "ordered",
                    lo=window.lo,
                    hi=window.hi,
                    lo_strict=window.lo_strict,
                    hi_strict=window.hi_strict,
                )
    return None


def _has_hash(catalog, relation: str, attr: str) -> bool:
    index_for = getattr(catalog, "index_for", None)
    if index_for is None:
        return True
    return index_for(relation, attr, "hash") is not None


def choose_for_alias(analysis, alias: str, relation: str, catalog):
    """Pick an index path from an SPC analysis (the KBA generator's view).

    Equality bindings come from the analysis's *terms* (``=`` constants
    and IN-lists are digested there, not kept as conjuncts); range
    windows come from its residual conjuncts.
    """
    if catalog is None:
        return None
    eq_attrs = catalog.equality_attrs(relation)
    for attr in sorted(eq_attrs):
        term = analysis.term_of(f"{alias}.{attr}")
        if term is None or not term.is_bound:
            continue
        values = (
            (term.constant,)
            if term.has_constant
            else tuple(v for v in (term.in_values or ()) if v is not None)
        )
        values = tuple(v for v in values if v is not None)
        if not values:
            continue
        kind = (
            "hash" if _has_hash(catalog, relation, attr) else "ordered"
        )
        return IndexChoice(relation, alias, attr, kind, eq_values=values)
    range_attrs = catalog.range_attrs(relation)
    if range_attrs:
        bounds = range_bounds_from_conjuncts(analysis.residuals, alias)
        for attr in sorted(range_attrs):
            window = bounds.get(attr)
            if window is not None:
                return IndexChoice(
                    relation,
                    alias,
                    attr,
                    "ordered",
                    lo=window.lo,
                    hi=window.hi,
                    lo_strict=window.lo_strict,
                    hi_strict=window.hi_strict,
                )
    return None
