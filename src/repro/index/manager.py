"""The index manager: catalog, lookups and write-through fan-out.

One :class:`IndexManager` per system instance owns every secondary index
over that system's cluster. It is three things at once:

* the **catalog** the planners consult (``equality_attrs`` /
  ``range_attrs`` answer "is there a usable index for this predicate?"
  without touching storage);
* the **lookup facade** the executors call (``lookup_eq`` /
  ``lookup_range`` return primary keys to feed a TaaV ``multi_get``);
* the **maintenance bus**: ``apply_updates`` fans a relational Δ out to
  every index of the touched relation, keeping indexes consistent with
  the base data under inserts/deletes.

All indexes share one :class:`~repro.index.indexes.IndexStats`, so the
engines can snapshot/diff a single counter set to attribute index
round-trips and posting reads to plan stages.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.index.indexes import (
    HashIndex,
    IndexStats,
    OrderedIndex,
    SecondaryIndex,
)
from repro.kv.cluster import KVCluster
from repro.locks import make_rlock
from repro.relational.relation import Relation
from repro.relational.types import Row

#: accepted index kinds (the ``kind`` arg of ``create_index``)
KINDS = ("hash", "ordered")


class IndexManager:
    """All secondary indexes of one system, keyed ``(relation, attr, kind)``."""

    def __init__(self, cluster: KVCluster, cache=None) -> None:
        self.cluster = cluster
        self.cache = cache
        self.stats = IndexStats()
        self._indexes: Dict[Tuple[str, str, str], SecondaryIndex] = {}
        # guards the catalog dict: DDL (create/drop/forget) is rare but
        # must not mutate it under a concurrent planner/executor read;
        # reentrant so a drop cascade can re-enter through the cluster
        self._lock = make_rlock("IndexManager._lock")

    # -- DDL ----------------------------------------------------------------

    def create(
        self, relation: Relation, attr: str, kind: str = "hash"
    ) -> SecondaryIndex:
        """Create and bulk-build an index over ``relation``'s current rows."""
        if kind not in KINDS:
            raise ExecutionError(
                f"unknown index kind {kind!r} (expected one of {KINDS})"
            )
        with self._lock:
            key = (relation.schema.name, attr, kind)
            if key in self._indexes:
                raise ExecutionError(
                    f"index on {key[0]}.{attr} ({kind}) already exists"
                )
            cls = HashIndex if kind == "hash" else OrderedIndex
            index = cls(
                relation.schema,
                attr,
                self.cluster,
                cache=self.cache,
                stats=self.stats,
            )
            index.build(relation.rows)
            self._indexes[key] = index
            return index

    def drop(
        self, relation: str, attr: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        """Drop matching indexes (all of a relation when ``attr`` is None);
        returns how many were dropped. Entries leave the cluster too."""
        with self._lock:
            doomed = [
                key
                for key in self._indexes
                if key[0] == relation
                and (attr is None or key[1] == attr)
                and (kind is None or key[2] == kind)
            ]
            for key in doomed:
                self._indexes.pop(key).drop()
            return len(doomed)

    def forget(self, relation: str) -> int:
        """Drop a relation's indexes from the catalog only (their cluster
        entries were already removed, e.g. by a namespace drop cascade)."""
        with self._lock:
            doomed = [key for key in self._indexes if key[0] == relation]
            for key in doomed:
                del self._indexes[key]
            return len(doomed)

    # -- catalog (what the planners consult) --------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)

    def __iter__(self):
        with self._lock:
            return iter(list(self._indexes.values()))

    def index_for(
        self, relation: str, attr: str, kind: str
    ) -> Optional[SecondaryIndex]:
        with self._lock:
            return self._indexes.get((relation, attr, kind))

    def equality_attrs(self, relation: str) -> Set[str]:
        """Attributes of ``relation`` with an equality-capable index
        (a hash index, or an ordered one — a point is a tiny range)."""
        with self._lock:
            return {key[1] for key in self._indexes if key[0] == relation}

    def range_attrs(self, relation: str) -> Set[str]:
        """Attributes of ``relation`` with a range-capable (ordered) index."""
        with self._lock:
            return {
                key[1]
                for key in self._indexes
                if key[0] == relation and key[2] == "ordered"
            }

    def describe(self) -> str:
        with self._lock:
            lines = [
                f"{rel}.{attr} [{kind}]"
                for rel, attr, kind in sorted(self._indexes)
            ]
        return "\n".join(lines) if lines else "(no indexes)"

    # -- lookups (what the executors call) ----------------------------------

    def lookup_eq(
        self, relation: str, attr: str, values: Sequence[object]
    ) -> List[Row]:
        """Primary keys matching ``attr IN values`` (hash preferred)."""
        with self._lock:
            index = self._indexes.get((relation, attr, "hash"))
            ordered = self._indexes.get((relation, attr, "ordered"))
        if index is not None:
            return index.lookup(values)
        if ordered is None:
            raise ExecutionError(
                f"no index on {relation}.{attr} serves equality"
            )
        out: List[Row] = []
        seen = set()
        for value in dict.fromkeys(values):
            if value is None:
                continue
            for pk in ordered.lookup_range(lo=value, hi=value):
                if pk not in seen:
                    seen.add(pk)
                    out.append(pk)
        return out

    def lookup_range(
        self,
        relation: str,
        attr: str,
        lo: object = None,
        hi: object = None,
        lo_strict: bool = False,
        hi_strict: bool = False,
    ) -> List[Row]:
        """Primary keys matching a range predicate on ``attr``."""
        with self._lock:
            index = self._indexes.get((relation, attr, "ordered"))
        if index is None:
            raise ExecutionError(
                f"no ordered index on {relation}.{attr} serves ranges"
            )
        return index.lookup_range(
            lo=lo, hi=hi, lo_strict=lo_strict, hi_strict=hi_strict
        )

    # -- write-through maintenance ------------------------------------------

    def apply_updates(
        self,
        relation: str,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> None:
        """Fan a relational Δ out to every index of ``relation``."""
        inserts = list(inserts)
        deletes = list(deletes)
        if not inserts and not deletes:
            return
        with self._lock:
            targets = [
                index
                for key, index in sorted(self._indexes.items())
                if key[0] == relation
            ]
        for index in targets:
            index.apply(inserts, deletes)
