"""Keyed blocks: the value side of a BaaV pair ``(k, B)``.

A block holds entries ``(row, count)`` over the value attributes ``Y`` of a
KV schema. With compression on (§8.2 feature (1)), rows are deduplicated
and ``count`` records multiplicity; with compression off, each entry has
count 1 and duplicates appear repeatedly. Blocks also carry per-attribute
group-by statistics (§8.2 feature (2)): min/max/sum/count of numeric
attributes, which answer whole-block aggregates without touching rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.kv import codec
from repro.relational.types import Row

if TYPE_CHECKING:
    from repro.baav.frame import ColumnFrame


@dataclass(frozen=True)
class BlockStats:
    """min/max/sum/count of one numeric value attribute over a block."""

    minimum: object
    maximum: object
    total: float
    count: int

    @property
    def average(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class Block:
    """A block ``B`` of partial tuples over value attributes ``Y``."""

    __slots__ = ("entries",)

    def __init__(self, entries: Optional[List[Tuple[Row, int]]] = None) -> None:
        self.entries: List[Tuple[Row, int]] = entries if entries is not None else []

    @classmethod
    def from_rows(cls, rows: Iterable[Row], compress: bool = True) -> "Block":
        """Build a block from value-rows, deduplicating when ``compress``."""
        if not compress:
            return cls([(tuple(r), 1) for r in rows])
        counts: Dict[Row, int] = {}
        order: List[Row] = []
        for row in rows:
            row = tuple(row)
            if row in counts:
                counts[row] += 1
            else:
                counts[row] = 1
                order.append(row)
        return cls([(row, counts[row]) for row in order])

    # -- sizes -------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Distinct entries stored (the compressed size)."""
        return len(self.entries)

    @property
    def num_tuples(self) -> int:
        """Logical tuple count — the paper's |B| for the degree."""
        return sum(count for _, count in self.entries)

    def num_values(self) -> int:
        """Logical values held (entries × width), the #data unit."""
        if not self.entries:
            return 0
        width = len(self.entries[0][0])
        return len(self.entries) * width

    # -- access ------------------------------------------------------------

    def expand(self) -> Iterator[Row]:
        """Yield rows with multiplicity (decompressed view)."""
        for row, count in self.entries:
            for _ in range(count):
                yield row

    def rows_with_counts(self) -> List[Tuple[Row, int]]:
        return list(self.entries)

    def add(self, row: Row, count: int = 1, compress: bool = True) -> None:
        row = tuple(row)
        if compress:
            for index, (existing, existing_count) in enumerate(self.entries):
                if existing == row:
                    self.entries[index] = (existing, existing_count + count)
                    return
        self.entries.append((row, count))

    def remove(self, row: Row, count: int = 1) -> int:
        """Remove up to ``count`` occurrences of ``row``; return removed."""
        row = tuple(row)
        removed = 0
        for index, (existing, existing_count) in enumerate(self.entries):
            if existing == row:
                take = min(count, existing_count)
                remaining = existing_count - take
                removed = take
                if remaining:
                    self.entries[index] = (existing, remaining)
                else:
                    del self.entries[index]
                break
        return removed

    # -- statistics ----------------------------------------------------------

    def stats(self, value_attrs: Sequence[str]) -> Dict[str, BlockStats]:
        """Per-attribute statistics over numeric value attributes."""
        out: Dict[str, BlockStats] = {}
        for position, attr in enumerate(value_attrs):
            minimum = None
            maximum = None
            total = 0.0
            count = 0
            numeric = True
            for row, multiplicity in self.entries:
                value = row[position]
                if value is None:
                    continue
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    numeric = False
                    break
                if minimum is None or value < minimum:
                    minimum = value
                if maximum is None or value > maximum:
                    maximum = value
                total += value * multiplicity
                count += multiplicity
            if numeric and count:
                out[attr] = BlockStats(minimum, maximum, total, count)
        return out

    # -- codec ----------------------------------------------------------------

    def to_frame(self, attrs: Optional[Sequence[str]] = None) -> "ColumnFrame":
        """Columnar view of this block (PR 10).

        ``attrs`` names the value attributes; positional ``c0..cN``
        names are generated when omitted (a bare block does not know
        its schema).
        """
        from repro.baav.frame import ColumnFrame

        if attrs is None:
            width = len(self.entries[0][0]) if self.entries else 0
            attrs = tuple(f"c{i}" for i in range(width))
        return ColumnFrame.from_entries(tuple(attrs), self.entries)

    @classmethod
    def from_frame(cls, frame: "ColumnFrame") -> "Block":
        """Rebuild a block from a columnar frame (inverse of to_frame)."""
        return cls(frame.to_entries())

    def encode(self) -> bytes:
        return codec.encode_entries(self.entries)

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        entries, _ = codec.decode_entries(data)
        return cls(entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return sorted_entries(self) == sorted_entries(other)

    def __repr__(self) -> str:
        return f"Block({self.num_entries} entries, {self.num_tuples} tuples)"


def sorted_entries(block: Block) -> List[Tuple[Row, int]]:
    """Entries in a canonical order for comparison."""
    return sorted(block.entries, key=lambda e: (repr(e[0]),))


def split_block(block: Block, max_tuples: int) -> List[Block]:
    """Split a block into segments of at most ``max_tuples`` logical tuples.

    Implements §8.2: oversized blocks are broken into multiple keyed blocks
    with distinct internal segment ids that "logically appear as one".
    """
    if max_tuples <= 0 or block.num_tuples <= max_tuples:
        return [block]
    segments: List[Block] = []
    current: List[Tuple[Row, int]] = []
    current_tuples = 0
    for row, count in block.entries:
        while count > 0:
            room = max_tuples - current_tuples
            if room == 0:
                segments.append(Block(current))
                current = []
                current_tuples = 0
                room = max_tuples
            take = min(count, room)
            current.append((row, take))
            current_tuples += take
            count -= take
    if current:
        segments.append(Block(current))
    return segments
