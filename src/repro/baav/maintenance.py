"""Incremental maintenance of BaaV stores under updates (§8.2).

In response to a batch Δ of tuple insertions/deletions on the relational
database, every affected KV instance is updated with read-modify-write
operations on the touched keys only: ``O(|Δ| · deg(D̃))`` work, independent
of the database size. Degree metadata is maintained along the way.

The read-modify-write is also what makes BaaV *writes* slightly more
expensive than TaaV writes (Exp-4's throughput observation): a put on an
existing key must re-encode the whole (last segment of the) block.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.baav.block import Block
from repro.baav.store import BaaVStore, KVInstance, _decode_segment, _encode_segment
from repro.errors import BaaVError
from repro.kv import codec
from repro.relational.types import Row


class Maintainer:
    """Applies relational updates to a BaaV store incrementally."""

    def __init__(self, store: BaaVStore) -> None:
        self.store = store

    def insert(self, relation: str, rows: Iterable[Row]) -> int:
        """Insert tuples of ``relation``; returns the touched block count.

        "Touched" means *distinct* blocks written across the affected KV
        instances: two inserted rows landing in the same block count
        once, not rows × instances.
        """
        rows = list(rows)
        touched = set()
        for instance in self.store.instances_over(relation):
            for row in rows:
                touched.add(
                    (instance.schema.name, self._insert_one(instance, row))
                )
        return len(touched)

    def delete(self, relation: str, rows: Iterable[Row]) -> int:
        """Delete tuples of ``relation`` (one occurrence per given row).

        Returns the number of *distinct* blocks actually modified; rows
        that matched no stored tuple touch nothing.
        """
        rows = list(rows)
        touched = set()
        for instance in self.store.instances_over(relation):
            for row in rows:
                key = self._delete_one(instance, row)
                if key is not None:
                    touched.add((instance.schema.name, key))
        return len(touched)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _project(instance: KVInstance, row: Row) -> Tuple[Row, Row]:
        rel = instance.schema.relation
        key = tuple(row[rel.index_of(a)] for a in instance.schema.key)
        value = tuple(row[rel.index_of(a)] for a in instance.schema.value)
        return key, value

    def _insert_one(self, instance: KVInstance, row: Row) -> Row:
        """Apply one insert; returns the touched block's key."""
        key, value = self._project(instance, row)
        cluster = instance.cluster
        first_key = codec.encode_key(key + (0,))
        payload = cluster.peek(instance.namespace, first_key)
        if payload is None:
            block = Block.from_rows([value], compress=instance.compress)
            instance._write_block(key, block)
            return key
        # read-modify-write the *last* segment
        n_segments, _ = _decode_segment(payload)
        n_segments = max(1, n_segments)
        last_index = n_segments - 1
        last_key = codec.encode_key(key + (last_index,))
        last_payload = cluster.get(
            instance.namespace, last_key, n_values=1
        )
        if last_payload is None:
            raise BaaVError(f"missing last segment for key {key!r}")
        head, segment = _decode_segment(last_payload)
        segment.add(value, 1, compress=instance.compress)
        if (
            instance.split_threshold > 0
            and segment.num_tuples > instance.split_threshold
            and segment.num_entries > 1
        ):
            overflow = Block([segment.entries.pop()])
            cluster.put(
                instance.namespace,
                last_key,
                _encode_segment(head, segment),
                n_values=segment.num_values(),
            )
            cluster.put(
                instance.namespace,
                codec.encode_key(key + (last_index + 1,)),
                _encode_segment(0, overflow),
                n_values=overflow.num_values(),
            )
            self._bump_segment_count(instance, key, n_segments + 1)
        else:
            cluster.put(
                instance.namespace,
                last_key,
                _encode_segment(head, segment),
                n_values=segment.num_values(),
            )
        self._refresh_meta_on_insert(instance, key)
        self._refresh_stats(instance, key)
        return key

    def _bump_segment_count(
        self, instance: KVInstance, key: Row, n_segments: int
    ) -> None:
        cluster = instance.cluster
        first_key = codec.encode_key(key + (0,))
        payload = cluster.peek(instance.namespace, first_key)
        if payload is None:
            raise BaaVError(f"missing first segment for key {key!r}")
        _, first_block = _decode_segment(payload)
        cluster.put(
            instance.namespace,
            first_key,
            _encode_segment(n_segments, first_block),
            n_values=first_block.num_values(),
        )

    def _delete_one(self, instance: KVInstance, row: Row) -> Optional[Row]:
        """Apply one delete; returns the touched block's key, or ``None``
        when the row matched nothing (no block was modified)."""
        key, value = self._project(instance, row)
        cluster = instance.cluster
        block = instance.get(key)
        if block is None:
            return None
        removed = block.remove(value, 1)
        if not removed:
            return None
        # rewrite the whole logical block (segments may shrink)
        first_key = codec.encode_key(key + (0,))
        payload = cluster.peek(instance.namespace, first_key)
        n_segments, _ = _decode_segment(payload) if payload else (1, None)
        for index in range(max(1, n_segments)):
            cluster.delete(instance.namespace, codec.encode_key(key + (index,)))
        instance._num_blocks -= 1
        if block.num_tuples == 0:
            if instance.keep_stats:
                cluster.delete(
                    instance.stats_namespace, codec.encode_key(key)
                )
            instance._num_tuples -= 1
            return key
        instance._num_tuples -= block.num_tuples + 1
        instance._write_block(key, block)
        self._refresh_stats(instance, key)
        return key

    def _refresh_meta_on_insert(self, instance: KVInstance, key: Row) -> None:
        instance._num_tuples += 1
        block = _peek_block(instance, key)
        if block is not None and block.num_tuples > instance._degree:
            instance._degree = block.num_tuples

    def _refresh_stats(self, instance: KVInstance, key: Row) -> None:
        if not instance.keep_stats:
            return
        block = _peek_block(instance, key)
        if block is None:
            return
        stats = block.stats(instance.schema.value)
        if stats:
            from repro.baav.store import _encode_stats

            instance.cluster.put(
                instance.stats_namespace,
                codec.encode_key(key),
                _encode_stats(stats),
                n_values=len(stats) * 4,
            )


def _peek_block(instance: KVInstance, key: Row) -> Optional[Block]:
    """Read a logical block without counters (metadata refresh)."""
    cluster = instance.cluster
    payload = cluster.peek(instance.namespace, codec.encode_key(key + (0,)))
    if payload is None:
        return None
    n_segments, block = _decode_segment(payload)
    for index in range(1, max(1, n_segments)):
        data = cluster.peek(
            instance.namespace, codec.encode_key(key + (index,))
        )
        if data is None:
            break
        _, segment = _decode_segment(data)
        block.entries.extend(segment.entries)
    return block
