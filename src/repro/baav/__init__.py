"""The BaaV model: KV schemas, keyed blocks, stores and maintenance."""

from repro.baav.block import Block, BlockStats, split_block
from repro.baav.maintenance import Maintainer
from repro.baav.schema import BaaVSchema, KVSchema, kv_schema, taav_equivalent_schema
from repro.baav.store import BaaVStore, KVInstance

__all__ = [
    "BaaVSchema",
    "BaaVStore",
    "Block",
    "BlockStats",
    "KVInstance",
    "KVSchema",
    "Maintainer",
    "kv_schema",
    "split_block",
    "taav_equivalent_schema",
]
