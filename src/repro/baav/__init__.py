"""The BaaV model: KV schemas, keyed blocks, stores and maintenance."""

from repro.baav.block import Block, BlockStats, split_block
from repro.baav.frame import (
    BlockSetFrame,
    ColumnFrame,
    group_fold,
    hash_probe,
    project,
    select_mask,
)
from repro.baav.maintenance import Maintainer
from repro.baav.schema import BaaVSchema, KVSchema, kv_schema, taav_equivalent_schema
from repro.baav.store import BaaVStore, KVInstance

__all__ = [
    "BaaVSchema",
    "BaaVStore",
    "Block",
    "BlockSetFrame",
    "BlockStats",
    "ColumnFrame",
    "KVInstance",
    "KVSchema",
    "Maintainer",
    "group_fold",
    "hash_probe",
    "kv_schema",
    "project",
    "select_mask",
    "split_block",
    "taav_equivalent_schema",
]
