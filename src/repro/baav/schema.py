"""BaaV schemas: KV schemas ``R̃⟨X, Y⟩`` and sets thereof (§4.1).

A KV schema declares how (part of) one relation is stored as keyed blocks:
``X`` are the key attributes, ``Y`` the value attributes; any attributes of
the relation may serve as key — the defining liberty of BaaV over TaaV.

A KV schema may carry a primary key ``W ⊆ XY``: tuples of a block are
distinct on ``W ∩ Y``. When the relation's primary key is contained in
``XY`` it is inherited; otherwise the whole ``XY`` serves as the default.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema


class KVSchema:
    """A KV schema ``R̃⟨X, Y⟩`` over one relation schema."""

    __slots__ = ("name", "relation", "key", "value", "primary_key")

    def __init__(
        self,
        name: str,
        relation: RelationSchema,
        key: Sequence[str],
        value: Sequence[str],
        primary_key: Optional[Sequence[str]] = None,
    ) -> None:
        if not name:
            raise SchemaError("KV schema name must be non-empty")
        if not key:
            raise SchemaError(f"KV schema {name!r} needs at least one key attribute")
        if not value:
            raise SchemaError(f"KV schema {name!r} needs at least one value attribute")
        for attr in list(key) + list(value):
            if attr not in relation:
                raise SchemaError(
                    f"KV schema {name!r}: {attr!r} is not an attribute of "
                    f"{relation.name!r}"
                )
        overlap = set(key) & set(value)
        if overlap:
            raise SchemaError(
                f"KV schema {name!r}: key and value overlap on {sorted(overlap)}"
            )
        self.name = name
        self.relation = relation
        self.key: Tuple[str, ...] = tuple(key)
        self.value: Tuple[str, ...] = tuple(value)
        attrs = set(self.key) | set(self.value)
        if primary_key is not None:
            if not set(primary_key) <= attrs:
                raise SchemaError(
                    f"KV schema {name!r}: primary key must be within XY"
                )
            self.primary_key: Tuple[str, ...] = tuple(primary_key)
        elif relation.primary_key and set(relation.primary_key) <= attrs:
            self.primary_key = tuple(relation.primary_key)
        else:
            self.primary_key = self.key + self.value

    @property
    def attributes(self) -> Tuple[str, ...]:
        """``att(R̃)`` — all attributes, key first."""
        return self.key + self.value

    @property
    def width(self) -> int:
        return len(self.key) + len(self.value)

    def covers(self, attrs: Iterable[str]) -> bool:
        return set(attrs) <= set(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KVSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.relation.name == other.relation.name
            and self.key == other.key
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.name, self.relation.name, self.key, self.value))

    def __repr__(self) -> str:
        return (
            f"KVSchema({self.name}: {self.relation.name}"
            f"<{','.join(self.key)} | {','.join(self.value)}>)"
        )


class BaaVSchema:
    """A set of KV schemas — the paper's ``R̃``."""

    def __init__(self, schemas: Iterable[KVSchema] = ()) -> None:
        self._schemas: Dict[str, KVSchema] = {}
        for schema in schemas:
            self.add(schema)

    def add(self, schema: KVSchema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"duplicate KV schema name {schema.name!r}")
        self._schemas[schema.name] = schema

    def __iter__(self) -> Iterator[KVSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def get(self, name: str) -> KVSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown KV schema {name!r}") from None

    def over_relation(self, relation: str) -> List[KVSchema]:
        """All KV schemas declared over ``relation``."""
        return [s for s in self if s.relation.name == relation]

    def relations(self) -> Set[str]:
        return {s.relation.name for s in self}

    def total_attributes(self) -> int:
        """The paper's |R̃| (attribute count over all KV schemas)."""
        return sum(s.width for s in self)

    def __repr__(self) -> str:
        return f"BaaVSchema({', '.join(self._schemas)})"


def kv_schema(
    name: str,
    relation: RelationSchema,
    key: Sequence[str],
    value: Optional[Sequence[str]] = None,
    primary_key: Optional[Sequence[str]] = None,
) -> KVSchema:
    """Convenience constructor; ``value=None`` means "all other attributes"."""
    if value is None:
        value = [a for a in relation.attribute_names if a not in set(key)]
    return KVSchema(name, relation, key, value, primary_key)


def taav_equivalent_schema(relation: RelationSchema) -> KVSchema:
    """The KV schema whose instances coincide with the TaaV layout.

    TaaV is the special case of BaaV with singleton blocks (§4.1): key the
    primary key, value everything else.
    """
    if not relation.primary_key:
        raise SchemaError(
            f"relation {relation.name!r} has no primary key for TaaV layout"
        )
    value = [
        a for a in relation.attribute_names if a not in set(relation.primary_key)
    ]
    if not value:
        # degenerate all-key relation: re-expose the last key attr as value
        value = [relation.attribute_names[-1]]
        key = [a for a in relation.primary_key if a != value[0]]
        return KVSchema(f"taav_{relation.name}", relation, key, value)
    return KVSchema(
        f"taav_{relation.name}", relation, relation.primary_key, value
    )
