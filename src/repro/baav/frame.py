"""Columnar frames: the vectorized view of blocks and block sets (PR 10).

A :class:`ColumnFrame` re-encodes decoded entries ``(row, count)`` into
per-attribute columns so selection, projection, joins and group-bys run as
batch kernels over whole frames instead of per-row interpreter loops.

Layout. Each column is either

* an ``array('q')`` / ``array('d')`` when every present value is a plain
  ``int`` / ``float`` (``bool`` is deliberately excluded so round-trips
  preserve types), with NULLs stored as ``0`` placeholders behind a
  validity mask, or
* a plain ``list`` holding the raw values (``None`` in place) for mixed
  or non-numeric columns.

The validity mask per column is either ``None`` — every entry valid — or a
``list[bool]`` with ``False`` marking NULL slots. ``counts`` carries the
per-entry multiplicities of the compressed block representation, so a
frame of *n* entries can describe far more than *n* logical tuples.

:class:`BlockSetFrame` is the execution-time sibling: a lazy columnar view
over a :class:`~repro.kba.blockset.BlockSet` that materializes only the
columns an operator actually touches (a selection on one attribute of a
wide block never builds the other columns). Both classes expose the same
column protocol — ``dense(pos)`` / ``values(pos)`` / ``n`` — which the
compiled kernels of :mod:`repro.kba.compile` are written against.

The module-level batch kernels (:func:`select_mask`, :func:`project`,
:func:`hash_probe`, :func:`group_fold`) are the building blocks the
compiled plans use; they are also usable directly on frames.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.relational.types import Row

Column = Union[array, List[object]]
ValidMask = Optional[List[bool]]

#: largest magnitude storable in a signed 64-bit ``array('q')`` slot
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _pack_column(values: List[object]) -> Tuple[Column, ValidMask]:
    """Encode one column as (typed array | list, validity mask).

    Typed arrays are used only when every present value is a plain
    ``int`` (in 64-bit range) or every present value is a plain
    ``float`` — mixing the two would coerce ints to floats and break
    the round-trip, so mixed numeric columns stay as lists.
    """
    has_null = False
    all_int = True
    all_float = True
    for v in values:
        if v is None:
            has_null = True
        elif type(v) is int:
            all_float = False
            if not _INT64_MIN <= v <= _INT64_MAX:
                all_int = False
        elif type(v) is float:
            all_int = False
        else:
            all_int = all_float = False
        if not all_int and not all_float:
            break
    mask: ValidMask = None
    if has_null:
        mask = [v is not None for v in values]
    if all_int and all_float:
        # column is empty or all-NULL: keep the raw list
        return list(values), mask
    if all_int:
        if mask is None:
            return array("q", values), None
        return array("q", [0 if v is None else v for v in values]), mask
    if all_float:
        if mask is None:
            return array("d", values), None
        return array("d", [0.0 if v is None else v for v in values]), mask
    return list(values), mask


def _unpack_column(column: Column, mask: ValidMask) -> List[object]:
    """Decode a packed column back to a value list with ``None`` holes."""
    if mask is None:
        return list(column)
    if isinstance(column, array):
        return [v if ok else None for v, ok in zip(column, mask)]
    # list columns keep None in place; the mask is advisory
    return list(column)


class ColumnFrame:
    """A fully materialized columnar frame over entries ``(row, count)``."""

    __slots__ = ("attrs", "columns", "valid", "counts")

    def __init__(
        self,
        attrs: Tuple[str, ...],
        columns: List[Column],
        valid: List[ValidMask],
        counts: List[int],
    ) -> None:
        if len(columns) != len(attrs) or len(valid) != len(attrs):
            raise ExecutionError(
                f"frame width mismatch: {len(attrs)} attrs, "
                f"{len(columns)} columns, {len(valid)} masks"
            )
        for column in columns:
            if len(column) != len(counts):
                raise ExecutionError(
                    f"frame length mismatch: column of {len(column)} "
                    f"entries vs {len(counts)} counts"
                )
        self.attrs = attrs
        self.columns = columns
        self.valid = valid
        self.counts = counts

    @classmethod
    def from_entries(
        cls, attrs: Sequence[str], entries: Sequence[Tuple[Row, int]]
    ) -> "ColumnFrame":
        """Pivot row-major entries into per-attribute columns."""
        attrs = tuple(attrs)
        width = len(attrs)
        for row, _ in entries:
            if len(row) != width:
                raise ExecutionError(
                    f"entry width {len(row)} does not match "
                    f"{width} frame attributes"
                )
        columns: List[Column] = []
        valid: List[ValidMask] = []
        for pos in range(width):
            packed, mask = _pack_column([row[pos] for row, _ in entries])
            columns.append(packed)
            valid.append(mask)
        counts = [count for _, count in entries]
        return cls(attrs, columns, valid, counts)

    # -- sizes -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Distinct entries held (the compressed length)."""
        return len(self.counts)

    @property
    def num_entries(self) -> int:
        return len(self.counts)

    @property
    def num_tuples(self) -> int:
        """Logical tuple count — entries weighted by multiplicity."""
        return sum(self.counts)

    @property
    def width(self) -> int:
        return len(self.attrs)

    def num_values(self) -> int:
        """Logical values held (entries × width), the #data unit."""
        return len(self.counts) * len(self.attrs)

    # -- column access -----------------------------------------------------

    def dense(self, pos: int) -> Tuple[Column, ValidMask]:
        """Raw column storage: ``(column, mask)``; mask ``None`` ⇔ no NULLs.

        Typed-array columns hold placeholders in masked slots; list
        columns keep ``None`` in place. Kernels use the mask to skip
        NULL slots without per-value ``is None`` checks on clean columns.
        """
        return self.columns[pos], self.valid[pos]

    def values(self, pos: int) -> Sequence[object]:
        """The decoded column: values with ``None`` in NULL slots."""
        column, mask = self.columns[pos], self.valid[pos]
        if mask is None or not isinstance(column, array):
            return column
        return [v if ok else None for v, ok in zip(column, mask)]

    def to_entries(self) -> List[Tuple[Row, int]]:
        """Rebuild row-major entries from the columnar storage."""
        decoded = [
            _unpack_column(column, mask)
            for column, mask in zip(self.columns, self.valid)
        ]
        if not decoded:
            return [((), count) for count in self.counts]
        return [
            (row, count) for row, count in zip(zip(*decoded), self.counts)
        ]

    # -- comparison --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnFrame):
            return NotImplemented
        return (
            self.attrs == other.attrs
            and self.counts == other.counts
            and self.to_entries() == other.to_entries()
        )

    def __repr__(self) -> str:
        return (
            f"ColumnFrame({len(self.attrs)} cols, {self.n} entries, "
            f"{self.num_tuples} tuples)"
        )


class BlockSetFrame:
    """Lazy columnar view over a BlockSet's entries.

    Columns are materialized (and cached) on first access, so operators
    touch only the attributes they reference. The underlying
    ``triples`` — ``(key, value_row, count)`` in blockset iteration
    order — stay available so operators can rebuild exact output entries
    without a row round-trip through the columns.
    """

    __slots__ = (
        "attrs", "n_key", "triples",
        "_cols", "_masks", "_counts", "_keys", "_values",
    )

    def __init__(self, blockset) -> None:
        self.attrs: Tuple[str, ...] = blockset.attrs
        self.n_key = len(blockset.key_attrs)
        # same order as blockset.iter_entries(); inlined because the
        # generator's per-item resumption dominates on wide block sets
        self.triples: List[Tuple[Row, Row, int]] = [
            (key, value, count)
            for key, entries in blockset.data.items()
            for value, count in entries
        ]
        self._cols: Dict[int, Column] = {}
        self._masks: Dict[int, ValidMask] = {}
        self._counts: Optional[List[int]] = None
        self._keys: Optional[List[Row]] = None
        self._values: Optional[List[Row]] = None

    @property
    def n(self) -> int:
        return len(self.triples)

    @property
    def counts(self) -> List[int]:
        if self._counts is None:
            self._counts = list(map(itemgetter(2), self.triples))
        return self._counts

    def dense(self, pos: int) -> Tuple[Column, ValidMask]:
        """Materialize (once) and return ``(column, mask)`` for ``pos``.

        Extraction runs as two chained ``map(itemgetter(...))`` passes —
        both loops stay in C — with the key/value row lists cached across
        columns of the same side.
        """
        column = self._cols.get(pos)
        if column is None:
            n_key = self.n_key
            if pos < n_key:
                if self._keys is None:
                    self._keys = list(map(itemgetter(0), self.triples))
                column = list(map(itemgetter(pos), self._keys))
            else:
                if self._values is None:
                    self._values = list(map(itemgetter(1), self.triples))
                column = list(map(itemgetter(pos - n_key), self._values))
            mask: ValidMask = None
            if None in column:
                mask = [v is not None for v in column]
            self._cols[pos] = column
            self._masks[pos] = mask
        return column, self._masks[pos]

    def values(self, pos: int) -> Sequence[object]:
        """The decoded column (list columns keep ``None`` in place)."""
        return self.dense(pos)[0]


#: the structural protocol shared by ColumnFrame and BlockSetFrame
Frame = Union[ColumnFrame, BlockSetFrame]


# -- batch kernels -------------------------------------------------------------


def select_mask(frame: ColumnFrame, mask: Sequence[object]) -> ColumnFrame:
    """Keep the entries whose mask slot is truthy (σ as one take pass)."""
    if len(mask) != frame.n:
        raise ExecutionError(
            f"mask length {len(mask)} does not match frame of {frame.n}"
        )
    take = [i for i, keep in enumerate(mask) if keep]
    columns: List[Column] = []
    valid: List[ValidMask] = []
    for column, col_mask in zip(frame.columns, frame.valid):
        if isinstance(column, array):
            taken: Column = array(column.typecode, (column[i] for i in take))
        else:
            taken = [column[i] for i in take]
        columns.append(taken)
        valid.append(
            None if col_mask is None else [col_mask[i] for i in take]
        )
    counts = [frame.counts[i] for i in take]
    return ColumnFrame(frame.attrs, columns, valid, counts)


def project(
    frame: ColumnFrame,
    positions: Sequence[int],
    attrs: Optional[Tuple[str, ...]] = None,
) -> ColumnFrame:
    """π without multiplicity folding: reorder/drop columns by position."""
    if attrs is None:
        attrs = tuple(frame.attrs[p] for p in positions)
    columns = [frame.columns[p] for p in positions]
    valid = [frame.valid[p] for p in positions]
    return ColumnFrame(attrs, columns, valid, list(frame.counts))


def hash_probe(
    build: Frame,
    build_positions: Sequence[int],
    probe: Frame,
    probe_positions: Sequence[int],
) -> List[List[int]]:
    """Batch hash join core: for each probe entry, the matching build rows.

    Builds a hash table over ``build``'s join-key columns once, then
    answers every probe entry in one pass. Entries whose join key
    contains a NULL match nothing (SQL join semantics). The returned
    build-row indices preserve build order, so callers produce the same
    output order as a per-row nested probe.
    """
    table: Dict[Row, List[int]] = {}
    build_cols = [build.values(p) for p in build_positions]
    if build_cols:
        for i, key in enumerate(zip(*build_cols)):
            if None in key:
                continue
            bucket = table.get(key)
            if bucket is None:
                table[key] = bucket = []
            bucket.append(i)
    else:
        table[()] = list(range(build.n))
    probe_cols = [probe.values(p) for p in probe_positions]
    empty: List[int] = []
    if not probe_cols:
        hit = table.get((), empty)
        return [hit] * probe.n
    return [
        empty if None in key else table.get(key, empty)
        for key in zip(*probe_cols)
    ]


def group_fold(
    frame: Frame,
    key_positions: Sequence[int],
    arg_columns: Sequence[Optional[Sequence[object]]],
    make_accumulators: Callable[[], List],
) -> Dict[Row, List]:
    """Fold entries into per-group accumulator lists (γ core).

    ``arg_columns`` supplies one per-entry input column per accumulator;
    ``None`` feeds the constant ``True`` (the ``COUNT(*)`` shape). Group
    keys appear in first-encounter order, matching the row-at-a-time
    fold exactly.
    """
    key_cols = [frame.values(p) for p in key_positions]
    if key_cols:
        keys: Sequence[Row] = list(zip(*key_cols))
    else:
        keys = [()] * frame.n
    counts = frame.counts
    groups: Dict[Row, List] = {}
    for i, group_key in enumerate(keys):
        accs = groups.get(group_key)
        if accs is None:
            accs = make_accumulators()
            groups[group_key] = accs
        count = counts[i]
        for column, acc in zip(arg_columns, accs):
            acc.add(True if column is None else column[i], count)
    return groups
