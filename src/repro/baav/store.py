"""KV instances and BaaV stores over the KV cluster (§4.1, §8.2).

A :class:`KVInstance` materializes one KV schema ``R̃⟨X, Y⟩`` as keyed
blocks living in the shared :class:`repro.kv.KVCluster`:

* physical key = ``(x1, ..., xn, segment)`` — blocks above the split
  threshold are stored as multiple segments that logically form one block;
* physical value = the encoded block segment, whose first varint records
  the total number of segments of that key (written on segment 0);
* a sidecar ``...#stats`` entry per key holds the per-block group-by
  statistics used by the aggregate fast path.

A :class:`BaaVStore` is the set of KV instances of a BaaV schema —
the paper's ``D̃``, with its degree ``deg(D̃)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.baav.block import Block, BlockStats, split_block
from repro.baav.schema import BaaVSchema, KVSchema
from repro.errors import BaaVError
from repro.kv import codec
from repro.kv.cache import read_through, read_through_many
from repro.kv.cluster import KVCluster
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import Row

DEFAULT_SPLIT_THRESHOLD = 10_000


class KVInstance:
    """A KV instance ``D̃`` of one KV schema, stored in the cluster."""

    def __init__(
        self,
        schema: KVSchema,
        cluster: KVCluster,
        compress: bool = True,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        keep_stats: bool = True,
        cache=None,
    ) -> None:
        self.schema = schema
        self.cluster = cluster
        self.compress = compress
        self.split_threshold = split_threshold
        self.keep_stats = keep_stats
        #: optional client-side read-through block cache (repro.kv.cache);
        #: registered with the cluster so writes invalidate stale segments
        self.cache = cache
        cluster.register_cache(cache)
        self.namespace = f"baav:{schema.name}"
        self.stats_namespace = f"baav:{schema.name}#stats"
        self._degree = 0
        self._num_blocks = 0
        self._num_tuples = 0

    # -- properties ---------------------------------------------------------

    @property
    def degree(self) -> int:
        """``deg(D̃)``: the maximum logical block size."""
        return self._degree

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    # -- bulk load ------------------------------------------------------------

    def build_from(self, relation: Relation) -> None:
        """Map ``relation`` onto this KV schema: project on XY, group by X."""
        if relation.schema.name != self.schema.relation.name:
            raise BaaVError(
                f"instance of {self.schema.relation.name!r} cannot be built "
                f"from {relation.schema.name!r}"
            )
        key_pos = relation.schema.indexes_of(self.schema.key)
        value_pos = relation.schema.indexes_of(self.schema.value)
        grouped: Dict[Row, List[Row]] = defaultdict(list)
        for row in relation.rows:
            key = tuple(row[p] for p in key_pos)
            grouped[key].append(tuple(row[p] for p in value_pos))
        for key, rows in grouped.items():
            block = Block.from_rows(rows, compress=self.compress)
            self._write_block(key, block)

    def _write_block(self, key: Row, block: Block) -> None:
        segments = split_block(block, self.split_threshold)
        n_segments = len(segments)
        for index, segment in enumerate(segments):
            payload = _encode_segment(n_segments if index == 0 else 0, segment)
            self.cluster.put(
                self.namespace,
                codec.encode_key(key + (index,)),
                payload,
                n_values=segment.num_values(),
            )
        if self.keep_stats:
            stats = block.stats(self.schema.value)
            if stats:
                self.cluster.put(
                    self.stats_namespace,
                    codec.encode_key(key),
                    _encode_stats(stats),
                    n_values=len(stats) * 4,
                )
        self._num_blocks += 1
        self._num_tuples += block.num_tuples
        if block.num_tuples > self._degree:
            self._degree = block.num_tuples

    # -- point access -----------------------------------------------------------

    def _cached_get(self, encoded: bytes) -> Tuple[Optional[bytes], bool]:
        """Fetch one segment payload; returns (payload, reached_cluster).

        Read-through: a cache hit serves the payload locally — no node
        counters move, zero round trips — and only misses issue a
        cluster get (which fills the cache).
        """
        return read_through(
            self.cache,
            self.namespace,
            encoded,
            lambda kb: self.cluster.get(self.namespace, kb, n_values=1),
            versions=self.cluster.versions,
        )

    def _cached_multi_get(
        self, encoded_keys: Sequence[bytes]
    ) -> List[Tuple[Optional[bytes], bool]]:
        """Positional batched segment fetch; hits never reach the cluster."""
        return read_through_many(
            self.cache,
            self.namespace,
            encoded_keys,
            lambda missing: self.cluster.multi_get(
                self.namespace, missing, n_values_each=1
            ),
            versions=self.cluster.versions,
        )

    def get(self, key: Row) -> Optional[Block]:
        """Fetch the whole logical block for ``key`` (1 get per segment)."""
        first, fetched = self._cached_get(codec.encode_key(tuple(key) + (0,)))
        if first is None:
            return None
        n_segments, block = _decode_segment(first)
        if fetched:
            self._charge_block_values(block)
        for index in range(1, n_segments):
            data, fetched = self._cached_get(
                codec.encode_key(tuple(key) + (index,))
            )
            if data is None:
                raise BaaVError(
                    f"missing segment {index} of key {key!r} in {self.schema.name}"
                )
            _, segment = _decode_segment(data)
            if fetched:
                self._charge_block_values(segment)
            block.entries.extend(segment.entries)
        return block

    def multi_get(self, keys: Sequence[Row]) -> Dict[Row, Optional[Block]]:
        """Fetch many logical blocks with coalesced multi-gets.

        Two batched waves instead of one get per segment: wave 1 fetches
        every key's segment 0 (one round trip per owning node for the
        whole batch), wave 2 fetches all remaining segments of
        multi-segment blocks. Duplicate keys are fetched once. With a
        cache attached, cached segments are served locally and only the
        missing ones are batched to the cluster.
        """
        unique: List[Row] = list(dict.fromkeys(tuple(k) for k in keys))
        firsts = self._cached_multi_get(
            [codec.encode_key(key + (0,)) for key in unique]
        )
        blocks: Dict[Row, Optional[Block]] = {}
        pending: List[Tuple[Row, int]] = []
        for key, (data, fetched) in zip(unique, firsts):
            if data is None:
                blocks[key] = None
                continue
            n_segments, block = _decode_segment(data)
            if fetched:
                self._charge_block_values(block)
            blocks[key] = block
            for index in range(1, n_segments):
                pending.append((key, index))
        if pending:
            extras = self._cached_multi_get(
                [codec.encode_key(key + (index,)) for key, index in pending]
            )
            # pending holds each key's tail segments in ascending index
            # order, so extending in zip order reassembles the block
            for (key, index), (data, fetched) in zip(pending, extras):
                if data is None:
                    raise BaaVError(
                        f"missing segment {index} of key {key!r} "
                        f"in {self.schema.name}"
                    )
                _, segment = _decode_segment(data)
                if fetched:
                    self._charge_block_values(segment)
                blocks[key].entries.extend(segment.entries)
        return blocks

    def _charge_block_values(
        self, block: Block, already_counted: int = 1
    ) -> None:
        """Account the logical values of a fetched block.

        ``cluster.get``/``multi_get`` counted ``n_values=1`` (the serving
        node is only known inside the cluster); the remainder is spread
        evenly, which keeps totals exact and per-node counts approximate.
        ``cluster.scan`` likewise counts one value per pair on the owning
        node, so scans also top up with ``already_counted=1`` and per-key,
        batched and scan paths all charge identically.
        """
        self.cluster.charge_values_read(
            block.num_values() - already_counted, live_only=False
        )

    def get_stats(self, key: Row) -> Optional[Dict[str, BlockStats]]:
        """Fetch only the per-block statistics (1 get, tiny payload)."""
        if not self.keep_stats:
            return None
        data, _ = read_through(
            self.cache,
            self.stats_namespace,
            codec.encode_key(tuple(key)),
            lambda kb: self.cluster.get(self.stats_namespace, kb, n_values=4),
            versions=self.cluster.versions,
        )
        if data is None:
            return None
        return _decode_stats(data)

    # -- scans ---------------------------------------------------------------

    def scan(self, batch_size: int = 1) -> Iterator[Tuple[Row, Block]]:
        """Iterate all logical blocks (gets counted per physical segment).

        ``batch_size=1`` drives the scan the conventional way: keys via
        ``next()``, one get (and round trip) per physical segment. A
        larger batch extracts the key list first and coalesces the gets
        into multi-get rounds — same #get, far fewer round trips.

        Segments of one key may be served by different nodes; we merge them
        by buffering partial blocks.
        """
        if batch_size > 1:
            keys = self.keys()
            for start in range(0, len(keys), batch_size):
                chunk = keys[start:start + batch_size]
                blocks = self.multi_get(chunk)
                for key in chunk:
                    block = blocks[key]
                    if block is not None:
                        yield key, block
            return
        partial: Dict[Row, List[Tuple[int, Block]]] = defaultdict(list)
        for key_bytes, payload in self.cluster.scan(
            self.namespace, count_as_gets=True
        ):
            physical_key = codec.decode_key(key_bytes)
            key, segment_index = physical_key[:-1], physical_key[-1]
            _, segment = _decode_segment(payload)
            # cluster.scan charged 1 value on the owning node; top up the
            # decoded remainder so per-key and batched paths charge alike
            self._charge_block_values(segment, already_counted=1)
            partial[key].append((segment_index, segment))
        for key, segments in partial.items():
            segments.sort(key=lambda pair: pair[0])
            block = Block([])
            for _, segment in segments:
                block.entries.extend(segment.entries)
            yield key, block

    def keys(self) -> List[Row]:
        """All logical keys (uncounted; planner metadata)."""
        out = []
        for key_bytes in self.cluster.namespace_keys(self.namespace):
            physical_key = codec.decode_key(key_bytes)
            if physical_key[-1] == 0:
                out.append(physical_key[:-1])
        return out

    # -- conversions -----------------------------------------------------------

    def relational_version(self) -> Relation:
        """Flatten to the relational version over schema ``(X, Y)`` (§4.1)."""
        rel_schema = self.relation_view_schema()
        rows: List[Row] = []
        for key, block in self.scan():
            for row in block.expand():
                rows.append(tuple(key) + tuple(row))
        return Relation(rel_schema, rows)

    def relation_view_schema(self) -> RelationSchema:
        source = self.schema.relation
        attrs = [
            Attribute(a, source.type_of(a))
            for a in self.schema.key + self.schema.value
        ]
        return RelationSchema(f"{self.schema.name}_view", attrs)

    def size_bytes(self) -> int:
        total = 0
        for key_bytes in self.cluster.namespace_keys(self.namespace):
            payload = self.cluster.peek(self.namespace, key_bytes)
            if payload is not None:
                total += len(key_bytes) + len(payload)
        return total

    def recompute_degree(self) -> int:
        """Recompute the degree by scanning (uncounted); also refresh it."""
        degree = 0
        counts: Dict[Row, int] = defaultdict(int)
        for key_bytes in self.cluster.namespace_keys(self.namespace):
            payload = self.cluster.peek(self.namespace, key_bytes)
            if payload is None:
                continue
            physical_key = codec.decode_key(key_bytes)
            _, segment = _decode_segment(payload)
            counts[physical_key[:-1]] += segment.num_tuples
        if counts:
            degree = max(counts.values())
        self._degree = degree
        self._num_blocks = len(counts)
        self._num_tuples = sum(counts.values())
        return degree

    def __repr__(self) -> str:
        return (
            f"KVInstance({self.schema.name}, blocks={self._num_blocks}, "
            f"deg={self._degree})"
        )


def _encode_segment(n_segments: int, block: Block) -> bytes:
    head: List[bytes] = []
    codec._write_varint(head, n_segments)
    return b"".join(head) + block.encode()


def _decode_segment(data: bytes) -> Tuple[int, Block]:
    n_segments, pos = codec._read_varint(data, 0)
    entries, _ = codec.decode_entries(data, pos)
    return n_segments, Block(entries)


def _encode_stats(stats: Dict[str, BlockStats]) -> bytes:
    rows = [
        ((attr, s.minimum, s.maximum, s.total, s.count),)
        for attr, s in sorted(stats.items())
    ]
    flat = [row[0] for row in rows]
    return codec.encode_entries([(row, 1) for row in flat])


def _decode_stats(data: bytes) -> Dict[str, BlockStats]:
    entries, _ = codec.decode_entries(data)
    out: Dict[str, BlockStats] = {}
    for row, _count in entries:
        attr, minimum, maximum, total, count = row
        out[attr] = BlockStats(minimum, maximum, total, count)
    return out


class BaaVStore:
    """A BaaV store ``D̃``: the KV instances of a BaaV schema."""

    def __init__(
        self,
        schema: BaaVSchema,
        cluster: KVCluster,
        compress: bool = True,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        keep_stats: bool = True,
        cache=None,
    ) -> None:
        self.schema = schema
        self.cluster = cluster
        self.compress = compress
        self.split_threshold = split_threshold
        self.keep_stats = keep_stats
        self.cache = cache
        self.instances: Dict[str, KVInstance] = {}

    @classmethod
    def map_database(
        cls,
        database: Database,
        schema: BaaVSchema,
        cluster: KVCluster,
        compress: bool = True,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        keep_stats: bool = True,
        cache=None,
    ) -> "BaaVStore":
        """The mapping of ``D`` on ``R̃`` (§4.1): build every KV instance."""
        store = cls(
            schema, cluster, compress, split_threshold, keep_stats, cache
        )
        for kv_schema in schema:
            instance = KVInstance(
                kv_schema,
                cluster,
                compress,
                split_threshold,
                keep_stats,
                cache=cache,
            )
            instance.build_from(database.relation(kv_schema.relation.name))
            store.instances[kv_schema.name] = instance
        return store

    def instance(self, name: str) -> KVInstance:
        try:
            return self.instances[name]
        except KeyError:
            raise BaaVError(f"no KV instance named {name!r}") from None

    def __iter__(self) -> Iterator[KVInstance]:
        return iter(self.instances.values())

    def degree(self) -> int:
        """``deg(D̃)``: max degree over all instances."""
        if not self.instances:
            return 0
        return max(instance.degree for instance in self)

    def instances_over(self, relation: str) -> List[KVInstance]:
        return [
            i for i in self if i.schema.relation.name == relation
        ]

    def size_bytes(self) -> int:
        return sum(instance.size_bytes() for instance in self)

    def __repr__(self) -> str:
        return f"BaaVStore({len(self.instances)} instances, deg={self.degree()})"
