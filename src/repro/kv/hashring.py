"""Consistent hashing ring used by the DHT to place keys on storage nodes.

KV systems shard data over nodes with a distributed hash table (§3). We use
classic consistent hashing with virtual nodes so that adding a storage node
(the horizontal-scalability experiment, Exp-4) only moves ~1/n of the keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping byte keys to node ids."""

    def __init__(self, node_ids: Sequence[int] = (), replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self._replicas = replicas
        self._ring: List[Tuple[int, int]] = []  # (hash point, node id)
        self._points: List[int] = []
        self._nodes: Dict[int, bool] = {}
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already on the ring")
        self._nodes[node_id] = True
        for replica in range(self._replicas):
            point = _hash64(f"node:{node_id}:{replica}".encode())
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._ring.insert(index, (point, node_id))

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id} not on the ring")
        del self._nodes[node_id]
        kept = [(p, n) for (p, n) in self._ring if n != node_id]
        self._ring = kept
        self._points = [p for p, _ in kept]

    def node_for(self, key: bytes) -> int:
        """Return the node id owning ``key``."""
        if not self._ring:
            raise ValueError("hash ring is empty")
        point = _hash64(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]
