"""Consistent hashing ring used by the DHT to place keys on storage nodes.

KV systems shard data over nodes with a distributed hash table (§3). We use
classic consistent hashing with virtual nodes so that adding a storage node
(the horizontal-scalability experiment, Exp-4) only moves ~1/n of the keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple


def _hash64(data: bytes) -> int:
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping byte keys to node ids."""

    def __init__(self, node_ids: Sequence[int] = (), replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self._replicas = replicas
        self._ring: List[Tuple[int, int]] = []  # (hash point, node id)
        self._points: List[int] = []
        self._nodes: Dict[int, bool] = {}
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already on the ring")
        self._nodes[node_id] = True
        for replica in range(self._replicas):
            point = _hash64(f"node:{node_id}:{replica}".encode())
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._ring.insert(index, (point, node_id))

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id} not on the ring")
        del self._nodes[node_id]
        kept = [(p, n) for (p, n) in self._ring if n != node_id]
        self._ring = kept
        self._points = [p for p, _ in kept]

    def node_for(self, key: bytes) -> int:
        """Return the node id owning ``key``."""
        if not self._ring:
            raise ValueError("hash ring is empty")
        point = _hash64(key)
        index = bisect.bisect(self._points, point)
        if index == len(self._points):
            index = 0
        return self._ring[index][1]

    def iter_nodes(self, key: bytes) -> Iterator[int]:
        """Walk the ring clockwise from ``key``, yielding DISTINCT node ids.

        The first id yielded is :meth:`node_for`; subsequent ids are the
        successor nodes in ring order, each yielded once. Replica
        placement and failover both consume this walk: the first ``n``
        live ids are a key's preference list, so losing a node shifts
        ownership to the next distinct successor — never reshuffling
        unrelated keys.
        """
        if not self._ring:
            raise ValueError("hash ring is empty")
        point = _hash64(key)
        start = bisect.bisect(self._points, point)
        seen: set = set()
        total = len(self._nodes)
        for offset in range(len(self._ring)):
            node_id = self._ring[(start + offset) % len(self._ring)][1]
            if node_id not in seen:
                seen.add(node_id)
                yield node_id
                if len(seen) == total:
                    return

    def nodes_for(self, key: bytes, n: int) -> List[int]:
        """The first ``n`` distinct owners of ``key`` in ring-walk order.

        ``nodes_for(key, 1) == [node_for(key)]``. When the ring has
        fewer than ``n`` nodes, every node is returned (a replication
        factor can exceed the momentary cluster size during churn).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        out: List[int] = []
        for node_id in self.iter_nodes(key):
            out.append(node_id)
            if len(out) == n:
                break
        return out
