"""The node wire protocol: length-prefixed binary frames.

This is the on-the-wire format between a :class:`~repro.kv.cluster.KVCluster`
client and a storage-node process (:mod:`repro.kv.server`). It carries
exactly the batch operations the in-process :class:`~repro.kv.node.StorageNode`
store surface already has — ``multi_get`` / ``multi_put`` / ``scan`` /
``delete`` / ``drop_prefix`` (the namespace drop) / ``get_stats`` — so the
two transports stay op-for-op equivalent.

Frame layout (both directions)::

    +----------------+---------------------------+
    | u32 length (BE)| payload (length bytes)    |
    +----------------+---------------------------+

Request payload:  ``u8 opcode`` + opcode-specific body.
Response payload: ``u8 status`` + body (``STATUS_OK``) or a
length-prefixed UTF-8 message (``STATUS_ERROR`` for application errors,
``STATUS_PROTOCOL`` for malformed requests).

Body primitives (all lengths/counts are u32 big-endian):

* ``bytes``      — u32 length + raw bytes
* ``opt bytes``  — u8 flag (0 = absent) + bytes when present
* ``list``       — u32 count + items
* ``pair``       — bytes + bytes
* ``str``        — UTF-8 as ``bytes``

Every decoder is strict: truncated input, a declared length past the end
of the frame, an unknown opcode, or trailing garbage raise
:class:`~repro.errors.WireProtocolError` — never a hang, never an
out-of-range read. The server answers protocol errors with a
``STATUS_PROTOCOL`` frame and keeps serving the connection as long as
the *framing* is intact; only an unrecoverable stream (truncated or
oversized length prefix) closes the connection.
"""

from __future__ import annotations

import socket
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WireProtocolError

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

#: hard ceiling on a declared frame length — anything larger is a
#: malformed or hostile frame, refused before any allocation
MAX_FRAME_BYTES = 64 * 1024 * 1024

# -- opcodes (request payload byte 0) ---------------------------------------

OP_PING = 0x01
OP_MULTI_GET = 0x02
OP_MULTI_PUT = 0x03
OP_DELETE = 0x04
OP_MULTI_DELETE = 0x05
OP_SCAN = 0x06
OP_KEYS = 0x07
OP_NEXT_KEY = 0x08
OP_HAS_PREFIX = 0x09
OP_SIZE_BYTES = 0x0A
OP_COUNT = 0x0B
OP_DROP_PREFIX = 0x0C
OP_CLEAR = 0x0D
OP_GET_STATS = 0x0E
OP_SHUTDOWN = 0x0F

OP_NAMES: Dict[int, str] = {
    OP_PING: "PING",
    OP_MULTI_GET: "MULTI_GET",
    OP_MULTI_PUT: "MULTI_PUT",
    OP_DELETE: "DELETE",
    OP_MULTI_DELETE: "MULTI_DELETE",
    OP_SCAN: "SCAN",
    OP_KEYS: "KEYS",
    OP_NEXT_KEY: "NEXT_KEY",
    OP_HAS_PREFIX: "HAS_PREFIX",
    OP_SIZE_BYTES: "SIZE_BYTES",
    OP_COUNT: "COUNT",
    OP_DROP_PREFIX: "DROP_PREFIX",
    OP_CLEAR: "CLEAR",
    OP_GET_STATS: "GET_STATS",
    OP_SHUTDOWN: "SHUTDOWN",
}

#: ops whose body is a single ``bytes`` prefix
_PREFIX_OPS = (OP_SCAN, OP_KEYS, OP_HAS_PREFIX, OP_DROP_PREFIX)
#: ops with an empty body
_NULLARY_OPS = (
    OP_PING, OP_SIZE_BYTES, OP_COUNT, OP_CLEAR, OP_GET_STATS, OP_SHUTDOWN,
)

# -- response status (response payload byte 0) -------------------------------

STATUS_OK = 0x00
STATUS_ERROR = 0x01
STATUS_PROTOCOL = 0x02


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """Length-prefix a payload (refusing oversized ones symmetrically)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _U32.pack(len(payload)) + payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte,
    :class:`WireProtocolError` on EOF mid-read (a truncated frame)."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise WireProtocolError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Read one frame's payload; ``None`` on clean EOF at a frame
    boundary. A truncated length prefix, an oversized declared length,
    or a truncated payload raise :class:`WireProtocolError`."""
    prefix = _recv_exact(sock, _U32.size)
    if prefix is None:
        return None
    (length,) = _U32.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise WireProtocolError("peer closed after the length prefix")
    return payload


# --------------------------------------------------------------------------
# body primitives
# --------------------------------------------------------------------------


class Reader:
    """A strict cursor over one frame payload (bounds-checked reads)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireProtocolError(
                f"truncated payload: wanted {n} bytes at offset "
                f"{self.pos}, frame has {len(self.data)}"
            )
        out = self.data[self.pos:end]
        self.pos = end
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int(_U32.unpack(self._take(_U32.size))[0])

    def u64(self) -> int:
        return int(_U64.unpack(self._take(_U64.size))[0])

    def bytes_(self) -> bytes:
        return self._take(self.u32())

    def opt_bytes(self) -> Optional[bytes]:
        flag = self.u8()
        if flag == 0:
            return None
        if flag != 1:
            raise WireProtocolError(f"bad optional flag {flag:#x}")
        return self.bytes_()

    def str_(self) -> str:
        raw = self.bytes_()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"bad UTF-8 in frame: {exc}") from None

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise WireProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )


def _put_bytes(out: bytearray, raw: bytes) -> None:
    out += _U32.pack(len(raw))
    out += raw


def _put_opt_bytes(out: bytearray, raw: Optional[bytes]) -> None:
    if raw is None:
        out += b"\x00"
    else:
        out += b"\x01"
        _put_bytes(out, raw)


def _put_str(out: bytearray, text: str) -> None:
    _put_bytes(out, text.encode("utf-8"))


# --------------------------------------------------------------------------
# requests
# --------------------------------------------------------------------------


def encode_request(op: int, *args: Any) -> bytes:
    """Encode one request payload (the inverse of :func:`decode_request`)."""
    out = bytearray((op,))
    if op == OP_MULTI_GET or op == OP_MULTI_DELETE:
        (keys,) = args
        out += _U32.pack(len(keys))
        for key in keys:
            _put_bytes(out, key)
    elif op == OP_MULTI_PUT:
        (items,) = args
        out += _U32.pack(len(items))
        for key, value in items:
            _put_bytes(out, key)
            _put_bytes(out, value)
    elif op == OP_DELETE:
        (key,) = args
        _put_bytes(out, key)
    elif op == OP_NEXT_KEY:
        (after,) = args
        _put_opt_bytes(out, after)
    elif op in _PREFIX_OPS:
        (prefix,) = args
        _put_bytes(out, prefix)
    elif op in _NULLARY_OPS:
        if args:
            raise WireProtocolError(f"{OP_NAMES[op]} takes no arguments")
    else:
        raise WireProtocolError(f"unknown opcode {op:#x}")
    return bytes(out)


def decode_request(payload: bytes) -> Tuple[int, Tuple[Any, ...]]:
    """Decode a request payload to ``(opcode, args)``, strictly."""
    if not payload:
        raise WireProtocolError("empty request payload")
    reader = Reader(payload)
    op = reader.u8()
    args: Tuple[Any, ...]
    if op == OP_MULTI_GET or op == OP_MULTI_DELETE:
        args = ([reader.bytes_() for _ in range(reader.u32())],)
    elif op == OP_MULTI_PUT:
        args = (
            [
                (reader.bytes_(), reader.bytes_())
                for _ in range(reader.u32())
            ],
        )
    elif op == OP_DELETE:
        args = (reader.bytes_(),)
    elif op == OP_NEXT_KEY:
        args = (reader.opt_bytes(),)
    elif op in _PREFIX_OPS:
        args = (reader.bytes_(),)
    elif op in _NULLARY_OPS:
        args = ()
    else:
        raise WireProtocolError(f"unknown opcode {op:#x}")
    reader.expect_end()
    return op, args


# --------------------------------------------------------------------------
# responses
# --------------------------------------------------------------------------


def encode_ok(body: bytes = b"") -> bytes:
    return bytes((STATUS_OK,)) + body


def encode_error(status: int, message: str) -> bytes:
    out = bytearray((status,))
    _put_str(out, message)
    return bytes(out)


def decode_response(payload: bytes) -> Tuple[int, bytes]:
    """Split a response payload into (status, body); error statuses get
    their message decoded by :func:`decode_error_message`."""
    if not payload:
        raise WireProtocolError("empty response payload")
    return payload[0], payload[1:]


def decode_error_message(body: bytes) -> str:
    reader = Reader(body)
    message = reader.str_()
    reader.expect_end()
    return message


# -- typed result bodies -----------------------------------------------------


def encode_values(values: List[Optional[bytes]]) -> bytes:
    out = bytearray(_U32.pack(len(values)))
    for value in values:
        _put_opt_bytes(out, value)
    return bytes(out)


def decode_values(body: bytes) -> List[Optional[bytes]]:
    reader = Reader(body)
    values = [reader.opt_bytes() for _ in range(reader.u32())]
    reader.expect_end()
    return values


def encode_pairs(pairs: List[Tuple[bytes, bytes]]) -> bytes:
    out = bytearray(_U32.pack(len(pairs)))
    for key, value in pairs:
        _put_bytes(out, key)
        _put_bytes(out, value)
    return bytes(out)


def decode_pairs(body: bytes) -> List[Tuple[bytes, bytes]]:
    reader = Reader(body)
    pairs = [
        (reader.bytes_(), reader.bytes_()) for _ in range(reader.u32())
    ]
    reader.expect_end()
    return pairs


def encode_keys(keys: List[bytes]) -> bytes:
    out = bytearray(_U32.pack(len(keys)))
    for key in keys:
        _put_bytes(out, key)
    return bytes(out)


def decode_keys(body: bytes) -> List[bytes]:
    reader = Reader(body)
    keys = [reader.bytes_() for _ in range(reader.u32())]
    reader.expect_end()
    return keys


def encode_opt_key(key: Optional[bytes]) -> bytes:
    out = bytearray()
    _put_opt_bytes(out, key)
    return bytes(out)


def decode_opt_key(body: bytes) -> Optional[bytes]:
    reader = Reader(body)
    key = reader.opt_bytes()
    reader.expect_end()
    return key


def encode_bool(flag: bool) -> bytes:
    return b"\x01" if flag else b"\x00"


def decode_bool(body: bytes) -> bool:
    if body == b"\x01":
        return True
    if body == b"\x00":
        return False
    raise WireProtocolError(f"bad bool body {body!r}")


def encode_u64(value: int) -> bytes:
    return _U64.pack(value)


def decode_u64(body: bytes) -> int:
    if len(body) != _U64.size:
        raise WireProtocolError(f"bad u64 body of {len(body)} bytes")
    return int(_U64.unpack(body)[0])


def encode_stats(stats: Dict[str, int]) -> bytes:
    out = bytearray(_U32.pack(len(stats)))
    for key in sorted(stats):
        _put_str(out, key)
        out += _U64.pack(stats[key])
    return bytes(out)


def decode_stats(body: bytes) -> Dict[str, int]:
    reader = Reader(body)
    stats = {reader.str_(): reader.u64() for _ in range(reader.u32())}
    reader.expect_end()
    return stats
