"""A storage node: a memstore plus I/O counters.

Counters are the raw material of the evaluation metrics (#get, #data,
comm): every get/put/scan on a node is tallied here and later folded into
:class:`repro.parallel.metrics.ExecutionMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore


@dataclass
class NodeCounters:
    """Cumulative I/O counters of one storage node.

    ``round_trips`` counts client↔node RPCs: a single get/put is one
    round trip, a coalesced ``multi_get``/``multi_put`` batch of *n* keys
    is one round trip carrying *n* gets/puts. ``gets``/``puts`` stay the
    paper's logical invocation counts, so batching shows up as
    ``round_trips ≪ gets``.

    The ``rebalance_*`` family meters membership churn, not queries:
    every key-range migration (scale-out, decommission, failover
    re-replication, crash recovery) charges the keys and bytes RECEIVED
    by this node plus one bulk-transfer round trip per peer it synced
    from, so Exp-4 can report what elasticity actually costs.
    """

    gets: int = 0
    hits: int = 0
    puts: int = 0
    deletes: int = 0
    values_read: int = 0
    values_written: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    round_trips: int = 0
    rebalance_keys_moved: int = 0
    rebalance_bytes_moved: int = 0
    rebalance_round_trips: int = 0

    def reset(self) -> None:
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.deletes = 0
        self.values_read = 0
        self.values_written = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.round_trips = 0
        self.rebalance_keys_moved = 0
        self.rebalance_bytes_moved = 0
        self.rebalance_round_trips = 0

    def add(self, other: "NodeCounters") -> None:
        self.gets += other.gets
        self.hits += other.hits
        self.puts += other.puts
        self.deletes += other.deletes
        self.values_read += other.values_read
        self.values_written += other.values_written
        self.bytes_out += other.bytes_out
        self.bytes_in += other.bytes_in
        self.round_trips += other.round_trips
        self.rebalance_keys_moved += other.rebalance_keys_moved
        self.rebalance_bytes_moved += other.rebalance_bytes_moved
        self.rebalance_round_trips += other.rebalance_round_trips


class StorageNode:
    """One node of the KV cluster.

    ``engine`` selects the per-node storage engine: ``"mem"`` (sorted
    in-memory map, the default) or ``"lsm"`` (log-structured merge tree,
    the HBase/Cassandra write path — see :mod:`repro.kv.lsm`).
    """

    __slots__ = ("node_id", "store", "counters")

    def __init__(self, node_id: int, engine: str = "mem") -> None:
        self.node_id = node_id
        if engine == "mem":
            self.store = MemStore()
        elif engine == "lsm":
            self.store = LSMStore()
        else:
            raise ValueError(f"unknown storage engine {engine!r}")
        self.counters = NodeCounters()

    def get(self, key: bytes, n_values: int = 1) -> Optional[bytes]:
        """Serve a get; ``n_values`` is the logical value count returned.

        Callers that know the decoded payload size (e.g. a block of 40
        tuples x 3 attributes) pass it so ``values_read`` counts logical
        values, the paper's ``#data`` unit.
        """
        value = self.store.get(key)
        self.counters.gets += 1
        self.counters.round_trips += 1
        if value is not None:
            self.counters.hits += 1
            self.counters.values_read += n_values
            self.counters.bytes_out += len(value)
        return value

    def multi_get(
        self, keys: Sequence[bytes], n_values_each: int = 1
    ) -> List[Optional[bytes]]:
        """Serve a coalesced batch of gets in ONE round trip.

        Counts ``len(keys)`` gets (the paper's invocation unit) but a
        single round trip — the amortization the batched pipeline buys.
        Results are positional: ``out[i]`` answers ``keys[i]``.
        """
        values = self.store.multi_get(keys)
        counters = self.counters
        counters.gets += len(keys)
        if keys:
            counters.round_trips += 1
        for value in values:
            if value is not None:
                counters.hits += 1
                counters.values_read += n_values_each
                counters.bytes_out += len(value)
        return values

    def put(self, key: bytes, value: bytes, n_values: int = 1) -> None:
        self.store.put(key, value)
        self.counters.puts += 1
        self.counters.round_trips += 1
        self.counters.values_written += n_values
        self.counters.bytes_in += len(value)

    def multi_put(
        self, items: Sequence[Tuple[bytes, bytes]], n_values_each: int = 1
    ) -> None:
        """Apply a coalesced batch of puts in ONE round trip."""
        self.store.multi_put(items)
        counters = self.counters
        counters.puts += len(items)
        if items:
            counters.round_trips += 1
        for _, value in items:
            counters.values_written += n_values_each
            counters.bytes_in += len(value)

    def delete(self, key: bytes) -> bool:
        """Serve a delete; the RPC is counted whether or not the key existed.

        ``deletes`` is the logical invocation count (like ``gets``, which
        count misses too) and every delete is one client↔node round trip
        — a miss still crosses the network.
        """
        removed = self.store.delete(key)
        self.counters.deletes += 1
        self.counters.round_trips += 1
        return removed

    def peek(self, key: bytes) -> Optional[bytes]:
        """Read without counting (used for read-modify-write bookkeeping)."""
        return self.store.get(key)

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        """Uncounted raw iteration; cluster-level scans do the counting."""
        return self.store.scan(prefix)

    def __repr__(self) -> str:
        return f"StorageNode(id={self.node_id}, keys={len(self.store)})"
