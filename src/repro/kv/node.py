"""A storage node: a memstore plus I/O counters.

Counters are the raw material of the evaluation metrics (#get, #data,
comm): every get/put/scan on a node is tallied here and later folded into
:class:`repro.parallel.metrics.ExecutionMetrics`.

Concurrency (PR 5)
------------------

The query service executes many queries at once over one shared cluster,
so a node must stay correct under concurrent callers:

* **stores** (the memstore / LSM engine and its internal bookkeeping:
  sorted-key refresh, flush/compaction, read-path statistics) are
  guarded by a per-node mutex — operations on *different* nodes never
  contend, operations on the same node are serialized;
* **counters** are *thread-sharded*: each thread accumulates into its
  private :class:`NodeCounters` shard (reached via the :attr:`counters`
  property), so hot-path increments take no lock and are never lost.
  :meth:`counters_total` sums the shards for the cluster-wide
  aggregates, and :meth:`thread_counters` exposes the calling thread's
  shard so a query running on one thread can snapshot/diff exactly its
  own I/O while other queries run (per-stage metric attribution).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.kv.checkpoint import NodeDurability, RecoveryReport
from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore
from repro.locks import ShardSet, make_lock


@dataclass
class NodeCounters:
    """Cumulative I/O counters of one storage node.

    ``round_trips`` counts client↔node RPCs: a single get/put is one
    round trip, a coalesced ``multi_get``/``multi_put`` batch of *n* keys
    is one round trip carrying *n* gets/puts. ``gets``/``puts`` stay the
    paper's logical invocation counts, so batching shows up as
    ``round_trips ≪ gets``.

    The ``rebalance_*`` family meters membership churn, not queries:
    every key-range migration (scale-out, decommission, failover
    re-replication, crash recovery) charges the keys and bytes RECEIVED
    by this node plus one bulk-transfer round trip per peer it synced
    from, so Exp-4 can report what elasticity actually costs.
    """

    gets: int = 0
    hits: int = 0
    puts: int = 0
    deletes: int = 0
    values_read: int = 0
    values_written: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    round_trips: int = 0
    rebalance_keys_moved: int = 0
    rebalance_bytes_moved: int = 0
    rebalance_round_trips: int = 0

    def reset(self) -> None:
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.deletes = 0
        self.values_read = 0
        self.values_written = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.round_trips = 0
        self.rebalance_keys_moved = 0
        self.rebalance_bytes_moved = 0
        self.rebalance_round_trips = 0

    def add(self, other: "NodeCounters") -> None:
        self.gets += other.gets
        self.hits += other.hits
        self.puts += other.puts
        self.deletes += other.deletes
        self.values_read += other.values_read
        self.values_written += other.values_written
        self.bytes_out += other.bytes_out
        self.bytes_in += other.bytes_in
        self.round_trips += other.round_trips
        self.rebalance_keys_moved += other.rebalance_keys_moved
        self.rebalance_bytes_moved += other.rebalance_bytes_moved
        self.rebalance_round_trips += other.rebalance_round_trips

    def copy(self) -> "NodeCounters":
        out = NodeCounters()
        out.add(self)
        return out


class StorageNode:
    """One node of the KV cluster.

    ``engine`` selects the per-node storage engine: ``"mem"`` (sorted
    in-memory map, the default) or ``"lsm"`` (log-structured merge tree,
    the HBase/Cassandra write path — see :mod:`repro.kv.lsm`).

    Durability (PR 8): pass ``data_dir`` and the node becomes
    crash-consistent — construction **recovers** whatever checkpoint +
    WAL tail the directory holds (tolerating a torn final record), and
    every subsequent mutation is write-ahead-logged before it is
    acknowledged. ``fsync_policy`` (``"always"``/``"group"``/
    ``"never"``) prices the machine-crash window, and a checkpoint
    folds the log into a snapshot every ``checkpoint_interval`` records
    so restarts replay a bounded tail. :meth:`crash` /
    :meth:`restart` model process death and recovery-by-replay for the
    local transport (a socket node's real SIGKILL is the same model,
    enforced by the OS).
    """

    __slots__ = (
        "node_id", "engine", "store", "_shards", "_op_lock",
        "_read_load", "_durability", "_owns_store", "_crashed",
    )

    def __init__(self, node_id: int, engine: str = "mem",
                 store: Optional[object] = None,
                 data_dir: Optional[str] = None,
                 fsync_policy: str = "group",
                 checkpoint_interval: Optional[int] = None) -> None:
        self.node_id = node_id
        self.engine = engine
        self._owns_store = store is None
        self._crashed = False
        if store is not None:
            # injected engine (e.g. the RemoteStore facade of a node
            # process) — the caller has already validated it, and owns
            # whatever durability it has (a node process logs server-side)
            if data_dir is not None:
                raise ValueError(
                    "data_dir requires an owned engine store, not an "
                    "injected one"
                )
            self.store = store
        else:
            self.store = self._build_store()
        self._durability: Optional[NodeDurability] = None
        if data_dir is not None:
            extra = (
                {}
                if checkpoint_interval is None
                else {"checkpoint_interval": checkpoint_interval}
            )
            durability = NodeDurability(
                data_dir, fsync_policy=fsync_policy, **extra
            )
            durability.open(self.store)
            self._durability = durability
        #: per-thread counter shards; each shard is mutated only by its
        #: owning thread (see module docstring)
        self._shards: ShardSet[NodeCounters] = ShardSet(NodeCounters)
        #: serializes store access (engine internals are not reentrant)
        self._op_lock = make_lock("StorageNode._op_lock")
        #: cached gets+values_read across all shards — the O(1) load
        #: signal replica selection reads on every point get (benign
        #: ``+=`` races only wobble a tie-break heuristic)
        self._read_load = 0

    def _build_store(self) -> object:
        if self.engine == "mem":
            return MemStore()
        if self.engine == "lsm":
            return LSMStore()
        raise ValueError(f"unknown storage engine {self.engine!r}")

    # -- durability / crash surface -----------------------------------------

    @property
    def durable(self) -> bool:
        """Does this node write-ahead-log to a data directory?"""
        return self._durability is not None

    @property
    def is_crashed(self) -> bool:
        """Has :meth:`crash` destroyed the volatile store (and not yet
        been undone by :meth:`restart`)?"""
        return self._crashed

    @property
    def last_recovery(self) -> Optional[RecoveryReport]:
        """What the most recent construction/restart replayed (``None``
        for volatile nodes)."""
        if self._durability is None:
            return None
        return self._durability.last_recovery

    def wal_stats(self) -> Dict[str, int]:
        """Cumulative WAL counters (empty dict for volatile nodes)."""
        if self._durability is None:
            return {}
        return self._durability.wal_stats()

    def checkpoint(self) -> None:
        """Force a checkpoint/log-truncate cycle now (durable nodes)."""
        if self._durability is None:
            raise ValueError(
                f"node {self.node_id} has no data_dir to checkpoint to"
            )
        with self._op_lock:
            self._durability.checkpoint(self.store)

    def crash(self) -> bool:
        """Kill the node the way ``SIGKILL`` kills a node process: the
        volatile store dies (WAL handle dropped *without* a final sync
        — exactly the page-cache state a real crash leaves), and only
        :meth:`restart` brings the node back. Returns whether crash
        semantics were honored: a node wrapping an injected store it
        cannot destroy warns and keeps partition semantics instead.
        """
        with self._op_lock:
            if self._crashed:
                return True
            if not self._owns_store:
                warnings.warn(
                    f"StorageNode {self.node_id}: cannot destroy an "
                    "injected store; kill degrades to partition "
                    "semantics",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            if self._durability is not None:
                self._durability.abandon()
            # the store object IS the process memory: drop it
            self.store = self._build_store()
            self._crashed = True
            return True

    def restart(self) -> None:
        """Bring a crashed node back up: replay checkpoint + WAL tail
        when durable, an empty store otherwise (the caller re-syncs)."""
        with self._op_lock:
            if not self._crashed:
                return
            self.store = self._build_store()
            if self._durability is not None:
                self._durability.open(self.store)
            self._crashed = False

    def close(self) -> None:
        """Orderly shutdown: sync and close the WAL. Idempotent; a
        volatile node has nothing to do."""
        if self._durability is not None:
            self._durability.close()

    # -- counters ----------------------------------------------------------

    @property
    def counters(self) -> NodeCounters:
        """The calling thread's counter shard (create on first use).

        Single-threaded callers see the familiar cumulative counters;
        under the query service each thread meters its own I/O.
        """
        return self._shards.local()

    def counters_total(self) -> NodeCounters:
        """Sum of every thread's shard — the node's aggregate counters.

        Shards of finished threads stay registered, so the aggregate
        keeps their history (thread idents are recycled; the registry
        is not keyed by them).
        """
        total = NodeCounters()
        for shard in self._shards.all():
            total.add(shard)
        return total

    def thread_counters(self) -> Optional[NodeCounters]:
        """The calling thread's shard, or ``None`` if it never counted."""
        return self._shards.peek()

    @property
    def read_load(self) -> int:
        """Cumulative read weight (gets + values_read) for balancing."""
        return self._read_load

    def add_read_load(self, delta: int) -> None:
        """Keep the cached load in step with out-of-band read charges
        (cluster-level scan counting, decode-aware value top-ups)."""
        self._read_load += delta

    def reset_counters(self, thread_only: bool = False) -> None:
        """Zero the counters (all shards, or just the calling thread's)."""
        if thread_only:
            shard = self._shards.peek()
            if shard is not None:
                self._read_load -= shard.gets + shard.values_read
                shard.reset()
            return
        for shard in self._shards.all():
            shard.reset()
        self._read_load = 0

    # -- KV operations -----------------------------------------------------

    def get(self, key: bytes, n_values: int = 1) -> Optional[bytes]:
        """Serve a get; ``n_values`` is the logical value count returned.

        Callers that know the decoded payload size (e.g. a block of 40
        tuples x 3 attributes) pass it so ``values_read`` counts logical
        values, the paper's ``#data`` unit.
        """
        with self._op_lock:
            value = self.store.get(key)
        counters = self.counters
        counters.gets += 1
        counters.round_trips += 1
        load = 1
        if value is not None:
            counters.hits += 1
            counters.values_read += n_values
            counters.bytes_out += len(value)
            load += n_values
        self._read_load += load
        return value

    def multi_get(
        self, keys: Sequence[bytes], n_values_each: int = 1
    ) -> List[Optional[bytes]]:
        """Serve a coalesced batch of gets in ONE round trip.

        Counts ``len(keys)`` gets (the paper's invocation unit) but a
        single round trip — the amortization the batched pipeline buys.
        Results are positional: ``out[i]`` answers ``keys[i]``.
        """
        with self._op_lock:
            values = self.store.multi_get(keys)
        counters = self.counters
        counters.gets += len(keys)
        if keys:
            counters.round_trips += 1
        load = len(keys)
        for value in values:
            if value is not None:
                counters.hits += 1
                counters.values_read += n_values_each
                counters.bytes_out += len(value)
                load += n_values_each
        self._read_load += load
        return values

    def put(self, key: bytes, value: bytes, n_values: int = 1) -> None:
        with self._op_lock:
            self.store.put(key, value)
            if self._durability is not None:
                self._durability.maybe_checkpoint(self.store)
        counters = self.counters
        counters.puts += 1
        counters.round_trips += 1
        counters.values_written += n_values
        counters.bytes_in += len(value)

    def multi_put(
        self, items: Sequence[Tuple[bytes, bytes]], n_values_each: int = 1
    ) -> None:
        """Apply a coalesced batch of puts in ONE round trip."""
        with self._op_lock:
            self.store.multi_put(items)
            if self._durability is not None:
                self._durability.maybe_checkpoint(self.store)
        counters = self.counters
        counters.puts += len(items)
        if items:
            counters.round_trips += 1
        for _, value in items:
            counters.values_written += n_values_each
            counters.bytes_in += len(value)

    def delete(self, key: bytes) -> bool:
        """Serve a delete; the RPC is counted whether or not the key existed.

        ``deletes`` is the logical invocation count (like ``gets``, which
        count misses too) and every delete is one client↔node round trip
        — a miss still crosses the network.
        """
        with self._op_lock:
            removed = self.store.delete(key)
            if self._durability is not None:
                self._durability.maybe_checkpoint(self.store)
        counters = self.counters
        counters.deletes += 1
        counters.round_trips += 1
        return removed

    def peek(self, key: bytes) -> Optional[bytes]:
        """Read without counting (used for read-modify-write bookkeeping)."""
        with self._op_lock:
            return self.store.get(key)

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        """Uncounted raw iteration; cluster-level scans do the counting."""
        return self.store.scan(prefix)

    def snapshot_scan(self, prefix: bytes = b"") -> List[Tuple[bytes, bytes]]:
        """Materialized, mutex-guarded scan — safe vs concurrent writers.

        The cluster's shared-path scans use this so a concurrent put on
        the same node cannot mutate the store (or its sorted-key cache)
        mid-iteration; counting stays with the caller.
        """
        with self._op_lock:
            return list(self.store.scan(prefix))

    def has_prefix(self, prefix: bytes = b"") -> bool:
        """Does any stored key carry ``prefix``? (mutex-guarded probe)"""
        with self._op_lock:
            for _ in self.store.scan(prefix):
                return True
            return False

    def size_bytes(self) -> int:
        """Stored payload bytes (mutex-guarded vs concurrent writers)."""
        with self._op_lock:
            return self.store.size_bytes()

    def __repr__(self) -> str:
        return f"StorageNode(id={self.node_id}, keys={len(self.store)})"
