"""The TaaV (tuple-as-a-value) relation store — the conventional layout.

A relation ``R`` is stored as one KV pair per tuple ``(k, t)`` where ``k``
is the primary key of ``t`` (or a synthetic row id when ``R`` has no
primary key or duplicates occur), and ``t`` is the entire tuple (§3).
Scans iterate all keys and fetch every tuple with a get — the "costly
scan" the paper sets out to remove.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.kv import codec
from repro.kv.cache import read_through, read_through_many
from repro.kv.cluster import KVCluster
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.types import Row


class TaaVRelation:
    """One relation stored tuple-as-a-value in the cluster.

    ``cache`` is an optional client-side read-through block cache
    (:mod:`repro.kv.cache`): point reads consult it first and only
    cache-missing keys reach the cluster; it is registered with the
    cluster so every write invalidates the touched keys. Blind scans
    bypass it.
    """

    def __init__(
        self,
        schema: RelationSchema,
        cluster: KVCluster,
        cache=None,
    ) -> None:
        self.schema = schema
        self.cluster = cluster
        self.cache = cache
        cluster.register_cache(cache)
        self.namespace = f"taav:{schema.name}"
        self._pk_positions: Optional[Tuple[int, ...]] = (
            schema.indexes_of(schema.primary_key) if schema.primary_key else None
        )
        self._row_count = 0
        self._next_rowid = 0

    def _key_for(self, row: Row) -> Row:
        if self._pk_positions is not None:
            return tuple(row[p] for p in self._pk_positions)
        key = (self._next_rowid,)
        self._next_rowid += 1
        return key

    def load(self, rows: Iterable[Row]) -> None:
        """Bulk-load rows (counts puts on the storage nodes)."""
        arity = self.schema.arity
        for row in rows:
            key = self._key_for(row)
            self.cluster.put(
                self.namespace,
                codec.encode_key(key),
                codec.encode_row(row),
                n_values=arity,
            )
            self._row_count += 1

    def insert(self, row: Row) -> None:
        self.load([row])

    def delete_by_key(self, key: Row) -> bool:
        removed = self.cluster.delete(self.namespace, codec.encode_key(key))
        if removed:
            self._row_count -= 1
        return removed

    def delete_row(self, row: Row) -> bool:
        """Delete a full tuple (one occurrence) from the store.

        Keyed relations delete by primary key. Rowid-keyed relations
        cannot recover their synthetic key from the tuple, so they fall
        back to locating one matching pair by an (uncounted) payload
        scan — the delete itself is still counted. Returns whether a
        pair was removed.
        """
        if self._pk_positions is not None:
            return self.delete_by_key(
                tuple(row[p] for p in self._pk_positions)
            )
        encoded = codec.encode_row(tuple(row))
        for key_bytes in self.cluster.namespace_keys(self.namespace):
            if self.cluster.peek(self.namespace, key_bytes) == encoded:
                removed = self.cluster.delete(self.namespace, key_bytes)
                if removed:
                    self._row_count -= 1
                return removed
        return False

    def get(self, key: Row) -> Optional[Row]:
        """Point get by primary key (read-through the cache when present)."""
        data, _ = read_through(
            self.cache,
            self.namespace,
            codec.encode_key(key),
            lambda kb: self.cluster.get(
                self.namespace, kb, n_values=self.schema.arity
            ),
            versions=self.cluster.versions,
        )
        if data is None:
            return None
        row, _ = codec.decode_row(data)
        return row

    def multi_get(self, keys: Sequence[Row]) -> List[Optional[Row]]:
        """Batched point gets (one round trip per owning node); positional.

        With a cache attached, only the cache-missing keys reach the
        cluster — the batch the nodes see shrinks with the hit rate.
        """
        encoded = [codec.encode_key(tuple(key)) for key in keys]
        payloads = self._cached_multi_get(encoded, self.schema.arity)
        out: List[Optional[Row]] = []
        for data in payloads:
            if data is None:
                out.append(None)
            else:
                row, _ = codec.decode_row(data)
                out.append(row)
        return out

    def _cached_multi_get(
        self, encoded_keys: Sequence[bytes], n_values_each: int
    ) -> List[Optional[bytes]]:
        """Positional payload fetch serving hits locally, misses batched."""
        pairs = read_through_many(
            self.cache,
            self.namespace,
            encoded_keys,
            lambda missing: self.cluster.multi_get(
                self.namespace, missing, n_values_each=n_values_each
            ),
            versions=self.cluster.versions,
        )
        return [data for data, _ in pairs]

    def scan(self) -> Iterator[Row]:
        """Full scan: one counted get per tuple (the TaaV scan cost).

        Every pair is ``arity`` logical values, charged on its owning
        node — the blind scan's #data, which used to go uncounted.
        """
        arity = self.schema.arity
        for _, value in self.cluster.scan(
            self.namespace,
            count_as_gets=True,
            values_of=lambda _k, _v: arity,
        ):
            row, _ = codec.decode_row(value)
            yield row

    def fetch_all(self, batch_size: int = 1) -> Relation:
        """Materialize the full relation, counting gets and values.

        ``batch_size=1`` is the conventional stack: one get invocation
        (and round trip) per tuple, driven by ``next()``. A larger batch
        models a client that extracts keys first and coalesces its gets —
        same #get, far fewer round trips.
        """
        if batch_size > 1:
            return self._fetch_all_batched(batch_size)
        return Relation(self.schema, list(self.scan()))

    def _fetch_all_batched(self, batch_size: int) -> Relation:
        key_bytes = self.cluster.namespace_keys(self.namespace)
        arity = self.schema.arity
        rows: List[Row] = []
        for start in range(0, len(key_bytes), batch_size):
            batch = key_bytes[start:start + batch_size]
            payloads = self._cached_multi_get(batch, arity)
            for data in payloads:
                if data is not None:
                    row, _ = codec.decode_row(data)
                    rows.append(row)
        return Relation(self.schema, rows)

    def __len__(self) -> int:
        return self._row_count


class TaaVStore:
    """A whole database stored tuple-as-a-value."""

    def __init__(self, cluster: KVCluster, cache=None) -> None:
        self.cluster = cluster
        self.cache = cache
        self.relations: Dict[str, TaaVRelation] = {}

    @classmethod
    def from_database(
        cls, database: Database, cluster: KVCluster, cache=None
    ) -> "TaaVStore":
        store = cls(cluster, cache=cache)
        for relation in database:
            store.add_relation(relation)
        return store

    def add_relation(self, relation: Relation) -> TaaVRelation:
        taav = TaaVRelation(relation.schema, self.cluster, cache=self.cache)
        taav.load(relation.rows)
        self.relations[relation.schema.name] = taav
        return taav

    def relation(self, name: str) -> TaaVRelation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations
