"""The TaaV (tuple-as-a-value) relation store — the conventional layout.

A relation ``R`` is stored as one KV pair per tuple ``(k, t)`` where ``k``
is the primary key of ``t`` (or a synthetic row id when ``R`` has no
primary key or duplicates occur), and ``t`` is the entire tuple (§3).
Scans iterate all keys and fetch every tuple with a get — the "costly
scan" the paper sets out to remove.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.kv import codec
from repro.kv.cluster import KVCluster
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.relational.types import Row


class TaaVRelation:
    """One relation stored tuple-as-a-value in the cluster."""

    def __init__(self, schema: RelationSchema, cluster: KVCluster) -> None:
        self.schema = schema
        self.cluster = cluster
        self.namespace = f"taav:{schema.name}"
        self._pk_positions: Optional[Tuple[int, ...]] = (
            schema.indexes_of(schema.primary_key) if schema.primary_key else None
        )
        self._row_count = 0
        self._next_rowid = 0

    def _key_for(self, row: Row) -> Row:
        if self._pk_positions is not None:
            return tuple(row[p] for p in self._pk_positions)
        key = (self._next_rowid,)
        self._next_rowid += 1
        return key

    def load(self, rows: Iterable[Row]) -> None:
        """Bulk-load rows (counts puts on the storage nodes)."""
        arity = self.schema.arity
        for row in rows:
            key = self._key_for(row)
            self.cluster.put(
                self.namespace,
                codec.encode_key(key),
                codec.encode_row(row),
                n_values=arity,
            )
            self._row_count += 1

    def insert(self, row: Row) -> None:
        self.load([row])

    def delete_by_key(self, key: Row) -> bool:
        removed = self.cluster.delete(self.namespace, codec.encode_key(key))
        if removed:
            self._row_count -= 1
        return removed

    def get(self, key: Row) -> Optional[Row]:
        """Point get by primary key."""
        data = self.cluster.get(
            self.namespace, codec.encode_key(key), n_values=self.schema.arity
        )
        if data is None:
            return None
        row, _ = codec.decode_row(data)
        return row

    def multi_get(self, keys: Sequence[Row]) -> List[Optional[Row]]:
        """Batched point gets (one round trip per owning node); positional."""
        payloads = self.cluster.multi_get(
            self.namespace,
            [codec.encode_key(tuple(key)) for key in keys],
            n_values_each=self.schema.arity,
        )
        out: List[Optional[Row]] = []
        for data in payloads:
            if data is None:
                out.append(None)
            else:
                row, _ = codec.decode_row(data)
                out.append(row)
        return out

    def scan(self) -> Iterator[Row]:
        """Full scan: one counted get per tuple (the TaaV scan cost)."""
        for _, value in self.cluster.scan(self.namespace, count_as_gets=True):
            row, _ = codec.decode_row(value)
            # account logical values read for the blind fetch
            yield row

    def fetch_all(self, batch_size: int = 1) -> Relation:
        """Materialize the full relation, counting gets and values.

        ``batch_size=1`` is the conventional stack: one get invocation
        (and round trip) per tuple, driven by ``next()``. A larger batch
        models a client that extracts keys first and coalesces its gets —
        same #get, far fewer round trips.
        """
        if batch_size > 1:
            return self._fetch_all_batched(batch_size)
        rows: List[Row] = []
        arity = self.schema.arity
        total_values = 0
        for _, value in self.cluster.scan(self.namespace, count_as_gets=True):
            row, _ = codec.decode_row(value)
            rows.append(row)
            total_values += arity
        self._charge_values(total_values)
        return Relation(self.schema, rows)

    def _fetch_all_batched(self, batch_size: int) -> Relation:
        key_bytes = self.cluster.namespace_keys(self.namespace)
        arity = self.schema.arity
        rows: List[Row] = []
        for start in range(0, len(key_bytes), batch_size):
            batch = key_bytes[start:start + batch_size]
            payloads = self.cluster.multi_get(
                self.namespace, batch, n_values_each=arity
            )
            for data in payloads:
                if data is not None:
                    row, _ = codec.decode_row(data)
                    rows.append(row)
        return Relation(self.schema, rows)

    def _charge_values(self, n_values: int) -> None:
        """Spread logical value counts over the nodes that served the scan."""
        nodes = list(self.cluster.nodes.values())
        if not nodes or n_values <= 0:
            return
        share, remainder = divmod(n_values, len(nodes))
        for index, node in enumerate(nodes):
            node.counters.values_read += share + (1 if index < remainder else 0)

    def __len__(self) -> int:
        return self._row_count


class TaaVStore:
    """A whole database stored tuple-as-a-value."""

    def __init__(self, cluster: KVCluster) -> None:
        self.cluster = cluster
        self.relations: Dict[str, TaaVRelation] = {}

    @classmethod
    def from_database(cls, database: Database, cluster: KVCluster) -> "TaaVStore":
        store = cls(cluster)
        for relation in database:
            store.add_relation(relation)
        return store

    def add_relation(self, relation: Relation) -> TaaVRelation:
        taav = TaaVRelation(relation.schema, self.cluster)
        taav.load(relation.rows)
        self.relations[relation.schema.name] = taav
        return taav

    def relation(self, name: str) -> TaaVRelation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations
