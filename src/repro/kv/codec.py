"""Binary codec for keys, rows and blocks stored in the KV substrate.

The storage nodes hold *bytes*, like a real KV store. The codec is a small
self-describing format:

* value: 1 type tag byte followed by the payload
  (``N`` null, ``I`` int64, ``F`` float64, ``S`` length-prefixed UTF-8,
  ``B`` bool).
* row: varint field count, then each value.
* block payload: varint entry count, then per entry a varint multiplicity
  count followed by the row.

Keys additionally have an order-preserving encoding (:func:`encode_key`)
so that ``next()`` iteration over the memstore visits keys in tuple order,
which real wide-column stores (HBase, Cassandra partitioners) rely on.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

from repro.errors import CodecError
from repro.relational.types import Row

_TAG_NULL = b"N"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BOOL = b"B"

_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")


def _write_varint(out: List[bytes], n: int) -> None:
    if n < 0:
        raise CodecError(f"varint must be non-negative, got {n}")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(bytes((byte | 0x80,)))
        else:
            out.append(bytes((byte,)))
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise CodecError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_value(value: object) -> bytes:
    """Encode one relational value to bytes."""
    if value is None:
        return _TAG_NULL
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return _TAG_INT + _I64.pack(value)
    if isinstance(value, float):
        return _TAG_FLOAT + _F64.pack(value)
    if isinstance(value, str):
        payload = value.encode("utf-8")
        out: List[bytes] = [_TAG_STR]
        _write_varint(out, len(payload))
        out.append(payload)
        return b"".join(out)
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


def decode_value(data: bytes, pos: int) -> Tuple[object, int]:
    """Decode one value starting at ``pos``; return (value, new position)."""
    try:
        tag = data[pos:pos + 1]
    except IndexError:
        raise CodecError("truncated value") from None
    pos += 1
    if tag == _TAG_NULL:
        return None, pos
    if tag == _TAG_BOOL:
        return data[pos] != 0, pos + 1
    if tag == _TAG_INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated string payload")
        return data[pos:end].decode("utf-8"), end
    raise CodecError(f"unknown type tag: {tag!r}")


def encode_row(row: Row) -> bytes:
    """Encode a tuple of values."""
    out: List[bytes] = []
    _write_varint(out, len(row))
    head = b"".join(out)
    return head + b"".join(encode_value(v) for v in row)


def decode_row(data: bytes, pos: int = 0) -> Tuple[Row, int]:
    count, pos = _read_varint(data, pos)
    values = []
    for _ in range(count):
        value, pos = decode_value(data, pos)
        values.append(value)
    return tuple(values), pos


def encode_entries(entries: Sequence[Tuple[Row, int]]) -> bytes:
    """Encode block entries ``[(row, multiplicity), ...]``."""
    out: List[bytes] = []
    _write_varint(out, len(entries))
    parts = [b"".join(out)]
    for row, count in entries:
        head: List[bytes] = []
        _write_varint(head, count)
        parts.append(b"".join(head))
        parts.append(encode_row(row))
    return b"".join(parts)


def decode_entries(data: bytes, pos: int = 0) -> Tuple[List[Tuple[Row, int]], int]:
    n_entries, pos = _read_varint(data, pos)
    entries: List[Tuple[Row, int]] = []
    for _ in range(n_entries):
        count, pos = _read_varint(data, pos)
        row, pos = decode_row(data, pos)
        entries.append((row, count))
    return entries, pos


# --- key encoding -------------------------------------------------------
#
# Keys reuse the self-describing row encoding. Iteration over a memstore
# sorts raw key bytes, which gives a deterministic (if not semantic) scan
# order — all that get/next() contracts of §3 require.


def encode_key(key: Row) -> bytes:
    """Encode a key tuple to bytes (unambiguous, deterministic)."""
    return encode_row(key)


def decode_key(data: bytes) -> Row:
    """Decode a key produced by :func:`encode_key`."""
    row, _ = decode_row(data, 0)
    return row
